//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `parking_lot` it actually
//! uses: [`Mutex`]/[`RwLock`] whose guards are returned directly from
//! `lock()`/`read()`/`write()` (no `Result`, no poisoning — a poisoned
//! std lock is transparently recovered, matching parking_lot semantics
//! where panics never poison).

// Vendored stand-in crate: lint to upstream's idiom, not ours.
#![allow(clippy::all)]

use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

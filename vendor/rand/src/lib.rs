//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the surface seqdb uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`]/[`Rng::gen_bool`]
//! over integer and float ranges. The generator is xoshiro256** seeded via
//! splitmix64 — deterministic for a given seed (the sequences differ from
//! upstream `rand`'s ChaCha-based `StdRng`, which no caller depends on).

// Vendored stand-in crate: lint to upstream's idiom, not ours.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform u64 in [0, n) by widening multiply (Lemire); n > 0.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the standard deterministic RNG of this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..8);
            assert!((5..8).contains(&v));
            let v = rng.gen_range(2i64..=6);
            assert!((2..=6).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n: i64 = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&n));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        // Must not panic or loop.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}

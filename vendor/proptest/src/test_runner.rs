//! Deterministic case runner.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed assertion inside a property test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// proptest-compatible alias.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG handed to strategies (splitmix64 over a per-test,
/// per-case seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` may not be 0.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive `case` for `cfg.cases` deterministic cases; panic with the
/// generated inputs on the first failure (no shrinking).
pub fn run_cases(
    test_name: &str,
    cfg: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let base = fnv1a(test_name);
    for i in 0..cfg.cases {
        let mut rng = TestRng::from_seed(base ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (inputs, result) = case(&mut rng);
        if let Err(e) = result {
            panic!(
                "proptest {test_name}: case {i}/{} failed: {e}\ninputs:\n{inputs}",
                cfg.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    #[should_panic(expected = "case 0")]
    fn failures_panic_with_inputs() {
        run_cases("x", &ProptestConfig::with_cases(4), |_rng| {
            ("v = 1\n".into(), Err(TestCaseError::fail("nope")))
        });
    }
}

//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of proptest that seqdb's tests use:
//!
//! * the [`proptest!`] macro with both binding styles (`x in strategy`
//!   and `x: Type`), plus `#![proptest_config(...)]`;
//! * [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] and
//!   [`prop_oneof!`];
//! * strategies: integer/float ranges, `any::<T>()`, tuples, `Just`,
//!   [`collection::vec`], `prop_map`, boxed unions, and a small
//!   regex-subset string strategy (`"[ACGTN]{0,100}"`, `"\\PC{0,40}"`).
//!
//! Cases are generated deterministically from the test name and case
//! index, so failures reproduce across runs. There is **no shrinking**:
//! a failing case reports its inputs verbatim. Edge values (0, ±1,
//! MIN/MAX) are over-weighted for integer strategies, which recovers
//! most of the bug-finding power shrinking would otherwise provide.

// Vendored stand-in crate: lint to upstream's idiom, not ours.
#![allow(clippy::all)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub mod string {
    pub use crate::strategy::RegexStrategy;
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest! { ... }`: run each contained `#[test]` fn over many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    // `arg in strategy` bindings.
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(stringify!($name), &$cfg, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}\n"), &$arg));)+
                    s
                };
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__inputs, __result)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    // `arg: Type` bindings (sugar for `arg in any::<Type>()`).
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $crate::__proptest_items! {
            ($cfg)
            $(#[$meta])*
            fn $name($($arg in $crate::strategy::any::<$ty>()),+) $body
            $($rest)*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Choose uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

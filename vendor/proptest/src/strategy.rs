//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V: Debug> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u8>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Over-weight edge values: shrinkless generation leans on
                // edges to catch boundary bugs.
                match rng.next() % 8 {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next() as u128) << 64) | rng.next() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, sometimes interesting unicode.
        match rng.next() % 4 {
            0 => char::from_u32(0x20 + (rng.next() % 95) as u32).unwrap(),
            1 => 'λ',
            2 => char::from_u32(0x00A1 + (rng.next() % 0x100) as u32).unwrap_or('¿'),
            _ => char::from_u32((rng.next() % 0xD800) as u32).unwrap_or('x'),
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::MAX,
            5 => f64::MIN_POSITIVE,
            _ => rng.unit_f64() * 2e6 - 1e6,
        }
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Hit the bounds disproportionately often.
                match rng.next() % 16 {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => (self.start as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                match rng.next() % 16 {
                    0 => lo,
                    1 => hi,
                    _ if span == 0 => rng.next() as $t,
                    _ => (lo as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Length bounds accepted by [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    pub min: usize,
    /// Exclusive.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = match rng.next() % 8 {
            0 => self.size.min,
            1 => self.size.max - 1,
            _ => self.size.min + rng.below(span.max(1)) as usize,
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------

/// `&str` patterns act as string strategies over a supported regex
/// subset: `[chars]{m,n}`, `\PC{m,n}` (printable char), plain literals,
/// and concatenations thereof. Unsupported syntax panics loudly.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexStrategy::parse(self).generate(rng)
    }
}

/// Parsed form of the supported regex subset.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    parts: Vec<RegexPart>,
}

#[derive(Debug, Clone)]
enum RegexPart {
    /// A literal character.
    Lit(char),
    /// A repeated alphabet: `{min..max}` (max inclusive) draws from `chars`.
    Repeat {
        chars: CharSet,
        min: usize,
        max: usize,
    },
}

#[derive(Debug, Clone)]
enum CharSet {
    /// Explicit characters from a `[...]` class.
    Explicit(Vec<char>),
    /// `\PC`: any printable (non-control) character.
    Printable,
}

impl CharSet {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Explicit(cs) => cs[rng.below(cs.len() as u64) as usize],
            CharSet::Printable => match rng.next() % 8 {
                // Mostly ASCII printable, sometimes multi-byte unicode to
                // stress encodings.
                0 => ['é', 'λ', 'Ж', '→', '🧬', 'ß', '中'][rng.below(7) as usize],
                _ => char::from_u32(0x20 + (rng.next() % 95) as u32).unwrap(),
            },
        }
    }
}

impl RegexStrategy {
    /// Parse the supported subset; panics on anything else so misuse is
    /// loud instead of silently generating wrong data.
    pub fn parse(pattern: &str) -> RegexStrategy {
        let mut parts = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => {
                    let mut cs = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('\\') => cs.push(chars.next().expect("escape in class")),
                            Some(a) => {
                                // Support `a-z` ranges inside classes.
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let b = *chars.peek().expect("range end");
                                    if b == ']' {
                                        cs.push(a);
                                        cs.push('-');
                                    } else {
                                        chars.next();
                                        cs.extend((a..=b).filter(|ch| ch.is_ascii()));
                                    }
                                } else {
                                    cs.push(a);
                                }
                            }
                            None => panic!("unterminated [class] in pattern {pattern:?}"),
                        }
                    }
                    assert!(!cs.is_empty(), "empty [class] in pattern {pattern:?}");
                    CharSet::Explicit(cs)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        let kind = chars.next();
                        assert_eq!(
                            kind,
                            Some('C'),
                            "only \\PC is supported, pattern {pattern:?}"
                        );
                        CharSet::Printable
                    }
                    Some(lit) => {
                        parts.push(RegexPart::Lit(lit));
                        continue;
                    }
                    None => panic!("dangling backslash in pattern {pattern:?}"),
                },
                lit => {
                    // A literal, possibly followed by a repetition.
                    if chars.peek() == Some(&'{') {
                        CharSet::Explicit(vec![lit])
                    } else {
                        parts.push(RegexPart::Lit(lit));
                        continue;
                    }
                }
            };
            // Optional `{m,n}` / `{n}` repetition after a set.
            if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("repeat min"),
                        b.trim().parse().expect("repeat max"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repeat count");
                        (n, n)
                    }
                };
                assert!(min <= max, "bad repetition in pattern {pattern:?}");
                parts.push(RegexPart::Repeat {
                    chars: set,
                    min,
                    max,
                });
            } else {
                match set {
                    CharSet::Explicit(cs) if cs.len() == 1 => parts.push(RegexPart::Lit(cs[0])),
                    set => parts.push(RegexPart::Repeat {
                        chars: set,
                        min: 1,
                        max: 1,
                    }),
                }
            }
        }
        RegexStrategy { parts }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in &self.parts {
            match part {
                RegexPart::Lit(c) => out.push(*c),
                RegexPart::Repeat { chars, min, max } => {
                    let span = (max - min + 1) as u64;
                    let n = match rng.next() % 8 {
                        0 => *min,
                        1 => *max,
                        _ => min + rng.below(span) as usize,
                    };
                    for _ in 0..n {
                        out.push(chars.pick(rng));
                    }
                }
            }
        }
        out
    }
}

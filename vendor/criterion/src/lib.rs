//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the benchmark-harness surface the `seqdb-bench` crate
//! uses: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after a warm-up, each benchmark
//! runs `sample_size` samples (bounded by `measurement_time`) and the
//! per-iteration mean, min and max are printed to stdout in a stable
//! `bench: <name> ... mean <t>` format that downstream tooling can grep.

// Vendored stand-in crate: lint to upstream's idiom, not ours.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        self
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        };
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Iteration throughput annotation (accepted, not reported).
#[derive(Debug, Clone)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    /// Total time spent inside `iter` closures this sample.
    elapsed: Duration,
    /// Iterations executed this sample.
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut sample: impl FnMut(&mut Bencher),
) {
    // Warm-up: run until the warm-up budget is spent (at least once).
    let start = Instant::now();
    loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        sample(&mut b);
        if start.elapsed() >= warm_up {
            break;
        }
    }
    // Measurement: `sample_size` samples, bounded by the time budget.
    let mut times = Vec::with_capacity(sample_size);
    let start = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        sample(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        if start.elapsed() >= measurement {
            break;
        }
    }
    if times.is_empty() {
        println!("bench: {label:<48} (no samples)");
        return;
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "bench: {label:<48} mean {} (min {}, max {}, n={})",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        times.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).name, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}

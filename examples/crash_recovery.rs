//! Demonstrates the crash-safety of the storage layer: WAL recovery and
//! page-checksum corruption detection, end to end.
//!
//! ```text
//! cargo run --example crash_recovery -- /tmp/crashdb setup    # aborts on purpose
//! cargo run --example crash_recovery -- /tmp/crashdb verify   # recovers + scans
//! cargo run --example crash_recovery -- /tmp/crashdb corrupt  # flips a byte
//! cargo run --example crash_recovery -- /tmp/crashdb verify   # detects corruption
//! ```
//!
//! `setup` inserts rows through SQL, issues `CHECKPOINT`, inserts more
//! rows that are never checkpointed, then calls `abort()` — no flush, no
//! destructors, like a power cut. `verify` replays the WAL into the data
//! file exactly as `Database::open` does and scans the heap: every
//! checkpointed row must be there, every page must pass its checksum.

use std::path::Path;
use std::sync::Arc;

use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;
use seqdb::storage::{BufferPool, Compression, FilePager, HeapFile, WriteAheadLog};
use seqdb::types::{Column, DataType, Schema};

const CHECKPOINTED_ROWS: i64 = 500;

fn row_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("seq", DataType::Text),
    ]))
}

fn setup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let db = Database::open(dir).expect("open database");
    db.execute_sql("CREATE TABLE reads (id INT, seq VARCHAR(32)) WITH (DATA_COMPRESSION = ROW)")
        .expect("create table");
    for i in 0..CHECKPOINTED_ROWS {
        db.execute_sql(&format!("INSERT INTO reads VALUES ({i}, 'ACGTACGTACGT')"))
            .expect("insert");
    }
    db.execute_sql("CHECKPOINT").expect("checkpoint");
    // The table's first heap page is the recovery handle (the catalog is
    // in-memory for now, so a real deployment would persist this too).
    let first = db
        .catalog()
        .table("reads")
        .expect("table")
        .heap
        .first_page();
    std::fs::write(dir.join("manifest.txt"), first.to_string()).expect("manifest");
    // More rows, never checkpointed: they are allowed to vanish.
    for i in CHECKPOINTED_ROWS..CHECKPOINTED_ROWS + 100 {
        db.execute_sql(&format!("INSERT INTO reads VALUES ({i}, 'TTTTTTTTTTTT')"))
            .expect("insert");
    }
    println!(
        "inserted {} rows, checkpointed the first {CHECKPOINTED_ROWS}, aborting without flush",
        CHECKPOINTED_ROWS + 100
    );
    std::process::abort();
}

fn verify(dir: &Path) {
    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap_or_else(|e| {
        eprintln!("no manifest at {}: {e} (run setup first)", dir.display());
        std::process::exit(2);
    });
    let first: u64 = manifest.trim().parse().expect("page id");
    // The same recovery protocol Database::open runs.
    let pager = Arc::new(FilePager::open(&dir.join("seqdb.data")).expect("data file"));
    let wal = Arc::new(WriteAheadLog::open_file(&dir.join("seqdb.wal")).expect("wal file"));
    match wal.recover_into(pager.as_ref()) {
        Ok(n) => println!("wal replay applied {n} page images"),
        Err(e) => {
            println!("wal replay failed: {e}");
            std::process::exit(1);
        }
    }
    let pool = BufferPool::with_wal(pager, BufferPool::DEFAULT_CAPACITY, wal);
    let heap = match HeapFile::open(pool, row_schema(), Compression::Row, first) {
        Ok(h) => h,
        Err(e) => {
            println!("heap open failed: {e}");
            std::process::exit(1);
        }
    };
    let mut rows = 0i64;
    for r in heap.scan() {
        match r {
            Ok(_) => rows += 1,
            Err(e) => {
                println!("scan failed after {rows} rows: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("recovered heap holds {rows} rows (checkpointed: {CHECKPOINTED_ROWS})");
    if rows < CHECKPOINTED_ROWS {
        println!("DURABILITY VIOLATION: checkpointed rows are missing");
        std::process::exit(1);
    }
    println!("ok: every checkpointed row survived the crash");
}

fn corrupt(dir: &Path) {
    // Flip one byte in the middle of the first data page's record area.
    let path = dir.join("seqdb.data");
    let mut bytes = std::fs::read(&path).expect("data file");
    let target = 4096;
    bytes[target] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write back");
    println!("flipped one byte at offset {target} of {}", path.display());
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (dir, cmd) = match (args.next(), args.next()) {
        (Some(d), Some(c)) => (d, c),
        _ => {
            eprintln!("usage: crash_recovery <dir> setup|verify|corrupt");
            std::process::exit(2);
        }
    };
    let dir = Path::new(&dir);
    match cmd.as_str() {
        "setup" => setup(dir),
        "verify" => verify(dir),
        "corrupt" => corrupt(dir),
        other => {
            eprintln!("unknown command {other:?}");
            std::process::exit(2);
        }
    }
}

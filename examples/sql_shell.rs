//! A minimal interactive SQL shell over a seqdb database.
//!
//! ```text
//! cargo run --example sql_shell
//! seqdb> CREATE TABLE t (x INT);
//! seqdb> INSERT INTO t VALUES (1), (2);
//! seqdb> SELECT COUNT(*) FROM t;
//! seqdb> EXPLAIN SELECT x, COUNT(*) FROM t GROUP BY x;
//! seqdb> \q
//! ```
//!
//! The paper's UDX (PivotAlignment, CallBase, AssembleSequence,
//! AssembleConsensus, ListShortReads) are registered, so the §4.2
//! queries can be typed in directly.

use std::io::{BufRead, Write};

use seqdb::core::udx;
use seqdb::engine::Database;
use seqdb::sql::SessionSqlExt;

fn main() {
    let db = Database::in_memory();
    udx::register_udx(&db, None);
    // A real session, not the raw db-scoped path: statements run
    // admitted and governed, show up in DM_EXEC_REQUESTS(), land in the
    // query store, and emit trace events — so the observability DMVs
    // (DM_OS_RING_BUFFER, DM_DB_QUERY_STORE) work from the shell.
    let session = db.create_session();
    println!("seqdb interactive shell — statements end with ';', \\q quits");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print!("seqdb> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed == "\\q" || trimmed == "exit" || trimmed == "quit" {
            break;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            match session.execute_sql_script(&sql) {
                Ok(result) => {
                    if !result.rows.is_empty() {
                        println!("{}", result.to_table());
                        println!("({} rows)", result.rows.len());
                    } else if result.affected > 0 {
                        println!("({} rows affected)", result.affected);
                    } else {
                        println!("ok");
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            print!("seqdb> ");
            std::io::stdout().flush().ok();
        } else {
            print!("    -> ");
            std::io::stdout().flush().ok();
        }
    }
    println!();
}

//! The hybrid FileStream design, reproducing the paper's §3.3 example
//! nearly verbatim: bulk-import a FASTQ into a `VARBINARY(MAX)
//! FILESTREAM` column with `OPENROWSET(BULK ..., SINGLE_BLOB)`, inspect
//! it with `PathName()` / `DATALENGTH()`, stream it relationally through
//! the `ListShortReads` TVF, and finally hand the same blob to an
//! *external tool* (the MAQ-like aligner pipeline) through a direct file
//! handle — the paper's "existing bioinformatics tools can be used
//! almost unchanged".
//!
//! ```text
//! cargo run --release --example hybrid_filestream
//! ```

use seqdb::bio::fastq::write_fastq_record;
use seqdb::bio::quality::{Phred, QualityEncoding};
use seqdb::bio::reference::ReferenceGenome;
use seqdb::bio::simulate::{LaneConfig, ReadSimulator};
use seqdb::core::udx;
use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;

fn main() -> seqdb::types::Result<()> {
    let dir = std::env::temp_dir().join("seqdb-example-fs");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // Produce a lane FASTQ on disk, as the sequencer's primary analysis
    // would.
    let genome = ReferenceGenome::synthetic(7, 2, 40_000);
    let mut sim = ReadSimulator::new(LaneConfig::default(), 7);
    let fastq = dir.join("855_s_1.fastq");
    {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&fastq)?);
        for r in sim.lane(&genome, 2_000) {
            write_fastq_record(&mut w, &r.record, QualityEncoding::Sanger)?;
        }
    }

    let db = Database::in_memory();
    udx::register_udx(&db, None);

    // The paper's DDL (§3.3).
    db.execute_sql(
        "CREATE TABLE ShortReadFiles (
            guid   UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,
            sample INT,
            lane   INT,
            reads  VARBINARY(MAX) FILESTREAM
        ) FILESTREAM_ON FILESTREAMGROUP",
    )?;

    // Bulk-import the FASTQ as a single blob (§3.3's INSERT).
    db.execute_sql(&format!(
        "INSERT INTO ShortReadFiles (guid, sample, lane, reads)
         SELECT NEWID(), 855, 1, *
         FROM OPENROWSET(BULK '{}', SINGLE_BLOB)",
        fastq.display()
    ))?;

    // Check the metadata of the FileStream content (§3.3's SELECT).
    let meta = db.query_sql(
        "SELECT guid, sample, lane, reads.PathName(), DATALENGTH(reads)
         FROM ShortReadFiles",
    )?;
    println!("FileStream metadata:\n{}", meta.to_table());

    // Relational access through the file-wrapper TVF (§3.3 / §4.1).
    let count = db.query_sql("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')")?;
    println!("reads in the blob via ListShortReads: {}", count.rows[0][0]);
    let sample = db.query_sql(
        "SELECT TOP 3 read_name, short_read_seq
         FROM ListShortReads(855, 1, 'FastQ')",
    )?;
    println!("{}", sample.to_table());

    // SQL analytics directly over the wrapped file.
    let binned = db.query_sql(
        "SELECT TOP 5 COUNT(*), short_read_seq
         FROM ListShortReads(855, 1, 'FastQ')
         WHERE CHARINDEX('N', short_read_seq) = 0
         GROUP BY short_read_seq
         ORDER BY COUNT(*) DESC",
    )?;
    println!(
        "top reads straight off the FileStream:\n{}",
        binned.to_table()
    );

    // External-tool access: the MAQ-like pipeline reads the same blob
    // through a plain file handle obtained from the store.
    let guid = meta.rows[0][0].as_guid()?;
    let blob_path = db.filestream().path_name(guid)?;
    let ref_fa = dir.join("ref.fa");
    genome.to_fasta(&mut std::fs::File::create(&ref_fa)?)?;
    let out = seqdb::bio::tool::run_pipeline(
        &blob_path,
        &ref_fa,
        &dir.join("maqwork"),
        QualityEncoding::Sanger,
        seqdb::bio::align::AlignerConfig::default(),
    )?;
    println!(
        "external tool aligned {}/{} reads from the DBMS-managed blob;",
        out.reads_aligned, out.reads_in
    );
    println!("its intermediates: {:?}", out.bmap.file_name().unwrap());

    // Keep Phred in the public API surface exercised.
    let _ = Phred(30);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

//! Digital gene expression, end to end (the paper's §2.1.2 scenario):
//! simulate a lane of DGE tags, load every physical design, run the
//! paper's Query 1 (tag binning) and Query 2 (gene expression), and
//! print the Table-1-style storage comparison.
//!
//! ```text
//! cargo run --release --example digital_gene_expression
//! ```

use seqdb::core::dataset::{DgeDataset, Scale};
use seqdb::core::{queries, workflow};
use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;

fn main() -> seqdb::types::Result<()> {
    let dir = std::env::temp_dir().join("seqdb-example-dge");
    let _ = std::fs::remove_dir_all(&dir);

    println!("simulating a digital-gene-expression lane ...");
    let ds = DgeDataset::generate(
        &dir,
        &Scale {
            genome_bp: 150_000,
            n_chromosomes: 4,
            n_reads: 8_000,
            seed: 42,
        },
    )?;
    println!(
        "  {} tag reads, {} unique tags, {} aligned, {} genes expressed",
        ds.reads.len(),
        ds.unique_tags.len(),
        ds.alignments.len(),
        ds.gene_expression.len()
    );

    let db = Database::in_memory();
    workflow::load_dge_designs(&db, &ds)?;

    // Query 1: unique-tag binning, as SQL.
    let q1 = queries::run_query1(&db, workflow::NORM)?;
    println!("\ntop 5 tags (Query 1):");
    for row in q1.rows.iter().take(5) {
        println!("  #{} x{}  {}", row[0], row[1], row[2]);
    }

    // Query 2: gene expression via the alignment join.
    let inserted = queries::run_query2(&db, workflow::NORM)?;
    println!("\nQuery 2 inserted {inserted} gene expression rows; top genes:");
    let top = db.query_sql(
        "SELECT TOP 5 g_name, total_frequency, tag_count
         FROM GeneExpression JOIN Gene ON x_g_id = g_id
         ORDER BY total_frequency DESC",
    )?;
    println!("{}", top.to_table());

    // Storage shapes of Table 1.
    let report = workflow::dge_storage_report(&db, &ds)?;
    println!(
        "storage efficiency (Table 1):\n{}",
        report.render(&workflow::DESIGNS)
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

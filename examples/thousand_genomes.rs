//! Re-sequencing (the 1000 Genomes scenario, §2.1.1): simulate a lane,
//! align against the reference, and run the consensus-calling tertiary
//! analysis with all three plans of §5.3.3 — verifying they agree and
//! showing the tempdb traffic of the blocking pivot plan.
//!
//! ```text
//! cargo run --release --example thousand_genomes
//! ```

use seqdb::core::dataset::{ResequencingDataset, Scale};
use seqdb::core::{queries, workflow};
use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;

fn main() -> seqdb::types::Result<()> {
    let dir = std::env::temp_dir().join("seqdb-example-1000g");
    let _ = std::fs::remove_dir_all(&dir);

    println!("simulating a re-sequencing lane ...");
    let ds = ResequencingDataset::generate(
        &dir,
        &Scale {
            genome_bp: 80_000,
            n_chromosomes: 3,
            n_reads: 10_000,
            seed: 1000,
        },
    )?;
    println!(
        "  {} reads sampled from {} chromosomes, {} aligned ({}x coverage)",
        ds.reads.len(),
        ds.reference.chromosomes.len(),
        ds.alignments.len(),
        ds.reads.len() * 36 / ds.reference.total_len()
    );

    let db = Database::in_memory();
    workflow::load_reseq_designs(&db, &ds)?;

    // Warm merge-join throughput (the paper's 1.6M alignments/s figure).
    let n = queries::run_merge_join(&db, workflow::NORM)?;
    let t = std::time::Instant::now();
    let n2 = queries::run_merge_join(&db, workflow::NORM)?;
    let warm = t.elapsed();
    assert_eq!(n, n2);
    println!(
        "\nmerge join Read x Alignment: {n} alignments in {:?} warm ({:.2}M/s)",
        warm,
        n as f64 / warm.as_secs_f64() / 1e6
    );

    // Consensus, three ways.
    let (consensus, spill) = workflow::run_consensus_both_ways(&db)?;
    println!(
        "\nconsensus plans agree on {} chromosomes;",
        consensus.len()
    );
    println!(
        "the sort-based pivot plan wrote {:.1} MiB of intermediate to tempdb,",
        spill as f64 / (1024.0 * 1024.0)
    );
    println!("the sliding-window UDA streamed it with a read-sized window.\n");
    for (chr, seq) in consensus.iter().take(2) {
        println!(
            "  chr_id {chr}: consensus of {} bp, starts {}…",
            seq.len(),
            &seq[..40.min(seq.len())]
        );
    }

    // SNP discovery: the reads came from a donor genome with planted
    // variants; diff the consensus against the reference (§2.1.1).
    let (calls, acc) = workflow::discover_snps(&ds, seqdb::bio::quality::Phred(40))?;
    println!(
        "\nSNP discovery: {} planted, {} called — precision {:.2}, recall {:.2}",
        ds.donor_snps.len(),
        calls.len(),
        acc.precision(),
        acc.recall()
    );
    for c in calls.iter().take(3) {
        println!(
            "  chr{} pos {}: {} -> {} (Q{})",
            c.chrom + 1,
            c.pos,
            c.ref_base as char,
            c.alt_base as char,
            c.quality.0
        );
    }

    // A provenance query over the integrated schema (the paper's §3.2
    // "explore the context of their experimental results").
    let prov = db.query_sql(
        "SELECT e_name, machine, flowcell, lane_no
         FROM Experiment JOIN SampleGroup ON sg_e_id = e_id
         JOIN Sample ON s_sg_id = sg_id
         JOIN Lane ON l_s_id = s_id",
    )?;
    println!("\nworkflow provenance:\n{}", prov.to_table());

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

//! Quickstart: create a database, define a schema, load a few reads and
//! query them — including an EXPLAIN of the physical plan.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;

fn main() -> seqdb::types::Result<()> {
    let db = Database::in_memory();

    // DDL straight out of the paper's toolbox: row compression on the
    // bulk table, a composite of provenance + sequence data.
    db.execute_sql(
        "CREATE TABLE Read (
            r_id INT NOT NULL PRIMARY KEY,
            lane INT NOT NULL,
            short_read_seq VARCHAR(64) NOT NULL,
            quals VARCHAR(64) NOT NULL
        ) WITH (DATA_COMPRESSION = ROW)",
    )?;

    db.execute_sql(
        "INSERT INTO Read VALUES
            (1, 1, 'ACGTACGTACGT', 'IIIIIIIIIIII'),
            (2, 1, 'ACGTACGTACGT', 'IIIIIIIIHHHH'),
            (3, 1, 'TTGACCGTAGGT', 'IIIIIIIIIIII'),
            (4, 2, 'ACGTNCGTACGT', 'IIII#IIIIIII'),
            (5, 2, 'TTGACCGTAGGT', 'HHHHHHHHHHHH')",
    )?;

    // The paper's Query 1 shape: bin unique N-free reads by frequency.
    let result = db.query_sql(
        "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC),
                COUNT(*),
                short_read_seq
         FROM Read
         WHERE CHARINDEX('N', short_read_seq) = 0
         GROUP BY short_read_seq",
    )?;
    println!("unique reads by frequency:");
    println!("{}", result.to_table());

    // Look at the physical plan the engine chose.
    let plan = db.explain_sql("SELECT lane, COUNT(*) FROM Read GROUP BY lane ORDER BY lane")?;
    println!("plan:\n{plan}");
    Ok(())
}

//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run -p seqdb-bench --release --bin report -- all
//! cargo run -p seqdb-bench --release --bin report -- table1 --scale 4
//! ```
//!
//! Experiments: `table1`, `table2`, `table3`, `fig7`, `fig8`, `fig9`,
//! `join`, `fig10`, `binning` (§5.3.2), `consensus` (§5.3.3), `all`,
//! plus the wire-server overload experiment `server` (`--clients N`).

use std::sync::Arc;
use std::time::Instant;

use seqdb_bench::{
    dge_database, dge_dataset, fmt_dur, fmt_io, reseq_database, reseq_dataset, time,
    write_bench_json, BenchEntry, IoSnapshot,
};
use seqdb_bio::fastq::{ChunkedFastqParser, IoChunkSource, SimpleFastqReader};
use seqdb_core::baseline;
use seqdb_core::queries;
use seqdb_core::udx::DB_QUAL_ENCODING;
use seqdb_core::workflow::{self, DESIGNS, NORM};
use seqdb_engine::exec::agg::AggSpec;
use seqdb_engine::exec::RowIterator;
use seqdb_engine::parallel::ParallelAggIter;
use seqdb_engine::udx::CountAgg;
use seqdb_engine::{BinOp, Expr};
use seqdb_engine::{Database, JoinStrategy};
use seqdb_sql::DatabaseSqlExt;
use seqdb_types::{Result, Row, Value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale_factor = 1usize;
    let mut clients = 120usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale_factor = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
                i += 2;
            }
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--clients needs a number"));
                i += 2;
            }
            other if !other.starts_with('-') => {
                experiment = other.to_string();
                i += 1;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    CLIENTS.store(clients, std::sync::atomic::Ordering::Relaxed);
    if let Err(e) = run(&experiment, scale_factor) {
        eprintln!("report failed: {e}");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: report [table1|table2|table3|fig7|fig8|fig9|join|fig10|binning|consensus|snp|server|trace|scrub|backup|exec|all] [--scale N] [--clients N]");
    std::process::exit(2);
}

/// `--clients` for the `server` experiment, stashed so `run`'s
/// signature stays shared with the paper experiments.
static CLIENTS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(120);

// ------------------------------------------------------------ SNP ext --

/// Extension (§2.1.1 / §6.1): the tertiary SNP discovery that closes the
/// 1000 Genomes workflow — reads come from a donor genome with planted
/// variants; the consensus is diffed against the reference.
fn snp(factor: usize) -> Result<()> {
    println!("--- Extension: SNP discovery over the re-sequenced individual ---");
    let ds = reseq_dataset(factor)?;
    let min_q = seqdb_bio::quality::Phred(40);
    let (res, d) = time(|| workflow::discover_snps(&ds, min_q));
    let (calls, acc) = res?;
    println!(
        "  donor genome carries {} planted SNPs; consensus vs reference called {} sites in {}",
        ds.donor_snps.len(),
        calls.len(),
        fmt_dur(d)
    );
    println!(
        "  precision {:.2}, recall {:.2} (tp {}, fp {}, fn {}) at Q{} / ~{}x coverage\n",
        acc.precision(),
        acc.recall(),
        acc.true_positives,
        acc.false_positives,
        acc.false_negatives,
        min_q.0,
        ds.reads.len() * 36 / ds.reference.total_len().max(1),
    );
    Ok(())
}

fn run(experiment: &str, factor: usize) -> Result<()> {
    println!("== seqdb evaluation report (scale factor {factor}) ==");
    println!("   reproducing Röhm & Blakeley, CIDR 2009, section 5\n");
    match experiment {
        "table1" => table1(factor)?,
        "table2" => table2(factor)?,
        "table3" => table3(factor)?,
        "fig7" => fig7(factor)?,
        "fig8" => fig8(factor)?,
        "fig9" => fig9(factor)?,
        "join" => join_bench(factor)?,
        "fig10" => fig10(factor)?,
        "binning" => binning(factor)?,
        "consensus" => consensus(factor)?,
        "snp" => snp(factor)?,
        "server" => server_bench(factor, CLIENTS.load(std::sync::atomic::Ordering::Relaxed))?,
        "trace" => trace_bench(factor)?,
        "scrub" => scrub_bench(factor)?,
        "exec" => exec_bench(factor)?,
        "backup" => backup_bench(factor)?,
        "all" => {
            table1(factor)?;
            table2(factor)?;
            table3(factor)?;
            fig7(factor)?;
            fig8(factor)?;
            fig9(factor)?;
            join_bench(factor)?;
            fig10(factor)?;
            binning(factor)?;
            consensus(factor)?;
            snp(factor)?;
        }
        other => die(&format!("unknown experiment {other}")),
    }
    Ok(())
}

// ---------------------------------------------------------------- T1 --

fn table1(factor: usize) -> Result<()> {
    println!("--- Table 1: storage efficiency, digital gene expression ---");
    let ds = dge_dataset(factor)?;
    println!(
        "dataset: {} tag reads, {} unique tags, {} alignments, {} genes expressed",
        ds.reads.len(),
        ds.unique_tags.len(),
        ds.alignments.len(),
        ds.gene_expression.len()
    );
    let db = dge_database(&ds)?;
    let report = workflow::dge_storage_report(&db, &ds)?;
    println!("{}", report.render(&DESIGNS));
    for artifact in ["short reads", "alignments"] {
        print!("{artifact}: ");
        for d in &DESIGNS[1..] {
            if let Some(r) = report.ratio_to_files(artifact, d) {
                print!("{d} = {r:.2}x files  ");
            }
        }
        println!();
    }
    println!();
    Ok(())
}

// ---------------------------------------------------------------- T2 --

fn table2(factor: usize) -> Result<()> {
    println!("--- Table 2: storage efficiency, 1000 Genomes re-sequencing ---");
    let ds = reseq_dataset(factor)?;
    println!(
        "dataset: {} reads (~{} distinct), {} alignments",
        ds.reads.len(),
        ds.reads
            .iter()
            .map(|r| r.record.seq.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len(),
        ds.alignments.len()
    );
    let db = reseq_database(&ds)?;
    let report = workflow::reseq_storage_report(&db, &ds)?;
    println!("{}", report.render(&DESIGNS));
    if let (Some(one), Some(norm)) = (
        report.get("alignments", "1:1 import"),
        report.get("alignments", "normalized"),
    ) {
        println!(
            "alignments: normalized saves {:.0}% over the 1:1 textual-id import (paper: ~40%)",
            100.0 * (1.0 - norm as f64 / one as f64)
        );
    }
    if let (Some(norm), Some(page)) = (
        report.get("short reads", "normalized"),
        report.get("short reads", "norm+page"),
    ) {
        println!(
            "short reads: page compression saves only {:.0}% on near-unique reads (paper: compression much less effective than in Table 1)",
            100.0 * (1.0 - page as f64 / norm as f64)
        );
    }
    println!();
    Ok(())
}

// ---------------------------------------------------------------- T3 --

fn table3(factor: usize) -> Result<()> {
    println!("--- Table 3 (section 5.2): file wrapping performance ---");
    println!("    SELECT COUNT(*) over one lane's FASTQ via different access paths\n");
    let ds = reseq_dataset(factor)?;
    let db = dge_database(&dge_dataset(1)?)?; // engine instance for the TVF rung
    seqdb_core::import::import_filestream(&db, "_t3", &ds.fastq_path, 855, 1)?;
    db.catalog()
        .register_table_fn(Arc::new(seqdb_core::udx::ListShortReadsTvf::new(
            "ShortReadFiles_t3",
        )));
    let n_expected = ds.reads.len() as u64;

    // 1. Command-line program: chunked parse straight off the file.
    let (n, d1) = time(|| {
        let mut p = ChunkedFastqParser::new(IoChunkSource(std::fs::File::open(&ds.fastq_path)?));
        p.count_remaining()
    });
    assert_eq!(n?, n_expected);
    println!(
        "  command-line program (chunked file scan)    {:>10}",
        fmt_dur(d1)
    );

    // 2. Interpreted row-at-a-time procedure (the T-SQL rung).
    let (n, d2) = time(|| baseline::interpreted_count(&ds.fastq_path));
    assert_eq!(n?, n_expected);
    println!(
        "  interpreted procedure (T-SQL analogue)      {:>10}",
        fmt_dur(d2)
    );

    // 3. Line-at-a-time reader (StreamReader rung): per-record allocation.
    let (n, d3) = time(|| -> Result<u64> {
        let f = std::io::BufReader::new(std::fs::File::open(&ds.fastq_path)?);
        let mut r = SimpleFastqReader::new(f, DB_QUAL_ENCODING);
        let mut n = 0;
        while r.next_record()?.is_some() {
            n += 1;
        }
        Ok(n)
    });
    assert_eq!(n?, n_expected);
    println!(
        "  stored procedure with StreamReader          {:>10}",
        fmt_dur(d3)
    );

    // 4. Stored procedure with chunking: chunked parse over the
    //    FileStream blob, no row conversion.
    let guid = {
        let t = db.catalog().table("ShortReadFiles_t3")?;
        let row = t.heap.scan().next().expect("one blob row")?;
        row.1[0].as_guid()?
    };
    let (n, d4) = time(|| -> Result<u64> {
        let reader = db.filestream().open_reader(guid, true)?;
        struct Fs {
            r: seqdb_storage::FileStreamReader,
            off: u64,
        }
        impl seqdb_bio::fastq::ChunkSource for Fs {
            fn read_chunk(&mut self, buf: &mut [u8]) -> Result<usize> {
                let n = self.r.get_bytes(self.off, buf)?;
                self.off += n as u64;
                Ok(n)
            }
        }
        let mut p = ChunkedFastqParser::new(Fs { r: reader, off: 0 });
        p.count_remaining()
    });
    assert_eq!(n?, n_expected);
    println!(
        "  stored procedure with chunking (FileStream) {:>10}",
        fmt_dur(d4)
    );

    // 5. TVF with chunking, through the whole query engine (iterator
    //    contract + FillRow conversion per row).
    let (r, d5) = time(|| db.query_sql("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')"));
    let r = r?;
    assert_eq!(r.rows[0][0].as_int()? as u64, n_expected);
    println!(
        "  CLR TVF with chunking (full query engine)   {:>10}",
        fmt_dur(d5)
    );

    println!("\n  shape check (paper: interpreted >> StreamReader > TVF > chunked SP ~ cmdline):");
    println!(
        "    interpreted/cmdline = {:.1}x, StreamReader/chunkedSP = {:.1}x, TVF/chunkedSP = {:.1}x\n",
        d2.as_secs_f64() / d1.as_secs_f64().max(1e-9),
        d3.as_secs_f64() / d4.as_secs_f64().max(1e-9),
        d5.as_secs_f64() / d4.as_secs_f64().max(1e-9),
    );
    Ok(())
}

// ---------------------------------------------------------------- F7 --

fn fig7(factor: usize) -> Result<()> {
    println!("--- Figure 7: resource consumption of the binning script ---");
    let ds = dge_dataset(factor)?;
    let out = ds.dir.join("fig7_tags.txt");
    let (res, trace) = {
        let (r, _) = time(|| baseline::binning_script(&ds.fastq_path, &out));
        r?
    };
    println!(
        "  sequential script over {} reads -> {} unique tags",
        trace.records,
        res.len()
    );
    println!(
        "  cores used: {} (strictly sequential phases)",
        trace.cores_used
    );
    let total = trace.total();
    for (name, d) in &trace.phases {
        let pct = 100.0 * d.as_secs_f64() / total.as_secs_f64().max(1e-9);
        let bar = "#".repeat((pct / 4.0).round() as usize);
        println!("    phase {name:<8} {:>10}  {pct:5.1}%  {bar}", fmt_dur(*d));
    }
    println!("  total: {}\n", fmt_dur(total));
    Ok(())
}

// ---------------------------------------------------------------- F8 --

fn fig8(factor: usize) -> Result<()> {
    println!("--- Figure 8: multi-core use of SQL Query 1 (parallel plan) ---");
    let ds = dge_dataset(factor)?;
    let db = dge_database(&ds)?;
    let table = db.catalog().table(&format!("Read{NORM}"))?;
    let seq_col = table.schema.resolve("short_read_seq")?;
    let charindex = db.catalog().scalar_fn("CHARINDEX").expect("built-in");
    let filter = Expr::binary(
        BinOp::Eq,
        Expr::Func {
            udf: charindex,
            args: vec![Expr::lit("N"), Expr::col(seq_col, "short_read_seq")],
        },
        Expr::lit(0),
    );
    for dop in [1usize, 2, 4] {
        let mut it = ParallelAggIter::new(
            table.clone(),
            Some(filter.clone()),
            vec![Expr::col(seq_col, "short_read_seq")],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            dop,
            db.exec_context(),
        )?;
        let t = Instant::now();
        let mut groups = 0u64;
        while it.next()?.is_some() {
            groups += 1;
        }
        let wall = t.elapsed();
        println!("  DOP {dop}: {groups} groups in {}", fmt_dur(wall));
        for w in it.worker_stats() {
            let bar =
                "#".repeat(((w.busy.as_secs_f64() / wall.as_secs_f64().max(1e-9)) * 24.0) as usize);
            println!(
                "    worker {}: {:>8} rows, busy {:>9}  {bar}",
                w.worker,
                w.rows_scanned,
                fmt_dur(w.busy)
            );
        }
    }
    println!(
        "  note: this host has {} hardware core(s); worker busy time shows the",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("  even work distribution a multi-core host would exploit (see EXPERIMENTS.md).\n");
    Ok(())
}

// ------------------------------------------------------------- F9/F10 --

fn fig9(factor: usize) -> Result<()> {
    println!("--- Figure 9: parallel query plan for Query 1 ---");
    let ds = dge_dataset(factor.min(1))?;
    let db = dge_database(&ds)?;
    db.set_max_dop(4);
    let plan = db.plan_sql(&queries::query1_sql(NORM))?;
    println!("{}", plan.explain());
    println!("actual execution plan (EXPLAIN ANALYZE):");
    let analyzed = db.query_sql(&format!("EXPLAIN ANALYZE {}", queries::query1_sql(NORM)))?;
    for row in &analyzed.rows {
        println!("{row}");
    }
    println!();
    Ok(())
}

/// Hybrid Grace hash join vs forced Sort+MergeJoin on unsorted heaps,
/// at three scales and four execution shapes. Every variant computes
/// the same COUNT; the JSON keeps the timing + I/O trajectory.
fn join_bench(factor: usize) -> Result<()> {
    println!("--- Join strategies: hybrid Grace hash vs Sort+MergeJoin ---");
    const Q: &str = "SELECT COUNT(*) FROM big a JOIN small b ON (a.k = b.k)";
    const BUDGET_KB: u64 = 256;
    let mut entries = Vec::new();
    for base in [30_000i64, 60_000, 120_000] {
        let n = base * factor.max(1) as i64;
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE big (k INT, pay INT)")?;
        db.execute_sql("CREATE TABLE small (k INT, pay INT)")?;
        // A primary-key-style join (reads against reference positions):
        // big holds n distinct keys inserted in scrambled order, small
        // covers half of them, so the join emits n/2 rows.
        let scramble = |i: i64, m: i64| (i * 2_654_435_761 % m + m) % m;
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int(scramble(i, n)), Value::Int(i)]))
            .collect();
        db.insert_rows("big", &rows)?;
        let rows: Vec<Row> = (0..n / 2)
            .map(|i| Row::new(vec![Value::Int(scramble(i, n / 2)), Value::Int(i)]))
            .collect();
        db.insert_rows("small", &rows)?;
        let expect = Value::Int(n / 2);

        // (strategy, budget_kb, dop) per variant.
        let variants: [(&str, JoinStrategy, Option<u64>, usize); 4] = [
            ("merge-forced", JoinStrategy::Merge, None, 4),
            ("hash-resident", JoinStrategy::Auto, None, 4),
            ("hash-spilled", JoinStrategy::Hash, Some(BUDGET_KB), 1),
            ("hash-parallel", JoinStrategy::Hash, Some(BUDGET_KB), 4),
        ];
        println!("  n={n} (distinct keys, {} output rows):", n / 2);
        let mut walls = std::collections::HashMap::new();
        for (name, strategy, budget, dop) in variants {
            db.set_join_strategy(strategy);
            db.set_query_memory_limit_kb(budget);
            db.set_max_dop(dop);
            let before = IoSnapshot::now(&db);
            let (r, wall) = time(|| db.query_sql(Q));
            let io = IoSnapshot::now(&db).delta_since(&before);
            assert_eq!(r?.rows[0][0], expect, "{name} returned a wrong count");
            println!("    {name:>13}: {:>10}  {}", fmt_dur(wall), fmt_io(&io));
            walls.insert(name, wall);
            entries.push(BenchEntry {
                name: format!("n={n}/{name}"),
                wall,
                io,
            });
        }
        let merge = walls["merge-forced"].as_secs_f64();
        let hash = walls["hash-resident"].as_secs_f64().max(1e-9);
        println!(
            "    cost-based hash vs forced sort+merge: {:.2}x (unsorted input, DOP 4)",
            merge / hash
        );
    }
    let json = write_bench_json("join", &entries)?;
    println!("  wrote {}\n", json.display());
    Ok(())
}

fn fig10(factor: usize) -> Result<()> {
    println!("--- Figure 10: parallel merge-join plan for consensus (Query 3) ---");
    let ds = reseq_dataset(factor.min(1))?;
    let db = reseq_database(&ds)?;
    db.set_max_dop(4);
    let plan = db.plan_sql(&queries::merge_join_sql(NORM))?;
    println!("{}", plan.explain());
    println!("sliding-window consensus plan (programmatic, section 5.3.3):");
    let plan = queries::query3_sliding_plan(&db, NORM)?;
    println!("{}", plan.explain());
    Ok(())
}

// ---------------------------------------------------------------- E1 --

fn binning(factor: usize) -> Result<()> {
    println!("--- Section 5.3.2: script vs SQL unique-read binning ---");
    let ds = dge_dataset(factor)?;
    let db = dge_database(&ds)?;

    let out = ds.dir.join("e1_tags.txt");
    let ((script_tags, trace), script_time) = {
        let (r, d) = time(|| baseline::binning_script(&ds.fastq_path, &out));
        (r?, d)
    };
    let out2 = ds.dir.join("e1_tags_interp.txt");
    let ((interp_tags, _), interp_time) = {
        let (r, d) = time(|| baseline::interpreted_binning_script(&ds.fastq_path, &out2));
        (r?, d)
    };
    assert_eq!(script_tags, interp_tags);

    db.set_max_dop(4);
    let before = IoSnapshot::now(&db);
    let (sql_res, sql_time) = time(|| queries::run_query1(&db, NORM));
    let sql_io = IoSnapshot::now(&db).delta_since(&before);
    let sql_res = sql_res?;
    queries::check_query1_against(&sql_res, &ds.unique_tags)?;
    assert_eq!(
        script_tags.len(),
        sql_res.rows.len(),
        "both find the same tags"
    );

    println!(
        "  all approaches produce the same {} unique reads (paper: 565,526)",
        sql_res.rows.len()
    );
    println!(
        "  interpreted script (Perl analogue): {:>10}  (1 core)",
        fmt_dur(interp_time)
    );
    println!(
        "  compiled script (best-case script): {:>10}  (1 core, phases: {})",
        fmt_dur(script_time),
        trace
            .phases
            .iter()
            .map(|(n, d)| format!("{n} {}", fmt_dur(*d)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  SQL Query 1                       : {:>10}  (parallel plan, DOP {})",
        fmt_dur(sql_time),
        db.config().max_dop
    );
    println!(
        "  SQL vs interpreted script: {:.1}x (paper: Perl 10 min vs SQL 44 s = 13.6x on 4 cores;",
        interp_time.as_secs_f64() / sql_time.as_secs_f64().max(1e-9)
    );
    println!("  this host has 1 core — see EXPERIMENTS.md for the compiled-script caveat)");
    println!("  SQL Query 1 I/O: {}\n", fmt_io(&sql_io));
    let json = write_bench_json(
        "binning",
        &[BenchEntry {
            name: "sql_query1".into(),
            wall: sql_time,
            io: sql_io,
        }],
    )?;
    println!("  wrote {}\n", json.display());
    Ok(())
}

// ---------------------------------------------------------------- E2 --

fn consensus(factor: usize) -> Result<()> {
    println!("--- Section 5.3.3: consensus calling, pivot vs sliding window ---");
    let ds = reseq_dataset(factor)?;
    let db = reseq_database(&ds)?;
    // A tight memory grant so the sort-based pivot plan visibly spills
    // its intermediate (the paper's tempdb traffic).
    let mut cfg = db.config();
    cfg.sort_budget = 8 * 1024 * 1024;
    db.set_config(cfg);

    // Warm merge-join throughput (run twice, report the warm run).
    let _ = queries::run_merge_join(&db, NORM)?;
    let (n, join_time) = time(|| queries::run_merge_join(&db, NORM));
    let n = n?;
    println!(
        "  merge join Read x Alignment: {n} alignments in {} ({:.2}M alignments/s; paper: ~1.6M/s warm)",
        fmt_dur(join_time),
        n as f64 / join_time.as_secs_f64().max(1e-9) / 1e6
    );

    let before = IoSnapshot::now(&db);
    let (pivot, pivot_time) = time(|| queries::run_query3_pivot(&db, NORM));
    let pivot = pivot?;
    let pivot_io = IoSnapshot::now(&db).delta_since(&before);

    db.temp().reset_counters();
    let before = IoSnapshot::now(&db);
    let (sorted, sorted_time) = time(|| queries::run_query3_pivot_sorted(&db, NORM));
    let sorted = sorted?;
    let sorted_io = IoSnapshot::now(&db).delta_since(&before);
    let spill = db.temp().bytes_written();
    let spills = db.temp().spill_count();

    let before = IoSnapshot::now(&db);
    let (sliding, sliding_time) = time(|| queries::run_query3_sliding(&db, NORM));
    let sliding = sliding?;
    let sliding_io = IoSnapshot::now(&db).delta_since(&before);
    assert_eq!(pivot, sliding, "plans must agree");
    assert_eq!(sorted, sliding, "plans must agree");

    let pivoted_rows: u64 = ds
        .alignments
        .iter()
        .map(|a| ds.reads[a.subject as usize].record.seq.len() as u64)
        .sum();
    println!(
        "  pivot + hash grouping       : {:>10}  ({} pivoted rows held in the hash table)",
        fmt_dur(pivot_time),
        pivoted_rows
    );
    println!(
        "  pivot + external sort       : {:>10}  ({} spill files, {:.1} MiB written to tempdb)",
        fmt_dur(sorted_time),
        spills,
        spill as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  sliding-window UDA (ordered): {:>10}  (no intermediate, window = read length)",
        fmt_dur(sliding_time)
    );
    println!(
        "  consensus sequences: {} chromosomes, e.g. chr{} length {}",
        sliding.len(),
        sliding[0].0 + 1,
        sliding[0].1.len()
    );
    println!("  I/O (pivot+hash)    : {}", fmt_io(&pivot_io));
    println!("  I/O (pivot+sort)    : {}", fmt_io(&sorted_io));
    println!("  I/O (sliding window): {}", fmt_io(&sliding_io));
    let json = write_bench_json(
        "consensus",
        &[
            BenchEntry {
                name: "pivot_hash".into(),
                wall: pivot_time,
                io: pivot_io,
            },
            BenchEntry {
                name: "pivot_sort".into(),
                wall: sorted_time,
                io: sorted_io,
            },
            BenchEntry {
                name: "sliding_window".into(),
                wall: sliding_time,
                io: sliding_io,
            },
        ],
    )?;
    println!("  wrote {}\n", json.display());
    Ok(())
}

// ------------------------------------------------------ wire server --

/// The wire-server overload experiment: hundreds of concurrent clients
/// driving mixed import/query/KILL traffic through the network front
/// end, with admission queueing soaking the bursts, then a graceful
/// drain under load. Reported: throughput, p50/p99 statement latency,
/// peak admission-queue depth and connection gauge — all read over the
/// wire from the DMVs, the way an operator would watch a shared
/// genomics server.
fn server_bench(factor: usize, clients: usize) -> Result<()> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Duration;

    use seqdb_server::{Client, Server, ServerConfig};

    println!("--- Extension: wire server under {clients} concurrent clients ---");
    let db = Database::in_memory();
    db.execute_sql("CREATE TABLE reads (id INT NOT NULL, grp INT, v INT)")?;
    let rows: Vec<Row> = (0..12_000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]))
        .collect();
    db.insert_rows("reads", &rows)?;
    // A pool four heavy statements fill, with a deep queue behind it:
    // bursts wait their turn instead of failing or oversubscribing.
    db.set_admission_pool_kb(Some(256));
    db.set_admission_wait_ms(30_000);
    db.set_admission_queue_slots(2 * clients);

    let server = Server::start(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: clients + 8,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.addr();
    let run_for = Duration::from_millis(3_000 * factor as u64);
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicUsize::new(0));

    // Worker fleet: 1 in 4 clients is "heavy" (a governed, spilling
    // aggregate that contends for the admission pool); the rest mix
    // short queries, single-row imports and bogus KILLs (which must
    // come back typed, not as dropped connections).
    let mut workers = Vec::new();
    for who in 0..clients {
        let stop = stop.clone();
        let errors = errors.clone();
        workers.push(std::thread::spawn(move || -> Vec<f64> {
            let mut lat_ms = Vec::new();
            let Ok(mut c) = Client::connect(addr) else {
                return lat_ms;
            };
            let _ = c.set_read_timeout(Some(Duration::from_secs(60)));
            let heavy = who % 4 == 0;
            if heavy && c.query("SET QUERY_MEMORY_LIMIT_KB = 64").is_err() {
                return lat_ms;
            }
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let sql = if heavy {
                    "SELECT id, COUNT(*) FROM reads GROUP BY id"
                } else if i.is_multiple_of(11) {
                    "INSERT INTO reads VALUES (99999, 0, 1)"
                } else if i.is_multiple_of(17) {
                    "KILL 987654321"
                } else {
                    "SELECT COUNT(*) FROM reads"
                };
                let t = Instant::now();
                match c.query(sql) {
                    Ok(_) => lat_ms.push(t.elapsed().as_secs_f64() * 1e3),
                    Err(e) => {
                        // The bogus KILL must fail typed; anything else
                        // failing counts against the server.
                        if sql.starts_with("KILL") {
                            lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                            if !matches!(e, seqdb_types::DbError::NoSuchStatement(_)) {
                                errors.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        } else {
                            errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
            lat_ms
        }));
    }

    // Operator thread: watches queue depth and connection count through
    // the DMVs over its own connection, like a DBA dashboard would.
    let sampler_stop = stop.clone();
    let sampler = std::thread::spawn(move || -> (i64, i64) {
        let (mut max_queue, mut max_conns) = (0i64, 0i64);
        let Ok(mut c) = Client::connect(addr) else {
            return (0, 0);
        };
        let _ = c.set_read_timeout(Some(Duration::from_secs(10)));
        while !sampler_stop.load(Ordering::Relaxed) {
            let Ok(r) = c.query("SELECT counter_name, value FROM DM_OS_PERFORMANCE_COUNTERS()")
            else {
                break;
            };
            for row in &r.rows {
                let name = row[0].as_text().unwrap_or_default();
                let v = row[1].as_int().unwrap_or(0);
                if name == "admission_queue_depth" {
                    max_queue = max_queue.max(v);
                } else if name == "active_connections" {
                    max_conns = max_conns.max(v);
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        (max_queue, max_conns)
    });

    let bench_start = Instant::now();
    std::thread::sleep(run_for);
    stop.store(true, Ordering::Relaxed);
    let mut lat_ms: Vec<f64> = Vec::new();
    for w in workers {
        lat_ms.extend(w.join().unwrap_or_default());
    }
    let elapsed = bench_start.elapsed();
    let (max_queue, max_conns) = sampler.join().unwrap_or((0, 0));

    // Drain while the last stragglers are still connected.
    let drain_start = Instant::now();
    let report = server.drain()?;
    let drain_ms = drain_start.elapsed().as_secs_f64() * 1e3;

    lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| -> f64 {
        if lat_ms.is_empty() {
            return 0.0;
        }
        let idx = ((lat_ms.len() as f64 - 1.0) * p).round() as usize;
        lat_ms[idx]
    };
    let done = lat_ms.len();
    let throughput = done as f64 / elapsed.as_secs_f64();
    println!(
        "  {done} statements from {clients} clients in {} — {throughput:.0}/s",
        fmt_dur(elapsed)
    );
    println!(
        "  latency p50 {:.2} ms, p99 {:.2} ms; peak queue depth {max_queue}, peak connections {max_conns}",
        pct(0.50),
        pct(0.99)
    );
    println!(
        "  drain: {} finished, {} killed, {:.0} ms; client-visible errors {}",
        report.finished,
        report.killed,
        drain_ms,
        errors.load(std::sync::atomic::Ordering::Relaxed)
    );

    let path = seqdb_bench::workspace_dir("BENCH_server.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = format!(
        "{{\n  \"clients\": {clients},\n  \"duration_ms\": {:.0},\n  \"statements_ok\": {done},\n  \
         \"client_errors\": {},\n  \"throughput_per_s\": {throughput:.1},\n  \"p50_ms\": {:.3},\n  \
         \"p99_ms\": {:.3},\n  \"max_admission_queue_depth\": {max_queue},\n  \
         \"max_active_connections\": {max_conns},\n  \"drain_finished\": {},\n  \
         \"drain_killed\": {},\n  \"drain_ms\": {drain_ms:.0}\n}}\n",
        elapsed.as_secs_f64() * 1e3,
        errors.load(std::sync::atomic::Ordering::Relaxed),
        pct(0.50),
        pct(0.99),
        report.finished,
        report.killed,
    );
    std::fs::write(&path, json)?;
    println!("  wrote {}\n", path.display());
    Ok(())
}

// ------------------------------------------------------- trace cost --

/// Extension: the cost of leaving tracing on. The same 32-client wire
/// workload runs untraced, then with `SET TRACE_EVENTS = 'ALL'`, then
/// untraced again (the second baseline cancels machine drift), and the
/// overhead gate asserts the traced run keeps ≥95% of the untraced
/// throughput — the "cheap enough to leave on" budget from DESIGN.md.
fn trace_bench(factor: usize) -> Result<()> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Duration;

    use seqdb_server::{Client, Server, ServerConfig};

    const TRACE_CLIENTS: usize = 32;
    println!("--- Extension: tracing overhead at {TRACE_CLIENTS} wire clients ---");
    let db = Database::in_memory();
    db.execute_sql("CREATE TABLE reads (id INT NOT NULL, grp INT, v INT)")?;
    let rows: Vec<Row> = (0..12_000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]))
        .collect();
    db.insert_rows("reads", &rows)?;

    let server = Server::start(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: TRACE_CLIENTS + 8,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.addr();
    let run_for = Duration::from_millis(2_000 * factor as u64);

    // One measured phase: a fleet of clients looping the short-query /
    // group-by mix, returning total statements completed.
    let phase = |label: &str, dur: Duration| -> Result<f64> {
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for who in 0..TRACE_CLIENTS {
            let stop = stop.clone();
            let errors = errors.clone();
            workers.push(std::thread::spawn(move || -> usize {
                let Ok(mut c) = Client::connect(addr) else {
                    return 0;
                };
                let _ = c.set_read_timeout(Some(Duration::from_secs(30)));
                let mut done = 0usize;
                let mut i = who;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let sql = if i.is_multiple_of(7) {
                        "SELECT grp, COUNT(*) FROM reads GROUP BY grp"
                    } else {
                        "SELECT COUNT(*) FROM reads"
                    };
                    match c.query(sql) {
                        Ok(_) => done += 1,
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                done
            }));
        }
        let start = Instant::now();
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
        let done: usize = workers.into_iter().map(|w| w.join().unwrap_or(0)).sum();
        let elapsed = start.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed;
        println!(
            "  {label}: {done} statements in {elapsed:.2}s — {rate:.0}/s ({} client errors)",
            errors.load(Ordering::Relaxed)
        );
        Ok(rate)
    };

    let mut ctl = Client::connect(addr)?;
    ctl.query("SET TRACE_EVENTS = 'OFF'")?;
    let _ = phase("warmup", run_for / 4)?;
    let untraced_1 = phase("untraced", run_for)?;
    ctl.query("SET TRACE_EVENTS = 'ALL'")?;
    let traced = phase("traced (ALL)", run_for)?;
    ctl.query("SET TRACE_EVENTS = 'OFF'")?;
    let untraced_2 = phase("untraced (again)", run_for)?;
    let untraced = (untraced_1 + untraced_2) / 2.0;

    let overhead_pct = if untraced > 0.0 {
        ((untraced - traced) / untraced * 100.0).max(0.0)
    } else {
        0.0
    };
    let gate_ok = overhead_pct <= 5.0;
    let dropped = seqdb_engine::tracer().dropped();
    println!(
        "  tracing overhead {overhead_pct:.2}% (gate <= 5%: {}); ring events dropped {dropped}",
        if gate_ok { "PASS" } else { "FAIL" }
    );
    server.drain()?;

    let path = seqdb_bench::workspace_dir("BENCH_trace.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = format!(
        "{{\n  \"clients\": {TRACE_CLIENTS},\n  \"phase_ms\": {:.0},\n  \
         \"untraced_per_s\": {untraced:.1},\n  \"traced_all_per_s\": {traced:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"gate_ok\": {gate_ok},\n  \
         \"ring_events_dropped\": {dropped}\n}}\n",
        run_for.as_secs_f64() * 1e3,
    );
    std::fs::write(&path, json)?;
    println!("  wrote {}\n", path.display());
    Ok(())
}

// --------------------------------------------------------------- scrub --

/// The integrity-scrub experiment: how fast does a full `CHECK DATABASE`
/// pass walk a checkpointed database, and what does a continuous scrub
/// do to query latency under a 32-client read load? Reported: scrub
/// throughput in pages/s, blobs verified, and p50/p99 statement latency
/// with and without the scrubber running.
fn scrub_bench(factor: usize) -> Result<()> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Duration;

    use seqdb_server::{Client, Server, ServerConfig};

    const CLIENTS: usize = 32;
    println!("--- Extension: scrub throughput vs query latency ({CLIENTS} clients) ---");
    let dir = std::env::temp_dir().join(format!("seqdb-bench-scrub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let db = Database::open(&dir)?;
    db.execute_sql("CREATE TABLE reads (id INT NOT NULL, grp INT, seq VARCHAR(64))")?;
    let n = 120_000usize * factor.max(1);
    let rows: Vec<Row> = (0..n as i64)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::text(format!("ACGTACGTACGTACGTACGTACGT-{i:08}")),
            ])
        })
        .collect();
    db.insert_rows("reads", &rows)?;
    for lane in 0..4u8 {
        db.filestream().insert(&vec![lane; 256 * 1024])?;
    }
    db.checkpoint()?;

    let server = Server::start(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: CLIENTS + 8,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scrubbing = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicUsize::new(0));

    // Reader fleet: point lookups and a grouped aggregate, tagged by
    // whether the scrubber was running when the statement started.
    let mut workers = Vec::new();
    for who in 0..CLIENTS {
        let (stop, scrubbing, errors) = (stop.clone(), scrubbing.clone(), errors.clone());
        workers.push(std::thread::spawn(move || -> (Vec<f64>, Vec<f64>) {
            let (mut quiet, mut under) = (Vec::new(), Vec::new());
            let Ok(mut c) = Client::connect(addr) else {
                return (quiet, under);
            };
            let _ = c.set_read_timeout(Some(Duration::from_secs(60)));
            let mut i = who;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let sql = if i.is_multiple_of(5) {
                    "SELECT grp, COUNT(*) FROM reads GROUP BY grp".to_string()
                } else {
                    format!("SELECT COUNT(*) FROM reads WHERE grp = {}", i % 10)
                };
                let during_scrub = scrubbing.load(Ordering::Relaxed);
                let t = Instant::now();
                match c.query(&sql) {
                    Ok(_) => {
                        let ms = t.elapsed().as_secs_f64() * 1e3;
                        if during_scrub {
                            under.push(ms);
                        } else {
                            quiet.push(ms);
                        }
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            (quiet, under)
        }));
    }

    // Phase 1: quiet baseline. Phase 2: continuous CHECK DATABASE passes
    // on this thread while the fleet keeps querying.
    let phase = Duration::from_millis(1_500 * factor as u64);
    std::thread::sleep(phase);
    scrubbing.store(true, Ordering::Relaxed);
    let scrub_start = Instant::now();
    let (mut passes, mut pages, mut blobs) = (0u64, 0u64, 0u64);
    while scrub_start.elapsed() < phase || passes == 0 {
        let report = db.check_database(false)?;
        assert_eq!(report.unhealthy(), 0, "bench database must scrub clean");
        passes += 1;
        pages += report.pages_checked;
        blobs += report.blobs_checked;
    }
    let scrub_wall = scrub_start.elapsed();
    scrubbing.store(false, Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);

    let (mut quiet, mut under) = (Vec::new(), Vec::new());
    for w in workers {
        let (q, u) = w.join().unwrap_or_default();
        quiet.extend(q);
        under.extend(u);
    }
    server.drain()?;

    let sortf = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    };
    sortf(&mut quiet);
    sortf(&mut under);
    let pct = |v: &[f64], p: f64| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v[((v.len() as f64 - 1.0) * p).round() as usize]
    };
    let pages_per_s = pages as f64 / scrub_wall.as_secs_f64().max(1e-9);
    println!(
        "  scrub: {passes} full passes, {pages} pages + {blobs} blobs in {} — {pages_per_s:.0} pages/s",
        fmt_dur(scrub_wall)
    );
    println!(
        "  query latency quiet   : {} stmts, p50 {:.2} ms, p99 {:.2} ms",
        quiet.len(),
        pct(&quiet, 0.50),
        pct(&quiet, 0.99)
    );
    println!(
        "  query latency w/ scrub: {} stmts, p50 {:.2} ms, p99 {:.2} ms; client errors {}",
        under.len(),
        pct(&under, 0.50),
        pct(&under, 0.99),
        errors.load(Ordering::Relaxed)
    );

    let path = seqdb_bench::workspace_dir("BENCH_scrub.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \"scrub_passes\": {passes},\n  \"pages_checked\": {pages},\n  \
         \"blobs_checked\": {blobs},\n  \"scrub_wall_ms\": {:.0},\n  \"pages_per_s\": {pages_per_s:.1},\n  \
         \"quiet_stmts\": {},\n  \"quiet_p50_ms\": {:.3},\n  \"quiet_p99_ms\": {:.3},\n  \
         \"scrub_stmts\": {},\n  \"scrub_p50_ms\": {:.3},\n  \"scrub_p99_ms\": {:.3},\n  \
         \"client_errors\": {}\n}}\n",
        scrub_wall.as_secs_f64() * 1e3,
        quiet.len(),
        pct(&quiet, 0.50),
        pct(&quiet, 0.99),
        under.len(),
        pct(&under, 0.50),
        pct(&under, 0.99),
        errors.load(Ordering::Relaxed)
    );
    std::fs::write(&path, json)?;
    println!("  wrote {}", path.display());
    std::fs::remove_dir_all(&dir).ok();
    println!();
    Ok(())
}

/// Extension: online backup — query latency impact while a backup runs,
/// plus full vs incremental set size and wall time.
fn backup_bench(factor: usize) -> Result<()> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Duration;

    use seqdb_server::{Client, Server, ServerConfig};

    const CLIENTS: usize = 32;
    println!("--- Extension: online backup vs query latency ({CLIENTS} clients) ---");
    let dir = std::env::temp_dir().join(format!("seqdb-bench-backup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let db = Database::open(&dir.join("db"))?;
    db.execute_sql("CREATE TABLE reads (id INT NOT NULL, grp INT, seq VARCHAR(64))")?;
    let n = 120_000usize * factor.max(1);
    let rows: Vec<Row> = (0..n as i64)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::text(format!("ACGTACGTACGTACGTACGTACGT-{i:08}")),
            ])
        })
        .collect();
    db.insert_rows("reads", &rows)?;
    for lane in 0..4u8 {
        db.filestream().insert(&vec![lane; 256 * 1024])?;
    }
    db.checkpoint()?;

    let server = Server::start(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: CLIENTS + 8,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let backing_up = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicUsize::new(0));

    // Reader fleet, latencies tagged by whether a backup was in flight
    // when the statement started.
    let mut workers = Vec::new();
    for who in 0..CLIENTS {
        let (stop, backing_up, errors) = (stop.clone(), backing_up.clone(), errors.clone());
        workers.push(std::thread::spawn(move || -> (Vec<f64>, Vec<f64>) {
            let (mut quiet, mut under) = (Vec::new(), Vec::new());
            let Ok(mut c) = Client::connect(addr) else {
                return (quiet, under);
            };
            let _ = c.set_read_timeout(Some(Duration::from_secs(60)));
            c.set_retry_attempts(5);
            let mut i = who;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let sql = if i.is_multiple_of(5) {
                    "SELECT grp, COUNT(*) FROM reads GROUP BY grp".to_string()
                } else {
                    format!("SELECT COUNT(*) FROM reads WHERE grp = {}", i % 10)
                };
                let during = backing_up.load(Ordering::Relaxed);
                let t = Instant::now();
                match c.query(&sql) {
                    Ok(_) => {
                        let ms = t.elapsed().as_secs_f64() * 1e3;
                        if during {
                            under.push(ms);
                        } else {
                            quiet.push(ms);
                        }
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            (quiet, under)
        }));
    }

    // Phase 1: quiet baseline. Phase 2: full backup under load.
    let phase = Duration::from_millis(1_500 * factor as u64);
    std::thread::sleep(phase);
    backing_up.store(true, Ordering::Relaxed);
    let full_dir = dir.join("full");
    let t = Instant::now();
    let full = db.backup_database(&full_dir, None)?;
    let full_wall = t.elapsed();
    backing_up.store(false, Ordering::Relaxed);

    // Mutate ~2% of the data, then take an incremental under load.
    let delta: Vec<Row> = (n as i64..n as i64 + n as i64 / 50)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::text(format!("ACGTACGTACGTACGTACGTACGT-{i:08}")),
            ])
        })
        .collect();
    db.insert_rows("reads", &delta)?;
    backing_up.store(true, Ordering::Relaxed);
    let incr_dir = dir.join("incr");
    let t = Instant::now();
    let incr = db.backup_database(&incr_dir, Some(&full_dir))?;
    let incr_wall = t.elapsed();
    backing_up.store(false, Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);

    let (mut quiet, mut under) = (Vec::new(), Vec::new());
    for w in workers {
        let (q, u) = w.join().unwrap_or_default();
        quiet.extend(q);
        under.extend(u);
    }
    server.drain()?;

    // The restored set must verify — a backup benchmark over an
    // unrestorable set would be measuring garbage.
    seqdb_engine::verify_backup(&incr_dir)?;

    let sortf = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    };
    sortf(&mut quiet);
    sortf(&mut under);
    let pct = |v: &[f64], p: f64| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v[((v.len() as f64 - 1.0) * p).round() as usize]
    };
    // Compare actual bytes copied, not directory sizes: the skipped
    // pages of an incremental set are holes in a sparse data file.
    let (full_bytes, incr_bytes) = (full.bytes_written, incr.bytes_written);
    let fmt_b = |b: u64| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0));
    println!(
        "  full backup       : {} pages, {} in {}",
        full.pages_copied,
        fmt_b(full_bytes),
        fmt_dur(full_wall)
    );
    println!(
        "  incremental backup: {} pages copied, {} skipped, {} in {} ({:.1}% of full size)",
        incr.pages_copied,
        incr.pages_skipped,
        fmt_b(incr_bytes),
        fmt_dur(incr_wall),
        incr_bytes as f64 / full_bytes.max(1) as f64 * 100.0
    );
    println!(
        "  query latency quiet    : {} stmts, p50 {:.2} ms, p99 {:.2} ms",
        quiet.len(),
        pct(&quiet, 0.50),
        pct(&quiet, 0.99)
    );
    println!(
        "  query latency w/ backup: {} stmts, p50 {:.2} ms, p99 {:.2} ms; client errors {}",
        under.len(),
        pct(&under, 0.50),
        pct(&under, 0.99),
        errors.load(Ordering::Relaxed)
    );

    let path = seqdb_bench::workspace_dir("BENCH_backup.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \"full_pages\": {},\n  \"full_bytes\": {full_bytes},\n  \
         \"full_wall_ms\": {:.0},\n  \"incr_pages\": {},\n  \"incr_pages_skipped\": {},\n  \
         \"incr_bytes\": {incr_bytes},\n  \"incr_wall_ms\": {:.0},\n  \
         \"quiet_stmts\": {},\n  \"quiet_p50_ms\": {:.3},\n  \"quiet_p99_ms\": {:.3},\n  \
         \"backup_stmts\": {},\n  \"backup_p50_ms\": {:.3},\n  \"backup_p99_ms\": {:.3},\n  \
         \"client_errors\": {}\n}}\n",
        full.pages_copied,
        full_wall.as_secs_f64() * 1e3,
        incr.pages_copied,
        incr.pages_skipped,
        incr_wall.as_secs_f64() * 1e3,
        quiet.len(),
        pct(&quiet, 0.50),
        pct(&quiet, 0.99),
        under.len(),
        pct(&under, 0.50),
        pct(&under, 0.99),
        errors.load(Ordering::Relaxed)
    );
    std::fs::write(&path, json)?;
    println!("  wrote {}", path.display());
    std::fs::remove_dir_all(&dir).ok();
    println!();
    Ok(())
}

// ---------------------------------------------------------------- exec --

/// Vectorized batch execution vs forced row-at-a-time (`SET BATCH_SIZE`):
/// the same scan/filter/project/aggregate/join-probe pipelines at three
/// scales, timed in both modes over identical data with identical
/// results. Writes `BENCH_exec.json` with per-query throughput, I/O
/// deltas and the CI smoke gate (batch scan+filter >= 1.5x row mode).
fn exec_bench(factor: usize) -> Result<()> {
    println!("--- Vectorized execution: batch vs forced row-at-a-time ---");
    struct Measure {
        name: String,
        wall: std::time::Duration,
        rows_per_s: f64,
        io: IoSnapshot,
    }
    let mut measures: Vec<Measure> = Vec::new();
    // Gate speedups taken at the largest scale, where amortization is
    // most representative of real datasets.
    let mut gate = std::collections::HashMap::new();
    let scales: [i64; 3] = [30_000, 60_000, 120_000];
    for base in scales {
        let n = base * factor.max(1) as i64;
        let db = Database::in_memory();
        db.set_max_dop(1); // isolate batch-vs-row from parallelism
        db.execute_sql("CREATE TABLE reads (id INT NOT NULL, grp INT, v INT)")?;
        db.execute_sql("CREATE TABLE lanes (g INT, name VARCHAR(16))")?;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(i % 64),
                    Value::Int(i * 7 % 1000),
                ])
            })
            .collect();
        db.insert_rows("reads", &rows)?;
        let lanes: Vec<Row> = (0..48i64)
            .map(|g| Row::new(vec![Value::Int(g), Value::text(format!("lane{g}"))]))
            .collect();
        db.insert_rows("lanes", &lanes)?;

        // (label, sql): every pipeline the batch protocol natively covers.
        let queries: [(&str, &str); 4] = [
            ("scanfilter", "SELECT id, v FROM reads WHERE v < 700"),
            ("project", "SELECT id + v, grp FROM reads WHERE v < 700"),
            (
                "aggregate",
                "SELECT COUNT(*), SUM(v) FROM reads WHERE v < 700",
            ),
            (
                "joinprobe",
                "SELECT COUNT(*) FROM reads JOIN lanes ON (reads.grp = lanes.g)",
            ),
        ];
        // Best-of-N timing: each iteration is timed on its own and the
        // minimum is kept, which is robust to scheduler interference in
        // shared environments.
        let iters = (720_000 / n).clamp(3, 24) as usize;
        println!("  n={n} (best of {iters} timed iterations per mode):");
        for (label, sql) in queries {
            let mut walls = std::collections::HashMap::new();
            let mut row_count = None;
            for (mode, size) in [("row", 0usize), ("batch", 1024)] {
                db.execute_sql(&format!("SET BATCH_SIZE = {size}"))?;
                let check = db.query_sql(sql)?; // warmup + result capture
                match &row_count {
                    None => row_count = Some(check.rows.clone()),
                    Some(prev) => {
                        let mut a: Vec<String> = prev.iter().map(|r| r.to_string()).collect();
                        let mut b: Vec<String> = check.rows.iter().map(|r| r.to_string()).collect();
                        a.sort();
                        b.sort();
                        assert_eq!(a, b, "{label}: batch and row modes disagree");
                    }
                }
                let before = IoSnapshot::now(&db);
                let mut wall = std::time::Duration::MAX;
                for _ in 0..iters {
                    let (res, w) = time(|| db.query_sql(sql));
                    res?;
                    wall = wall.min(w);
                }
                let io = IoSnapshot::now(&db).delta_since(&before);
                let rows_per_s = n as f64 / wall.as_secs_f64().max(1e-9);
                measures.push(Measure {
                    name: format!("n={n}/{label}/{mode}"),
                    wall,
                    rows_per_s,
                    io,
                });
                walls.insert(mode, wall.as_secs_f64());
            }
            let speedup = walls["row"] / walls["batch"].max(1e-9);
            println!(
                "    {label:>10}: row {:>9} batch {:>9}  speedup {speedup:.2}x",
                fmt_dur(std::time::Duration::from_secs_f64(walls["row"])),
                fmt_dur(std::time::Duration::from_secs_f64(walls["batch"])),
            );
            if base == scales[scales.len() - 1] {
                gate.insert(label, speedup);
            }
        }
    }

    let scanfilter = gate.get("scanfilter").copied().unwrap_or(0.0);
    let aggregate = gate.get("aggregate").copied().unwrap_or(0.0);
    let joinprobe = gate.get("joinprobe").copied().unwrap_or(0.0);
    let gate_ok = scanfilter >= 1.5;
    println!(
        "  gate (batch scan+filter >= 1.5x row mode): {scanfilter:.2}x — {}",
        if gate_ok { "PASS" } else { "FAIL" }
    );

    let path = seqdb_bench::workspace_dir("BENCH_exec.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut json = String::from("{\n  \"entries\": [\n");
    for (i, m) in measures.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"rows_per_s\": {:.0}, \
             \"bufpool_hits\": {}, \"bufpool_misses\": {}, \"spill_files\": {}, \
             \"spill_bytes\": {}}}{}\n",
            m.name,
            m.wall.as_secs_f64() * 1e3,
            m.rows_per_s,
            m.io.bufpool_hits,
            m.io.bufpool_misses,
            m.io.spill_files,
            m.io.spill_bytes,
            if i + 1 < measures.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"scanfilter_speedup\": {scanfilter:.3},\n  \
         \"aggregate_speedup\": {aggregate:.3},\n  \
         \"joinprobe_speedup\": {joinprobe:.3},\n  \"gate_ok\": {gate_ok}\n}}\n"
    ));
    std::fs::write(&path, json)?;
    println!("  wrote {}\n", path.display());
    Ok(())
}

//! Criterion benches behind §5.2 (Table 3): the file-wrapping rungs of
//! `SELECT COUNT(*)` over a FASTQ lane.

use criterion::{criterion_group, criterion_main, Criterion};

use seqdb_bio::fastq::{ChunkedFastqParser, IoChunkSource, SimpleFastqReader};
use seqdb_core::baseline;
use seqdb_core::dataset::{DgeDataset, Scale};
use seqdb_core::udx::{self, DB_QUAL_ENCODING};
use seqdb_engine::Database;
use seqdb_sql::DatabaseSqlExt;

struct Setup {
    fastq: std::path::PathBuf,
    db: std::sync::Arc<Database>,
    n: u64,
}

fn setup() -> Setup {
    let dir = seqdb_bench::workspace_dir("crit-wrapping");
    let _ = std::fs::remove_dir_all(&dir);
    let ds = DgeDataset::generate(
        &dir,
        &Scale {
            genome_bp: 60_000,
            n_chromosomes: 3,
            n_reads: 5_000,
            seed: 77,
        },
    )
    .expect("dataset");
    let db = Database::in_memory();
    udx::register_udx(&db, None);
    seqdb_core::schema::create_filestream_schema(&db, "").unwrap();
    seqdb_core::import::import_filestream(&db, "", &ds.fastq_path, 855, 1).unwrap();
    Setup {
        fastq: ds.fastq_path.clone(),
        db,
        n: ds.reads.len() as u64,
    }
}

fn bench_wrapping(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("table3/count-star");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));

    g.bench_function("cmdline-chunked", |b| {
        b.iter(|| {
            let mut p =
                ChunkedFastqParser::new(IoChunkSource(std::fs::File::open(&s.fastq).unwrap()));
            let n = p.count_remaining().unwrap();
            assert_eq!(n, s.n);
            n
        })
    });

    g.bench_function("interpreted-procedure", |b| {
        b.iter(|| {
            let n = baseline::interpreted_count(&s.fastq).unwrap();
            assert_eq!(n, s.n);
            n
        })
    });

    g.bench_function("streamreader-procedure", |b| {
        b.iter(|| {
            let f = std::io::BufReader::new(std::fs::File::open(&s.fastq).unwrap());
            let mut r = SimpleFastqReader::new(f, DB_QUAL_ENCODING);
            let mut n = 0;
            while r.next_record().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, s.n);
            n
        })
    });

    g.bench_function("tvf-through-engine", |b| {
        b.iter(|| {
            let r =
                s.db.query_sql("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')")
                    .unwrap();
            assert_eq!(r.rows[0][0].as_int().unwrap() as u64, s.n);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wrapping);
criterion_main!(benches);

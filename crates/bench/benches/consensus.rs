//! Criterion benches behind §5.3.3 and Figure 10: merge-join
//! throughput and the three consensus plans (hash-grouped pivot,
//! sort-based pivot with tempdb spills, sliding-window UDA).

use criterion::{criterion_group, criterion_main, Criterion};

use seqdb_core::dataset::{ResequencingDataset, Scale};
use seqdb_core::queries;
use seqdb_core::workflow::{self, NORM};
use seqdb_engine::Database;

struct Setup {
    db: std::sync::Arc<Database>,
    n_alignments: usize,
}

fn setup() -> Setup {
    let dir = seqdb_bench::workspace_dir("crit-consensus");
    let _ = std::fs::remove_dir_all(&dir);
    let ds = ResequencingDataset::generate(
        &dir,
        &Scale {
            genome_bp: 60_000,
            n_chromosomes: 3,
            n_reads: 6_000,
            seed: 66,
        },
    )
    .expect("dataset");
    let db = Database::in_memory();
    workflow::load_reseq_designs(&db, &ds).unwrap();
    Setup {
        db,
        n_alignments: ds.alignments.len(),
    }
}

fn bench_consensus(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("e2/consensus");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));

    g.bench_function("merge-join-throughput", |b| {
        b.iter(|| {
            let n = queries::run_merge_join(&s.db, NORM).unwrap();
            assert_eq!(n as usize, s.n_alignments);
            n
        })
    });
    g.bench_function("pivot-hash-grouping", |b| {
        b.iter(|| queries::run_query3_pivot(&s.db, NORM).unwrap().len())
    });
    g.bench_function("pivot-external-sort", |b| {
        b.iter(|| queries::run_query3_pivot_sorted(&s.db, NORM).unwrap().len())
    });
    g.bench_function("sliding-window-uda", |b| {
        b.iter(|| queries::run_query3_sliding(&s.db, NORM).unwrap().len())
    });
    g.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);

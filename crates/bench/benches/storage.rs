//! Criterion benches behind Tables 1 and 2: import throughput and scan
//! cost per physical design / compression setting, plus the 2-bit
//! sequence-packing ablation the paper proposes in §6.1, plus the cost of
//! the write-ahead log on the insert+checkpoint path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seqdb_bio::dna::PackedSeq;
use seqdb_core::dataset::{DgeDataset, Scale};
use seqdb_core::import;
use seqdb_engine::Database;
use seqdb_storage::rowfmt::Compression;
use seqdb_storage::{BufferPool, FilePager, HeapFile, WriteAheadLog};
use seqdb_types::{Column, DataType, Row, Schema, Value};

fn dataset() -> DgeDataset {
    let dir = seqdb_bench::workspace_dir("crit-storage");
    let _ = std::fs::remove_dir_all(&dir);
    DgeDataset::generate(
        &dir,
        &Scale {
            genome_bp: 80_000,
            n_chromosomes: 3,
            n_reads: 4_000,
            seed: 55,
        },
    )
    .expect("dataset")
}

fn bench_import(c: &mut Criterion) {
    let ds = dataset();
    let mut g = c.benchmark_group("table1/import");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for (label, comp) in [
        ("normalized", Compression::None),
        ("norm+row", Compression::Row),
        ("norm+page", Compression::Page),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &comp, |b, &comp| {
            b.iter(|| {
                let db = Database::in_memory();
                import::import_dge_normalized(&db, "", comp, &ds).unwrap();
                db.catalog().table("Read").unwrap().heap.allocated_bytes()
            })
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let ds = dataset();
    let mut g = c.benchmark_group("table1/scan");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for (label, comp) in [
        ("normalized", Compression::None),
        ("norm+row", Compression::Row),
        ("norm+page", Compression::Page),
    ] {
        let db = Database::in_memory();
        import::import_dge_normalized(&db, "", comp, &ds).unwrap();
        let table = db.catalog().table("Read").unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &table, |b, table| {
            b.iter(|| {
                let mut n = 0u64;
                for item in table.heap.scan() {
                    item.unwrap();
                    n += 1;
                }
                n
            })
        });
    }
    g.finish();
}

fn bench_seq_packing(c: &mut Criterion) {
    // §6.1 ablation: text vs 2-bit packed sequence storage.
    let ds = dataset();
    let mut g = c.benchmark_group("ablation/sequence-encoding");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    let seqs: Vec<&str> = ds.reads.iter().map(|r| r.seq.as_str()).take(2000).collect();
    g.bench_function("text", |b| {
        b.iter(|| seqs.iter().map(|s| s.len()).sum::<usize>())
    });
    g.bench_function("packed-2bit", |b| {
        b.iter(|| {
            seqs.iter()
                .map(|s| PackedSeq::from_str(s).unwrap().packed_bytes())
                .sum::<usize>()
        })
    });
    // Size ratio printed once for the record.
    let text: usize = seqs.iter().map(|s| s.len()).sum();
    let packed: usize = seqs
        .iter()
        .map(|s| PackedSeq::from_str(s).unwrap().packed_bytes())
        .sum();
    eprintln!(
        "sequence bytes: text {text}, packed {packed} ({:.2}x smaller)",
        text as f64 / packed as f64
    );
    g.finish();
}

fn bench_wal_overhead(c: &mut Criterion) {
    // Cost of crash safety: 2000 heap inserts with a checkpoint every 500
    // rows, against a file-backed pager, with and without the WAL. The
    // WAL run pays one log append per dirty page plus an fsync per
    // checkpoint before the in-place writes start.
    let dir = seqdb_bench::workspace_dir("crit-wal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let schema = Arc::new(Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("seq", DataType::Text),
    ]));
    let rows: Vec<Row> = (0..2000)
        .map(|i| Row::new(vec![Value::Int(i), Value::text("ACGTACGTACGTACGTACGT")]))
        .collect();
    let mut g = c.benchmark_group("durability/insert+checkpoint");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for wal_on in [false, true] {
        let label = if wal_on { "wal" } else { "no-wal" };
        let mut iter_no = 0u32;
        g.bench_function(label, |b| {
            b.iter(|| {
                iter_no += 1;
                let data = dir.join(format!("{label}-{iter_no}.data"));
                let pager = Arc::new(FilePager::open(&data).expect("pager"));
                let pool = if wal_on {
                    let wal_path = dir.join(format!("{label}-{iter_no}.wal"));
                    let wal = Arc::new(WriteAheadLog::open_file(&wal_path).expect("wal"));
                    BufferPool::with_wal(pager, 256, wal)
                } else {
                    BufferPool::new(pager, 256)
                };
                let heap =
                    HeapFile::create(pool.clone(), schema.clone(), Compression::None).unwrap();
                for (i, row) in rows.iter().enumerate() {
                    heap.insert(row).unwrap();
                    if (i + 1) % 500 == 0 {
                        pool.checkpoint().unwrap();
                    }
                }
                heap.row_count()
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_import,
    bench_scan,
    bench_seq_packing,
    bench_wal_overhead
);
criterion_main!(benches);

//! Criterion benches behind Tables 1 and 2: import throughput and scan
//! cost per physical design / compression setting, plus the 2-bit
//! sequence-packing ablation the paper proposes in §6.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seqdb_bio::dna::PackedSeq;
use seqdb_core::dataset::{DgeDataset, Scale};
use seqdb_core::import;
use seqdb_engine::Database;
use seqdb_storage::rowfmt::Compression;

fn dataset() -> DgeDataset {
    let dir = seqdb_bench::workspace_dir("crit-storage");
    let _ = std::fs::remove_dir_all(&dir);
    DgeDataset::generate(
        &dir,
        &Scale {
            genome_bp: 80_000,
            n_chromosomes: 3,
            n_reads: 4_000,
            seed: 55,
        },
    )
    .expect("dataset")
}

fn bench_import(c: &mut Criterion) {
    let ds = dataset();
    let mut g = c.benchmark_group("table1/import");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for (label, comp) in [
        ("normalized", Compression::None),
        ("norm+row", Compression::Row),
        ("norm+page", Compression::Page),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &comp, |b, &comp| {
            b.iter(|| {
                let db = Database::in_memory();
                import::import_dge_normalized(&db, "", comp, &ds).unwrap();
                db.catalog().table("Read").unwrap().heap.allocated_bytes()
            })
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let ds = dataset();
    let mut g = c.benchmark_group("table1/scan");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for (label, comp) in [
        ("normalized", Compression::None),
        ("norm+row", Compression::Row),
        ("norm+page", Compression::Page),
    ] {
        let db = Database::in_memory();
        import::import_dge_normalized(&db, "", comp, &ds).unwrap();
        let table = db.catalog().table("Read").unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &table, |b, table| {
            b.iter(|| {
                let mut n = 0u64;
                for item in table.heap.scan() {
                    item.unwrap();
                    n += 1;
                }
                n
            })
        });
    }
    g.finish();
}

fn bench_seq_packing(c: &mut Criterion) {
    // §6.1 ablation: text vs 2-bit packed sequence storage.
    let ds = dataset();
    let mut g = c.benchmark_group("ablation/sequence-encoding");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.warm_up_time(std::time::Duration::from_secs(1));
    let seqs: Vec<&str> = ds.reads.iter().map(|r| r.seq.as_str()).take(2000).collect();
    g.bench_function("text", |b| {
        b.iter(|| {
            seqs.iter().map(|s| s.len()).sum::<usize>()
        })
    });
    g.bench_function("packed-2bit", |b| {
        b.iter(|| {
            seqs.iter()
                .map(|s| PackedSeq::from_str(s).unwrap().packed_bytes())
                .sum::<usize>()
        })
    });
    // Size ratio printed once for the record.
    let text: usize = seqs.iter().map(|s| s.len()).sum();
    let packed: usize = seqs
        .iter()
        .map(|s| PackedSeq::from_str(s).unwrap().packed_bytes())
        .sum();
    eprintln!("sequence bytes: text {text}, packed {packed} ({:.2}x smaller)", text as f64 / packed as f64);
    g.finish();
}

criterion_group!(benches, bench_import, bench_scan, bench_seq_packing);
criterion_main!(benches);

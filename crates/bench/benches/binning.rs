//! Criterion benches behind §5.3.2 and Figures 7–9: script baselines vs
//! the engine's Query 1, and the parallel-aggregate DOP sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seqdb_core::baseline;
use seqdb_core::dataset::{DgeDataset, Scale};
use seqdb_core::queries;
use seqdb_core::workflow::{self, NORM};
use seqdb_engine::Database;

struct Setup {
    ds: DgeDataset,
    db: std::sync::Arc<Database>,
}

fn setup() -> Setup {
    let dir = seqdb_bench::workspace_dir("crit-binning");
    let _ = std::fs::remove_dir_all(&dir);
    let ds = DgeDataset::generate(
        &dir,
        &Scale {
            genome_bp: 80_000,
            n_chromosomes: 3,
            n_reads: 6_000,
            seed: 88,
        },
    )
    .expect("dataset");
    let db = Database::in_memory();
    workflow::load_dge_designs(&db, &ds).unwrap();
    Setup { ds, db }
}

fn bench_binning(c: &mut Criterion) {
    let s = setup();
    let out = s.ds.dir.join("bench_tags.txt");
    let mut g = c.benchmark_group("e1/binning");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.warm_up_time(std::time::Duration::from_secs(1));

    g.bench_function("compiled-script", |b| {
        b.iter(|| {
            baseline::binning_script(&s.ds.fastq_path, &out)
                .unwrap()
                .0
                .len()
        })
    });
    g.bench_function("interpreted-script", |b| {
        b.iter(|| {
            baseline::interpreted_binning_script(&s.ds.fastq_path, &out)
                .unwrap()
                .0
                .len()
        })
    });
    for dop in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("sql-query1-dop", dop), &dop, |b, &dop| {
            s.db.set_max_dop(dop);
            b.iter(|| queries::run_query1(&s.db, NORM).unwrap().rows.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_binning);
criterion_main!(benches);

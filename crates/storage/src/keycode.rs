//! Order-preserving key encoding for B+-tree indexes.
//!
//! Composite keys (e.g. the paper's `(a_e_id, a_sg_id, a_s_id, a_g_id)`
//! primary keys) are encoded so that a bytewise comparison of the encoded
//! forms equals the column-by-column [`Value::total_cmp`] comparison —
//! with one caveat: `Int` and `Float` use *different* encodings, so a
//! single index column must be homogeneously typed (which the engine's
//! typed schemas guarantee).

use seqdb_types::{DbError, Result, Value};

const T_NULL: u8 = 0x00;
const T_BOOL: u8 = 0x01;
const T_INT: u8 = 0x02;
const T_FLOAT: u8 = 0x03;
const T_TEXT: u8 = 0x04;
const T_BYTES: u8 = 0x05;
const T_GUID: u8 = 0x06;

/// Encode a composite key.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 9);
    for v in values {
        encode_one(&mut out, v);
    }
    out
}

fn encode_one(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(T_NULL),
        Value::Bool(b) => {
            out.push(T_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(T_INT);
            // Flip the sign bit so two's-complement order becomes
            // lexicographic order.
            out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Float(f) => {
            out.push(T_FLOAT);
            let bits = f.to_bits();
            // IEEE-754 totally-ordered encoding: negative floats reverse.
            let sortable = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits | (1 << 63)
            };
            out.extend_from_slice(&sortable.to_be_bytes());
        }
        Value::Text(s) => {
            out.push(T_TEXT);
            escape_bytes(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(T_BYTES);
            escape_bytes(out, b);
        }
        Value::Guid(g) => {
            out.push(T_GUID);
            out.extend_from_slice(&g.to_be_bytes());
        }
    }
}

/// 0x00-escaped, 0x00 0x00-terminated byte string: preserves prefix order
/// and makes the terminator sort before any continuation.
fn escape_bytes(out: &mut Vec<u8>, b: &[u8]) {
    for &byte in b {
        if byte == 0x00 {
            out.extend_from_slice(&[0x00, 0xff]);
        } else {
            out.push(byte);
        }
    }
    out.extend_from_slice(&[0x00, 0x00]);
}

/// Decode a key produced by [`encode_key`]. Mostly used by tests and
/// diagnostics; the engine stores the full row as the B+-tree value.
pub fn decode_key(buf: &[u8]) -> Result<Vec<Value>> {
    let err = || DbError::Storage("corrupt index key".into());
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        let tag = buf[pos];
        pos += 1;
        let v = match tag {
            T_NULL => Value::Null,
            T_BOOL => {
                let b = *buf.get(pos).ok_or_else(err)?;
                pos += 1;
                Value::Bool(b != 0)
            }
            T_INT => {
                let raw = buf.get(pos..pos + 8).ok_or_else(err)?;
                pos += 8;
                let u = u64::from_be_bytes(raw.try_into().unwrap()) ^ (1 << 63);
                Value::Int(u as i64)
            }
            T_FLOAT => {
                let raw = buf.get(pos..pos + 8).ok_or_else(err)?;
                pos += 8;
                let sortable = u64::from_be_bytes(raw.try_into().unwrap());
                let bits = if sortable & (1 << 63) != 0 {
                    sortable ^ (1 << 63)
                } else {
                    !sortable
                };
                Value::Float(f64::from_bits(bits))
            }
            T_TEXT => {
                let (bytes, np) = unescape_bytes(buf, pos).ok_or_else(err)?;
                pos = np;
                let s = String::from_utf8(bytes).map_err(|_| err())?;
                Value::text(s)
            }
            T_BYTES => {
                let (bytes, np) = unescape_bytes(buf, pos).ok_or_else(err)?;
                pos = np;
                Value::Bytes(bytes.into())
            }
            T_GUID => {
                let raw = buf.get(pos..pos + 16).ok_or_else(err)?;
                pos += 16;
                Value::Guid(u128::from_be_bytes(raw.try_into().unwrap()))
            }
            _ => return Err(err()),
        };
        out.push(v);
    }
    Ok(out)
}

fn unescape_bytes(buf: &[u8], mut pos: usize) -> Option<(Vec<u8>, usize)> {
    let mut out = Vec::new();
    loop {
        let b = *buf.get(pos)?;
        pos += 1;
        if b != 0x00 {
            out.push(b);
            continue;
        }
        match *buf.get(pos)? {
            0x00 => return Some((out, pos + 1)),
            0xff => {
                out.push(0x00);
                pos += 1;
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn int_order_preserved() {
        let vals = [-1_000_000i64, -1, 0, 1, 42, i64::MAX, i64::MIN];
        let mut encoded: Vec<(Vec<u8>, i64)> = vals
            .iter()
            .map(|&i| (encode_key(&[Value::Int(i)]), i))
            .collect();
        encoded.sort();
        let sorted: Vec<i64> = encoded.iter().map(|(_, i)| *i).collect();
        let mut expect = vals.to_vec();
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn null_sorts_before_everything() {
        let null = encode_key(&[Value::Null]);
        for v in [Value::Int(i64::MIN), Value::text(""), Value::Bool(false)] {
            assert!(null < encode_key(&[v]));
        }
    }

    #[test]
    fn text_prefix_order() {
        let a = encode_key(&[Value::text("chr1")]);
        let b = encode_key(&[Value::text("chr10")]);
        let c = encode_key(&[Value::text("chr2")]);
        assert!(a < b && b < c);
    }

    #[test]
    fn composite_keys_compare_column_major() {
        let k1 = encode_key(&[Value::Int(1), Value::Int(999)]);
        let k2 = encode_key(&[Value::Int(2), Value::Int(0)]);
        assert!(k1 < k2);
    }

    #[test]
    fn embedded_zero_bytes_are_safe() {
        let a = encode_key(&[Value::bytes(b"a\x00b"), Value::Int(1)]);
        let b = encode_key(&[Value::bytes(b"a"), Value::Int(1)]);
        assert_ne!(a, b);
        assert_eq!(decode_key(&a).unwrap()[0], Value::bytes(b"a\x00b"));
    }

    proptest! {
        #[test]
        fn roundtrip_ints(v: i64) {
            let k = encode_key(&[Value::Int(v)]);
            prop_assert_eq!(decode_key(&k).unwrap(), vec![Value::Int(v)]);
        }

        #[test]
        fn roundtrip_text(s in "\\PC{0,40}") {
            let k = encode_key(&[Value::text(&s)]);
            prop_assert_eq!(decode_key(&k).unwrap(), vec![Value::text(&s)]);
        }

        #[test]
        fn int_encoding_matches_total_cmp(a: i64, b: i64) {
            let ka = encode_key(&[Value::Int(a)]);
            let kb = encode_key(&[Value::Int(b)]);
            prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        }

        #[test]
        fn float_encoding_matches_total_cmp(a: f64, b: f64) {
            let va = Value::Float(a);
            let vb = Value::Float(b);
            let ka = encode_key(std::slice::from_ref(&va));
            let kb = encode_key(std::slice::from_ref(&vb));
            prop_assert_eq!(ka.cmp(&kb), va.total_cmp(&vb));
        }

        #[test]
        fn bytes_encoding_matches_total_cmp(
            a in proptest::collection::vec(any::<u8>(), 0..32),
            b in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let va = Value::bytes(&a);
            let vb = Value::bytes(&b);
            let ka = encode_key(std::slice::from_ref(&va));
            let kb = encode_key(std::slice::from_ref(&vb));
            prop_assert_eq!(ka.cmp(&kb), va.total_cmp(&vb));
        }
    }
}

//! Integrity scrubbing primitives: page verification, single-page repair,
//! and the persisted quarantine list.
//!
//! Silent at-rest corruption — bit rot, torn writes that slipped past a
//! dying disk's own ECC — is a *when*, not an *if*, for archives that sit
//! on cheap media for years. The storage layer already detects it (every
//! page read verifies a CRC-32C checksum, every blob can be re-hashed
//! against its import-time SHA-256); this module adds the other half of
//! the lifecycle:
//!
//! * **detect** — [`check_page`] reads a page straight from the store and
//!   verifies it without touching the buffer pool, so scrubbing never
//!   pollutes the cache with garbage (it can't anyway: corrupt images are
//!   rejected before frame insertion);
//! * **repair** — [`repair_page`] rewrites a corrupt page from the best
//!   available good image: the buffer pool's cached frame (always at
//!   least as fresh as disk) or the WAL's last committed copy
//!   ([`wal_last_images`]); both paths log the image before the in-place
//!   write, so a crash mid-repair is itself recoverable;
//! * **contain** — pages and blobs with no recoverable image land on a
//!   persisted [`Quarantine`] list; statements touching a quarantined
//!   object fail with the typed `DbError::Quarantined` while everything
//!   else stays online. A successful repair or re-import clears the entry.
//!
//! The orchestration (walking catalogs, rate limiting, SQL `CHECK`,
//! DMVs) lives in the engine; these primitives know only pages, frames,
//! WAL images and object-name strings.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use seqdb_types::{DbError, Result};

use crate::buffer::BufferPool;
use crate::counters::{storage_counters, waits, WaitClass};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pager::PageStore;
use crate::wal::WriteAheadLog;

/// The persisted list of objects fenced off for unrepaired corruption.
///
/// Keys are lowercase table names, or `filestream:<guid-string>` for
/// blobs (which use page 0). Entries survive restarts via a text file of
/// `object<TAB>page` lines rewritten atomically (tmp + rename) on every
/// mutation; an in-memory database passes no path and keeps the list in
/// memory only.
pub struct Quarantine {
    path: Option<PathBuf>,
    entries: Mutex<BTreeMap<String, BTreeSet<u64>>>,
}

impl Quarantine {
    /// An unpersisted list (in-memory databases).
    pub fn in_memory() -> Arc<Quarantine> {
        Arc::new(Quarantine {
            path: None,
            entries: Mutex::new(BTreeMap::new()),
        })
    }

    /// Open (or create) a persisted list at `path`, loading any entries a
    /// previous process left behind — quarantine must survive restarts or
    /// a reboot would silently un-fence known-bad data.
    pub fn open(path: impl Into<PathBuf>) -> Result<Arc<Quarantine>> {
        let path = path.into();
        let mut entries: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                let Some((object, page)) = line.split_once('\t') else {
                    continue;
                };
                let Ok(page) = page.trim().parse::<u64>() else {
                    continue;
                };
                entries.entry(object.to_string()).or_default().insert(page);
            }
        }
        Ok(Arc::new(Quarantine {
            path: Some(path),
            entries: Mutex::new(entries),
        }))
    }

    /// Fence `page` of `object`. Idempotent. Persistence is best-effort:
    /// failing to write the list (the disk may be the very thing that is
    /// dying) must not stop the scrub — the in-memory fence still holds
    /// for this process's lifetime.
    pub fn add(&self, object: &str, page: u64) {
        let mut entries = self.entries.lock();
        entries.entry(object.to_string()).or_default().insert(page);
        self.persist(&entries);
    }

    /// Un-fence one page of `object` (after a successful repair). The
    /// object becomes reachable again once its last page is cleared.
    pub fn clear(&self, object: &str, page: u64) {
        let mut entries = self.entries.lock();
        if let Some(pages) = entries.get_mut(object) {
            pages.remove(&page);
            if pages.is_empty() {
                entries.remove(object);
            }
        }
        self.persist(&entries);
    }

    /// Un-fence `object` entirely (after a re-import or drop).
    pub fn clear_object(&self, object: &str) {
        let mut entries = self.entries.lock();
        entries.remove(object);
        self.persist(&entries);
    }

    /// Fail with the typed [`DbError::Quarantined`] if `object` is fenced.
    /// This is the chokepoint statements hit before touching an object.
    pub fn check(&self, object: &str) -> Result<()> {
        let entries = self.entries.lock();
        if let Some(pages) = entries.get(object) {
            let page = pages.iter().next().copied().unwrap_or(0);
            return Err(DbError::Quarantined {
                object: object.to_string(),
                page,
            });
        }
        Ok(())
    }

    /// Every `(object, page)` entry, for the scrub-status DMV.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let entries = self.entries.lock();
        entries
            .iter()
            .flat_map(|(object, pages)| pages.iter().map(move |&p| (object.clone(), p)))
            .collect()
    }

    /// Number of quarantined `(object, page)` entries.
    pub fn len(&self) -> usize {
        self.entries.lock().values().map(|p| p.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    fn persist(&self, entries: &BTreeMap<String, BTreeSet<u64>>) {
        let Some(path) = &self.path else {
            return;
        };
        let mut text = String::new();
        for (object, pages) in entries {
            for page in pages {
                text.push_str(object);
                text.push('\t');
                text.push_str(&page.to_string());
                text.push('\n');
            }
        }
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, text).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
}

/// Verify one page image straight from the durable store (bypassing the
/// buffer pool, so a cached good copy never masks a rotted disk image).
/// Returns `Ok(true)` if the image verifies, `Ok(false)` if it is
/// corrupt, and `Err` only for I/O failures reading it. A page of all
/// zeroes is *clean*: it was allocated but never checkpointed, and its
/// real contents still live in the buffer pool or WAL.
pub fn check_page(store: &dyn PageStore, id: PageId) -> Result<bool> {
    let start = Instant::now();
    let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
    let res = store.read_page(id, &mut buf);
    waits().record(WaitClass::ScrubIo, start.elapsed());
    storage_counters()
        .scrub_pages_checked
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    res?;
    if buf.iter().all(|&b| b == 0) {
        return Ok(true);
    }
    Ok(Page::from_bytes(buf).is_ok())
}

/// The WAL's last committed image of every page it still holds. Eviction
/// writebacks append page images under commit markers *without*
/// truncating the log (only checkpoint and recovery truncate), so every
/// page written back since the last checkpoint is recoverable from here.
/// Safe to call on a live log: `replay` only reads and re-derives the
/// next sequence number it already has.
pub fn wal_last_images(wal: &WriteAheadLog) -> Result<HashMap<PageId, Box<[u8]>>> {
    let outcome = wal.replay()?;
    let mut last = HashMap::new();
    for (id, image) in outcome.images {
        last.insert(id, image);
    }
    Ok(last)
}

/// Attempt a single-page repair of a page that failed [`check_page`],
/// from the best available good image:
///
/// 1. the buffer pool's cached frame — corrupt images never enter the
///    cache (fetch verifies before inserting), so a cached frame is
///    always at least as fresh as the disk copy;
/// 2. the WAL's last committed image (verified before use — the log
///    cannot "repair" a page with garbage).
///
/// Both paths follow WAL-before-data, so a crash mid-repair replays
/// cleanly. Returns `true` if the on-disk image now verifies.
pub fn repair_page(
    pool: &BufferPool,
    wal_images: &HashMap<PageId, Box<[u8]>>,
    id: PageId,
) -> Result<bool> {
    if pool.rewrite_from_cache(id)? && check_page(pool.store().as_ref(), id)? {
        storage_counters()
            .pages_repaired
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        return Ok(true);
    }
    if let Some(image) = wal_images.get(&id) {
        if Page::from_bytes(image.clone()).is_ok() {
            pool.restore_page(id, image)?;
            if check_page(pool.store().as_ref(), id)? {
                storage_counters()
                    .pages_repaired
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(true);
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;
    use crate::pager::MemPager;
    use crate::wal::MemWalBackend;

    #[test]
    fn quarantine_checks_and_clears() {
        let q = Quarantine::in_memory();
        assert!(q.check("reads").is_ok());
        q.add("reads", 7);
        q.add("reads", 3);
        let err = q.check("reads").unwrap_err();
        assert_eq!(
            err,
            DbError::Quarantined {
                object: "reads".into(),
                page: 3
            },
            "check reports the first quarantined page"
        );
        assert!(q.check("other").is_ok(), "only the fenced object fails");
        q.clear("reads", 3);
        assert!(matches!(
            q.check("reads"),
            Err(DbError::Quarantined { page: 7, .. })
        ));
        q.clear("reads", 7);
        assert!(q.check("reads").is_ok());
        assert!(q.is_empty());
    }

    #[test]
    fn quarantine_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("seqdb-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.list");
        {
            let q = Quarantine::open(&path).unwrap();
            q.add("reads", 12);
            q.add("filestream:abc-def", 0);
        }
        let q = Quarantine::open(&path).unwrap();
        assert_eq!(q.len(), 2);
        assert!(q.check("reads").is_err());
        assert!(q.check("filestream:abc-def").is_err());
        q.clear_object("reads");
        // A third open sees the clear too.
        let q = Quarantine::open(&path).unwrap();
        assert!(q.check("reads").is_ok());
        assert!(q.check("filestream:abc-def").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_page_detects_corruption_and_tolerates_fresh_pages() {
        let store = Arc::new(MemPager::new());
        let pool = BufferPool::new(store.clone(), 16);
        let (id, frame) = pool.allocate(PageType::Heap).unwrap();
        frame.page.write().insert(b"payload").unwrap();
        frame.mark_dirty();
        drop(frame);
        // Never checkpointed: the disk image is all zeroes — clean.
        assert!(check_page(store.as_ref(), id).unwrap());
        pool.checkpoint().unwrap();
        assert!(check_page(store.as_ref(), id).unwrap());
        // Flip a byte at rest.
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut buf).unwrap();
        buf[100] ^= 0xFF;
        store.write_page(id, &buf).unwrap();
        assert!(!check_page(store.as_ref(), id).unwrap());
    }

    #[test]
    fn evicted_pages_are_repairable_from_the_wal() {
        let store = Arc::new(MemPager::new());
        let wal = Arc::new(WriteAheadLog::new(Box::new(MemWalBackend::new())));
        let pool = BufferPool::with_wal(store.clone(), 8, wal.clone());
        // Overflow the pool so early pages are evicted; each eviction
        // writeback logs the image under a commit without truncating.
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let (id, frame) = pool.allocate(PageType::Heap).unwrap();
            frame.page.write().insert(&[i; 16]).unwrap();
            frame.mark_dirty();
            ids.push(id);
        }
        let victim = ids[0];
        assert!(pool.cached_frames() <= 8, "pool stayed within capacity");
        // Rot the evicted page at rest.
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(victim, &mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0), "victim was written back");
        buf[37] ^= 0x40;
        store.write_page(victim, &buf).unwrap();
        assert!(!check_page(store.as_ref(), victim).unwrap());
        // Repair: not cached any more, so the WAL image is the source.
        let images = wal_last_images(&wal).unwrap();
        assert!(images.contains_key(&victim), "writeback logged the image");
        let repaired_before = storage_counters()
            .pages_repaired
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(repair_page(&pool, &images, victim).unwrap());
        assert!(check_page(store.as_ref(), victim).unwrap());
        assert!(
            storage_counters()
                .pages_repaired
                .load(std::sync::atomic::Ordering::Relaxed)
                > repaired_before
        );
        // The repaired page serves its original contents.
        let frame = pool.fetch(victim).unwrap();
        assert_eq!(frame.page.read().get(0), Some(&[0u8; 16][..]));
    }

    #[test]
    fn cached_pages_are_repairable_without_the_wal() {
        let store = Arc::new(MemPager::new());
        let wal = Arc::new(WriteAheadLog::new(Box::new(MemWalBackend::new())));
        let pool = BufferPool::with_wal(store.clone(), 16, wal);
        let (id, frame) = pool.allocate(PageType::Heap).unwrap();
        frame.page.write().insert(b"cached truth").unwrap();
        frame.mark_dirty();
        pool.checkpoint().unwrap(); // durable AND still cached (pinned)
                                    // Rot the disk image; the cache still has the good copy.
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut buf).unwrap();
        buf[200] ^= 0x01;
        store.write_page(id, &buf).unwrap();
        assert!(!check_page(store.as_ref(), id).unwrap());
        let images = HashMap::new(); // checkpoint truncated the WAL
        assert!(repair_page(&pool, &images, id).unwrap());
        assert!(check_page(store.as_ref(), id).unwrap());
        assert_eq!(frame.page.read().get(0), Some(&b"cached truth"[..]));
    }

    #[test]
    fn unrepairable_pages_report_false() {
        let store = Arc::new(MemPager::new());
        let pool = BufferPool::new(store.clone(), 8);
        let (id, frame) = pool.allocate(PageType::Heap).unwrap();
        frame.page.write().insert(b"doomed").unwrap();
        frame.mark_dirty();
        drop(frame);
        pool.checkpoint().unwrap();
        pool.clear_cache().unwrap(); // no cached copy
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut buf).unwrap();
        buf[10] ^= 0x80;
        store.write_page(id, &buf).unwrap();
        // No WAL, no cache: nothing to repair from.
        assert!(!repair_page(&pool, &HashMap::new(), id).unwrap());
        assert!(!check_page(store.as_ref(), id).unwrap());
    }
}

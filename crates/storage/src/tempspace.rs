//! Spill-accounted temporary storage for blocking operators.
//!
//! §5.3.3 of the paper observes that the conceptually-clean pivot/group
//! consensus plan "produce[s] a huge intermediate result on the temporary
//! tablespace ... and large amounts of disk writes for the intermediate
//! results. Hence it is not practical." To *measure* that claim rather
//! than assert it, every blocking operator in seqdb (external sort, spool)
//! writes its spills through a [`TempSpace`], which counts bytes. The
//! consensus benchmark reports the counter for both plans.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use seqdb_types::{DbError, Result};

use crate::counters::{
    emit_storage_event, storage_counters, waits, SpillTally, StorageEvent, WaitClass,
};
use crate::fault::FaultClock;

/// A directory of temporary spill files with global byte accounting.
pub struct TempSpace {
    dir: PathBuf,
    seq: AtomicU64,
    bytes_written: AtomicU64,
    spill_count: AtomicU64,
    fault: Mutex<Option<Arc<FaultClock>>>,
}

impl TempSpace {
    /// Create a temp space under `dir` (created if missing). Spill files
    /// left behind by a hard crash — writers delete on drop, but a killed
    /// process never drops — are swept here and counted in the
    /// `startup_orphans_removed` counter. Temp dirs are per-database, so
    /// anything present at open time is garbage by construction.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Arc<TempSpace>> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("spill-")
                && name.ends_with(".tmp")
                && fs::remove_file(&path).is_ok()
            {
                storage_counters()
                    .startup_orphans_removed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(Arc::new(TempSpace {
            dir,
            seq: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            spill_count: AtomicU64::new(0),
            fault: Mutex::new(None),
        }))
    }

    /// A temp space in the system temp directory, namespaced per process.
    pub fn system() -> Result<Arc<TempSpace>> {
        let dir = std::env::temp_dir().join(format!("seqdb-tmp-{}", std::process::id()));
        Self::open(dir)
    }

    /// Share a [`FaultClock`] so spill-file I/O participates in the same
    /// seeded fault schedule as the data file and WAL (spill writes are raw
    /// file I/O that bypasses the pager, like the FileStream store).
    pub fn set_fault_clock(&self, clock: Option<Arc<FaultClock>>) {
        *self.fault.lock() = clock;
    }

    /// Consult the attached fault clock as a write: spill creation and
    /// writes are both on the shared op schedule and the first things a
    /// filling disk starves.
    fn inject_write(&self) -> Result<()> {
        if let Some(clock) = self.fault.lock().as_ref() {
            clock.inject_write()?;
        }
        Ok(())
    }

    /// Create a new spill file for writing.
    pub fn create_spill(self: &Arc<Self>) -> Result<SpillWriter> {
        self.create_spill_tallied(Vec::new())
    }

    /// Create a new spill file whose traffic is also attributed to each of
    /// `tallies` (per-query and per-operator spill accounting for
    /// `EXPLAIN ANALYZE` and the DMVs). The space's own counters and the
    /// global registry are always updated regardless.
    pub fn create_spill_tallied(
        self: &Arc<Self>,
        tallies: Vec<Arc<SpillTally>>,
    ) -> Result<SpillWriter> {
        self.create_spill_class(tallies, WaitClass::SpillIo)
    }

    /// Create a new spill file whose waits are recorded under `class`
    /// (`SpillIo` for sort/aggregate spills, `JoinSpill` for hash-join
    /// partition files, which also bump the dedicated join gauges).
    pub fn create_spill_class(
        self: &Arc<Self>,
        tallies: Vec<Arc<SpillTally>>,
        class: WaitClass,
    ) -> Result<SpillWriter> {
        self.inject_write()?;
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("spill-{n}.tmp"));
        let file = File::create(&path).map_err(DbError::io_write)?;
        self.spill_count.fetch_add(1, Ordering::Relaxed);
        storage_counters()
            .spill_files
            .fetch_add(1, Ordering::Relaxed);
        if class == WaitClass::JoinSpill {
            storage_counters()
                .join_spill_files
                .fetch_add(1, Ordering::Relaxed);
        }
        for tally in &tallies {
            tally.add_file();
        }
        emit_storage_event(StorageEvent::SpillFile { class });
        Ok(SpillWriter {
            space: Arc::clone(self),
            path,
            writer: Some(BufWriter::new(file)),
            tallies,
            class,
        })
    }

    /// Total bytes ever written to spill files (monotonic).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of spill files ever created (monotonic).
    pub fn spill_count(&self) -> u64 {
        self.spill_count.load(Ordering::Relaxed)
    }

    /// Reset the counters (between benchmark runs).
    pub fn reset_counters(&self) {
        self.bytes_written.store(0, Ordering::Relaxed);
        self.spill_count.store(0, Ordering::Relaxed);
    }

    /// Directory this temp space writes into.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Number of spill files currently on disk. Spill files delete
    /// themselves when their writer/reader drops, so after a query ends —
    /// normally or aborted — this must return to its pre-query value;
    /// leak tests assert exactly that.
    pub fn live_files(&self) -> Result<usize> {
        Ok(fs::read_dir(&self.dir)?.count())
    }
}

/// Write half of a spill file. Call [`SpillWriter::finish`] to flip it
/// into a reader; dropping it instead deletes the file.
pub struct SpillWriter {
    space: Arc<TempSpace>,
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    tallies: Vec<Arc<SpillTally>>,
    class: WaitClass,
}

impl SpillWriter {
    pub fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.space.inject_write()?;
        let start = Instant::now();
        self.writer
            .as_mut()
            .expect("writer live until finish")
            .write_all(buf)
            .map_err(DbError::io_write)?;
        let waited = start.elapsed();
        waits().record(self.class, waited);
        for tally in &self.tallies {
            tally.add_wait_nanos(waited.as_nanos() as u64);
        }
        self.space
            .bytes_written
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        storage_counters()
            .spill_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        if self.class == WaitClass::JoinSpill {
            storage_counters()
                .join_spill_bytes
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        for tally in &self.tallies {
            tally.add_bytes(buf.len() as u64);
        }
        Ok(())
    }

    /// Flush and reopen for reading from the start.
    pub fn finish(mut self) -> Result<SpillReader> {
        let mut w = self.writer.take().expect("writer live until finish");
        w.flush()?;
        drop(w);
        let file = File::open(&self.path)?;
        Ok(SpillReader {
            path: std::mem::take(&mut self.path),
            reader: BufReader::with_capacity(64 * 1024, file),
            class: self.class,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Read half of a spill file; the file is deleted on drop.
pub struct SpillReader {
    path: PathBuf,
    reader: BufReader<File>,
    class: WaitClass,
}

impl SpillReader {
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<bool> {
        let start = Instant::now();
        let res = match self.reader.read_exact(buf) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
            Err(e) => Err(e.into()),
        };
        waits().record(self.class, start.elapsed());
        res
    }

    pub fn read_to_end(&mut self) -> Result<Vec<u8>> {
        let start = Instant::now();
        let mut out = Vec::new();
        self.reader.read_to_end(&mut out)?;
        waits().record(self.class, start.elapsed());
        Ok(out)
    }
}

impl Drop for SpillReader {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_roundtrip_and_accounting() {
        let ts = TempSpace::system().unwrap();
        ts.reset_counters();
        let mut w = ts.create_spill().unwrap();
        w.write_all(b"hello ").unwrap();
        w.write_all(b"spill").unwrap();
        assert_eq!(ts.bytes_written(), 11);
        assert_eq!(ts.spill_count(), 1);
        let mut r = w.finish().unwrap();
        assert_eq!(r.read_to_end().unwrap(), b"hello spill");
    }

    #[test]
    fn files_are_cleaned_up() {
        let dir = std::env::temp_dir().join(format!("seqdb-ts-clean-{}", std::process::id()));
        let ts = TempSpace::open(&dir).unwrap();
        {
            let mut w = ts.create_spill().unwrap();
            w.write_all(b"abandoned").unwrap();
            // dropped without finish
        }
        {
            let mut w = ts.create_spill().unwrap();
            w.write_all(b"read then dropped").unwrap();
            let mut r = w.finish().unwrap();
            let mut buf = [0u8; 4];
            assert!(r.read_exact(&mut buf).unwrap());
        }
        let leftovers = fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftovers, 0, "spill files must not leak");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tallied_spills_attribute_files_and_bytes() {
        let ts = TempSpace::system().unwrap();
        let per_query = Arc::new(SpillTally::default());
        let per_node = Arc::new(SpillTally::default());
        let mut w = ts
            .create_spill_tallied(vec![Arc::clone(&per_query), Arc::clone(&per_node)])
            .unwrap();
        w.write_all(&[0u8; 300]).unwrap();
        w.write_all(&[1u8; 100]).unwrap();
        for tally in [&per_query, &per_node] {
            assert_eq!(tally.files(), 1);
            assert_eq!(tally.bytes(), 400);
        }
        let waited = waits().count(WaitClass::SpillIo);
        assert!(waited >= 2, "spill writes must record SPILL_IO waits");
    }

    #[test]
    fn join_class_spills_bump_join_gauges_and_wait_class() {
        let ts = TempSpace::system().unwrap();
        let files_before = storage_counters().join_spill_files.load(Ordering::Relaxed);
        let bytes_before = storage_counters().join_spill_bytes.load(Ordering::Relaxed);
        let waited_before = waits().count(WaitClass::JoinSpill);
        let mut w = ts
            .create_spill_class(Vec::new(), WaitClass::JoinSpill)
            .unwrap();
        w.write_all(&[9u8; 64]).unwrap();
        let mut r = w.finish().unwrap();
        let mut buf = [0u8; 64];
        assert!(r.read_exact(&mut buf).unwrap());
        assert_eq!(
            storage_counters().join_spill_files.load(Ordering::Relaxed),
            files_before + 1
        );
        assert_eq!(
            storage_counters().join_spill_bytes.load(Ordering::Relaxed),
            bytes_before + 64
        );
        assert!(
            waits().count(WaitClass::JoinSpill) >= waited_before + 2,
            "join spill I/O must record JOIN_SPILL waits"
        );
    }

    #[test]
    fn fault_clock_injects_into_spill_writes() {
        use crate::fault::{FaultClock, FaultPlan};
        let dir = std::env::temp_dir().join(format!("seqdb-ts-fault-{}", std::process::id()));
        let ts = TempSpace::open(&dir).unwrap();
        ts.set_fault_clock(Some(FaultClock::new(FaultPlan {
            io_error_every: Some(3),
            ..FaultPlan::none()
        })));
        let mut w = ts.create_spill().unwrap(); // op 1
        w.write_all(b"ok").unwrap(); // op 2
        let err = w.write_all(b"boom").unwrap_err(); // op 3 fails
        assert!(matches!(err, seqdb_types::DbError::Io(_)), "{err}");
        drop(w);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0, "no leaked files");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_sweeps_orphaned_spill_files() {
        let dir = std::env::temp_dir().join(format!("seqdb-ts-sweep-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("spill-0.tmp"), b"orphan").unwrap();
        fs::write(dir.join("spill-7.tmp"), b"orphan").unwrap();
        fs::write(dir.join("unrelated.dat"), b"keep").unwrap();
        let before = storage_counters()
            .startup_orphans_removed
            .load(Ordering::Relaxed);
        let ts = TempSpace::open(&dir).unwrap();
        assert_eq!(ts.live_files().unwrap(), 1, "only the orphans go");
        assert!(dir.join("unrelated.dat").exists());
        assert!(
            storage_counters()
                .startup_orphans_removed
                .load(Ordering::Relaxed)
                >= before + 2
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_exact_reports_eof() {
        let ts = TempSpace::system().unwrap();
        let mut w = ts.create_spill().unwrap();
        w.write_all(&[1, 2, 3, 4]).unwrap();
        let mut r = w.finish().unwrap();
        let mut buf = [0u8; 4];
        assert!(r.read_exact(&mut buf).unwrap());
        assert!(!r.read_exact(&mut buf).unwrap());
    }
}

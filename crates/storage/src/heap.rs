//! Heap files: unordered record storage, one page chain per table.
//!
//! A heap owns its table schema and compression setting. Inserts go to the
//! tail page; when a `DATA_COMPRESSION = PAGE` page fills up it is
//! *recompressed* once — the heap decodes its rows, builds a
//! [`PageContext`], re-encodes, and rewrites the page (mirroring SQL
//! Server, which compresses a page when it becomes full). Rows inserted
//! into an already-compressed page are encoded against that page's
//! existing context.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use seqdb_types::{DbError, Result, Row, Schema};

use crate::buffer::BufferPool;
use crate::page::{PageId, PageType, FLAG_COMPRESSED, FLAG_RECOMPRESSED, NO_PAGE, PAGE_SIZE};
use crate::pagec::PageContext;
use crate::rowfmt::{self, decode_row, encode_row, Compression};

/// Physical address of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

/// An unordered table file.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    schema: Arc<Schema>,
    compression: Compression,
    state: Mutex<HeapState>,
    row_count: AtomicU64,
}

struct HeapState {
    /// All pages of the heap in chain order. Kept in memory for O(1)
    /// tail access; rebuilt from the page chain on `open`.
    pages: Vec<PageId>,
}

impl HeapFile {
    /// Create an empty heap.
    pub fn create(
        pool: Arc<BufferPool>,
        schema: Arc<Schema>,
        compression: Compression,
    ) -> Result<HeapFile> {
        let (first, _) = pool.allocate(PageType::Heap)?;
        Ok(HeapFile {
            pool,
            schema,
            compression,
            state: Mutex::new(HeapState { pages: vec![first] }),
            row_count: AtomicU64::new(0),
        })
    }

    /// Re-open a heap from its first page by walking the chain.
    pub fn open(
        pool: Arc<BufferPool>,
        schema: Arc<Schema>,
        compression: Compression,
        first_page: PageId,
    ) -> Result<HeapFile> {
        let mut pages = Vec::new();
        let mut rows = 0u64;
        let mut pid = first_page;
        while pid != NO_PAGE {
            let frame = pool.fetch(pid)?;
            let page = frame.page.read();
            rows += page.live_count() as u64;
            pages.push(pid);
            pid = page.next_page();
        }
        Ok(HeapFile {
            pool,
            schema,
            compression,
            state: Mutex::new(HeapState { pages }),
            row_count: AtomicU64::new(rows),
        })
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn compression(&self) -> Compression {
        self.compression
    }

    pub fn first_page(&self) -> PageId {
        self.state.lock().pages[0]
    }

    pub fn row_count(&self) -> u64 {
        self.row_count.load(Ordering::Relaxed)
    }

    /// Number of allocated pages (the unit SQL Server's `sp_spaceused`
    /// reports, used for Tables 1 and 2).
    pub fn page_count(&self) -> u64 {
        self.state.lock().pages.len() as u64
    }

    /// Allocated bytes = pages × 8 KiB.
    pub fn allocated_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Insert a row, returning its record id.
    pub fn insert(&self, row: &Row) -> Result<RecordId> {
        self.schema.check_row(row)?;
        let mut state = self.state.lock();
        let tail = *state.pages.last().expect("heap has at least one page");
        let frame = self.pool.fetch(tail)?;
        {
            let mut page = frame.page.write();
            let ctx = if page.has_flag(FLAG_COMPRESSED) {
                Some(PageContext::deserialize(page.ci_area())?)
            } else {
                None
            };
            let encoded = encode_row(&self.schema, row, self.compression, ctx.as_ref());
            if let Some(slot) = page.insert(&encoded) {
                frame.mark_dirty();
                self.row_count.fetch_add(1, Ordering::Relaxed);
                return Ok(RecordId { page: tail, slot });
            }
            // Page full. For PAGE compression, try recompressing it once.
            if self.compression == Compression::Page && !page.has_flag(FLAG_RECOMPRESSED) {
                let rows: Vec<Row> = page
                    .iter()
                    .map(|(_, rec)| decode_row(&self.schema, rec, self.compression, ctx.as_ref()))
                    .collect::<Result<_>>()?;
                let new_ctx = PageContext::build(&self.schema, &rows);
                if !new_ctx.is_trivial() {
                    let records: Vec<Vec<u8>> = rows
                        .iter()
                        .map(|r| encode_row(&self.schema, r, self.compression, Some(&new_ctx)))
                        .collect();
                    let ci = new_ctx.serialize();
                    let mut rebuilt = page.clone();
                    if rebuilt.rebuild(&ci, &records) {
                        rebuilt.set_flag(FLAG_COMPRESSED);
                        rebuilt.set_flag(FLAG_RECOMPRESSED);
                        *page = rebuilt;
                        frame.mark_dirty();
                        // Retry the insert against the compressed page.
                        let encoded =
                            encode_row(&self.schema, row, self.compression, Some(&new_ctx));
                        if let Some(slot) = page.insert(&encoded) {
                            self.row_count.fetch_add(1, Ordering::Relaxed);
                            return Ok(RecordId { page: tail, slot });
                        }
                    } else {
                        // Rebuild did not fit (pathological); mark so we
                        // don't retry every insert.
                        page.set_flag(FLAG_RECOMPRESSED);
                        frame.mark_dirty();
                    }
                } else {
                    page.set_flag(FLAG_RECOMPRESSED);
                    frame.mark_dirty();
                }
            }
        }
        // Chain a new tail page.
        let (new_id, new_frame) = self.pool.allocate(PageType::Heap)?;
        {
            let mut old = frame.page.write();
            old.set_next_page(new_id);
            frame.mark_dirty();
        }
        let encoded = encode_row(&self.schema, row, self.compression, None);
        let slot = {
            let mut page = new_frame.page.write();
            page.insert(&encoded).ok_or_else(|| {
                DbError::Storage(format!(
                    "record of {} bytes exceeds page capacity",
                    encoded.len()
                ))
            })?
        };
        new_frame.mark_dirty();
        state.pages.push(new_id);
        self.row_count.fetch_add(1, Ordering::Relaxed);
        Ok(RecordId { page: new_id, slot })
    }

    /// Fetch one row by record id.
    pub fn get(&self, rid: RecordId) -> Result<Option<Row>> {
        let frame = self.pool.fetch(rid.page)?;
        let page = frame.page.read();
        let ctx = if page.has_flag(FLAG_COMPRESSED) {
            Some(PageContext::deserialize(page.ci_area())?)
        } else {
            None
        };
        match page.get(rid.slot) {
            None => Ok(None),
            Some(rec) => Ok(Some(decode_row(
                &self.schema,
                rec,
                self.compression,
                ctx.as_ref(),
            )?)),
        }
    }

    /// Delete one row. Returns whether a live row was removed.
    pub fn delete(&self, rid: RecordId) -> Result<bool> {
        let frame = self.pool.fetch(rid.page)?;
        let deleted = frame.page.write().delete(rid.slot);
        if deleted {
            frame.mark_dirty();
            self.row_count.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(deleted)
    }

    /// Full scan. Decodes a page at a time; the iterator holds only one
    /// page's rows in memory.
    pub fn scan(&self) -> HeapScan<'_> {
        self.scan_pages(self.pages_snapshot())
    }

    /// Snapshot of the heap's page chain (for planning parallel scans).
    pub fn pages_snapshot(&self) -> Vec<PageId> {
        self.state.lock().pages.clone()
    }

    /// Scan only the given pages (they must belong to this heap). This is
    /// the partitioned access path used by parallel table scans: the
    /// planner splits [`HeapFile::pages_snapshot`] into per-worker ranges.
    pub fn scan_pages(&self, pages: Vec<PageId>) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            pages,
            page_idx: 0,
            current: Vec::new().into_iter(),
        }
    }

    /// Decode every live row of one page straight into `out` (appended),
    /// skipping the per-row [`RecordId`] pairing of the general scan —
    /// the batch-friendly page visit for scans that only need rows.
    pub fn page_rows_into(&self, pid: PageId, out: &mut Vec<Row>) -> Result<()> {
        self.page_rows_into_masked(pid, None, out)
    }

    /// Like [`HeapFile::page_rows_into`], but with an optional column
    /// mask: unmasked columns are skipped in the byte stream and left as
    /// `Value::Null` placeholders (see [`rowfmt::decode_row_masked`]) —
    /// the scan-level projection pushdown of the vectorized reader.
    pub fn page_rows_into_masked(
        &self,
        pid: PageId,
        mask: Option<&[bool]>,
        out: &mut Vec<Row>,
    ) -> Result<()> {
        let frame = self.pool.fetch(pid)?;
        let page = frame.page.read();
        let ctx = if page.has_flag(FLAG_COMPRESSED) {
            Some(PageContext::deserialize(page.ci_area())?)
        } else {
            None
        };
        match mask {
            None => {
                for (_, rec) in page.iter() {
                    out.push(decode_row(
                        &self.schema,
                        rec,
                        self.compression,
                        ctx.as_ref(),
                    )?);
                }
            }
            Some(mask) => {
                for (_, rec) in page.iter() {
                    out.push(rowfmt::decode_row_masked(
                        &self.schema,
                        rec,
                        self.compression,
                        ctx.as_ref(),
                        mask,
                    )?);
                }
            }
        }
        Ok(())
    }

    /// Decode every live row of one page (with its compression context).
    fn page_rows(&self, pid: PageId) -> Result<Vec<(RecordId, Row)>> {
        let frame = self.pool.fetch(pid)?;
        let page = frame.page.read();
        let ctx = if page.has_flag(FLAG_COMPRESSED) {
            Some(PageContext::deserialize(page.ci_area())?)
        } else {
            None
        };
        page.iter()
            .map(|(slot, rec)| {
                decode_row(&self.schema, rec, self.compression, ctx.as_ref())
                    .map(|row| (RecordId { page: pid, slot }, row))
            })
            .collect()
    }

    /// Remove all rows but keep the (single, empty) first page.
    pub fn truncate(&self) -> Result<()> {
        let mut state = self.state.lock();
        let (first, _) = self.pool.allocate(PageType::Heap)?;
        state.pages = vec![first];
        self.row_count.store(0, Ordering::Relaxed);
        Ok(())
    }
}

/// Iterator over all live rows of a heap.
pub struct HeapScan<'a> {
    heap: &'a HeapFile,
    pages: Vec<PageId>,
    page_idx: usize,
    current: std::vec::IntoIter<(RecordId, Row)>,
}

impl Iterator for HeapScan<'_> {
    type Item = Result<(RecordId, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.current.next() {
                return Some(Ok(item));
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            match self.heap.page_rows(pid) {
                Ok(rows) => {
                    self.current = rows.into_iter();
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;
    use seqdb_types::{Column, DataType, Value};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("tag", DataType::Text),
        ]))
    }

    fn heap(comp: Compression) -> HeapFile {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 64);
        HeapFile::create(pool, schema(), comp).unwrap()
    }

    fn tag_row(i: i64, tag: &str) -> Row {
        Row::new(vec![Value::Int(i), Value::text(tag)])
    }

    #[test]
    fn insert_scan_roundtrip() {
        let h = heap(Compression::Row);
        for i in 0..1000 {
            h.insert(&tag_row(i, &format!("TAG{}", i % 7))).unwrap();
        }
        assert_eq!(h.row_count(), 1000);
        let rows: Vec<Row> = h.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(rows.len(), 1000);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[999][0], Value::Int(999));
    }

    #[test]
    fn get_and_delete_by_rid() {
        let h = heap(Compression::None);
        let rid = h.insert(&tag_row(1, "A")).unwrap();
        let rid2 = h.insert(&tag_row(2, "B")).unwrap();
        assert_eq!(h.get(rid).unwrap().unwrap()[1], Value::text("A"));
        assert!(h.delete(rid).unwrap());
        assert!(h.get(rid).unwrap().is_none());
        assert!(!h.delete(rid).unwrap());
        assert_eq!(h.row_count(), 1);
        assert_eq!(h.get(rid2).unwrap().unwrap()[1], Value::text("B"));
    }

    #[test]
    fn schema_violation_rejected() {
        let h = heap(Compression::None);
        let bad = Row::new(vec![Value::Null, Value::text("x")]);
        assert!(h.insert(&bad).is_err());
    }

    #[test]
    fn page_compression_reduces_pages_on_repetitive_data() {
        let rows: Vec<Row> = (0..20_000)
            .map(|i| tag_row(i, &format!("CATGGAATTCTCGGGTGCCAAGG_{}", i % 5)))
            .collect();
        let h_row = heap(Compression::Row);
        let h_page = heap(Compression::Page);
        for r in &rows {
            h_row.insert(r).unwrap();
            h_page.insert(r).unwrap();
        }
        assert!(
            h_page.page_count() * 3 < h_row.page_count() * 2,
            "page compression should save >=33%: {} vs {} pages",
            h_page.page_count(),
            h_row.page_count()
        );
        // And the data is intact.
        let rows_back: Vec<Row> = h_page.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(rows_back.len(), rows.len());
        assert_eq!(rows_back[19_999], rows[19_999]);
    }

    #[test]
    fn reopen_from_first_page() {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 64);
        let h = HeapFile::create(pool.clone(), schema(), Compression::Row).unwrap();
        for i in 0..500 {
            h.insert(&tag_row(i, "X")).unwrap();
        }
        let first = h.first_page();
        drop(h);
        let h2 = HeapFile::open(pool, schema(), Compression::Row, first).unwrap();
        assert_eq!(h2.row_count(), 500);
        assert_eq!(h2.scan().count(), 500);
    }

    #[test]
    fn truncate_empties() {
        let h = heap(Compression::Row);
        for i in 0..100 {
            h.insert(&tag_row(i, "X")).unwrap();
        }
        h.truncate().unwrap();
        assert_eq!(h.row_count(), 0);
        assert_eq!(h.scan().count(), 0);
        // And it accepts inserts again.
        h.insert(&tag_row(1, "Y")).unwrap();
        assert_eq!(h.scan().count(), 1);
    }

    #[test]
    fn oversized_record_is_an_error() {
        let h = heap(Compression::None);
        let big = "G".repeat(PAGE_SIZE);
        assert!(h.insert(&tag_row(1, &big)).is_err());
    }
}

//! Schema-aware record (de)serialization with three storage formats,
//! mirroring SQL Server 2008 `DATA_COMPRESSION = NONE | ROW | PAGE`
//! (paper §2.3.5).
//!
//! * `None` — fixed-width numerics, length-prefixed strings;
//! * `Row`  — variable-length (zigzag varint) numerics and lengths;
//! * `Page` — row format plus a per-page [`PageContext`] providing
//!   column-prefix and dictionary encodings (see [`crate::pagec`]).
//!
//! The record layout is: null bitmap (`ceil(ncols/8)` bytes, bit set =
//! NULL) followed by each non-null column value.

use std::sync::Arc;

use seqdb_types::{DataType, DbError, Result, Row, Schema, Value};

use crate::pagec::PageContext;
use crate::varint;

/// Table-level compression setting (`WITH (DATA_COMPRESSION = ...)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    #[default]
    None,
    Row,
    Page,
}

impl Compression {
    pub fn sql_name(&self) -> &'static str {
        match self {
            Compression::None => "NONE",
            Compression::Row => "ROW",
            Compression::Page => "PAGE",
        }
    }

    pub fn from_sql_name(s: &str) -> Option<Compression> {
        match s.to_ascii_uppercase().as_str() {
            "NONE" => Some(Compression::None),
            "ROW" => Some(Compression::Row),
            "PAGE" => Some(Compression::Page),
            _ => None,
        }
    }
}

/// Value encoding tags used inside page-compressed records.
const TAG_INLINE: u8 = 0;
const TAG_PREFIX: u8 = 1;
const TAG_DICT: u8 = 2;

/// Encode one value in the *fixed* (no-compression) format. Integers are
/// stored as 4 bytes when they fit `i32` (SQL Server's `INT`) and as
/// 8 bytes otherwise (`BIGINT`), discriminated by a width byte.
fn encode_value_fixed(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => unreachable!("nulls are in the bitmap"),
        Value::Bool(b) => out.push(*b as u8),
        Value::Int(i) => {
            if let Ok(small) = i32::try_from(*i) {
                out.push(0);
                out.extend_from_slice(&small.to_le_bytes());
            } else {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
        }
        Value::Float(f) => out.extend_from_slice(&f.to_le_bytes()),
        Value::Text(s) => {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Guid(g) => out.extend_from_slice(&g.to_be_bytes()),
    }
}

/// Encode one value in the *row-compressed* format (varint numerics and
/// lengths). This is also the "canonical" byte form used as dictionary keys
/// by page compression.
pub(crate) fn encode_value_row(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => unreachable!("nulls are in the bitmap"),
        Value::Bool(b) => out.push(*b as u8),
        Value::Int(i) => varint::write_i64(out, *i),
        Value::Float(f) => out.extend_from_slice(&f.to_le_bytes()),
        Value::Text(s) => {
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            varint::write_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::Guid(g) => out.extend_from_slice(&g.to_be_bytes()),
    }
}

fn decode_value_fixed(buf: &[u8], pos: &mut usize, dtype: DataType) -> Result<Value> {
    let trunc = || DbError::Storage("truncated record".into());
    let take = |buf: &[u8], pos: &mut usize, n: usize| -> Result<Vec<u8>> {
        let end = pos.checked_add(n).ok_or_else(trunc)?;
        let s = buf.get(*pos..end).ok_or_else(trunc)?.to_vec();
        *pos = end;
        Ok(s)
    };
    Ok(match dtype {
        DataType::Bool => {
            let b = take(buf, pos, 1)?;
            Value::Bool(b[0] != 0)
        }
        DataType::Int => {
            let w = take(buf, pos, 1)?;
            if w[0] == 0 {
                let b = take(buf, pos, 4)?;
                Value::Int(i32::from_le_bytes(b.try_into().unwrap()) as i64)
            } else {
                let b = take(buf, pos, 8)?;
                Value::Int(i64::from_le_bytes(b.try_into().unwrap()))
            }
        }
        DataType::Float => {
            let b = take(buf, pos, 8)?;
            Value::Float(f64::from_le_bytes(b.try_into().unwrap()))
        }
        DataType::Text => {
            let l = take(buf, pos, 4)?;
            let n = u32::from_le_bytes(l.try_into().unwrap()) as usize;
            let b = take(buf, pos, n)?;
            let s = String::from_utf8(b)
                .map_err(|_| DbError::Storage("non-utf8 text in record".into()))?;
            Value::Text(Arc::from(s.as_str()))
        }
        DataType::Bytes => {
            let l = take(buf, pos, 4)?;
            let n = u32::from_le_bytes(l.try_into().unwrap()) as usize;
            Value::Bytes(Arc::from(take(buf, pos, n)?.as_slice()))
        }
        DataType::Guid => {
            let b = take(buf, pos, 16)?;
            Value::Guid(u128::from_be_bytes(b.try_into().unwrap()))
        }
    })
}

pub(crate) fn decode_value_row(buf: &[u8], pos: &mut usize, dtype: DataType) -> Result<Value> {
    let trunc = || DbError::Storage("truncated record".into());
    Ok(match dtype {
        DataType::Bool => {
            let b = *buf.get(*pos).ok_or_else(trunc)?;
            *pos += 1;
            Value::Bool(b != 0)
        }
        DataType::Int => Value::Int(varint::read_i64(buf, pos).ok_or_else(trunc)?),
        DataType::Float => {
            let end = *pos + 8;
            let b = buf.get(*pos..end).ok_or_else(trunc)?;
            let v = f64::from_le_bytes(b.try_into().unwrap());
            *pos = end;
            Value::Float(v)
        }
        DataType::Text => {
            let n = varint::read_u64(buf, pos).ok_or_else(trunc)? as usize;
            let end = pos.checked_add(n).ok_or_else(trunc)?;
            let b = buf.get(*pos..end).ok_or_else(trunc)?;
            let s = std::str::from_utf8(b)
                .map_err(|_| DbError::Storage("non-utf8 text in record".into()))?;
            let v = Value::Text(Arc::from(s));
            *pos = end;
            v
        }
        DataType::Bytes => {
            let n = varint::read_u64(buf, pos).ok_or_else(trunc)? as usize;
            let end = pos.checked_add(n).ok_or_else(trunc)?;
            let b = buf.get(*pos..end).ok_or_else(trunc)?;
            let v = Value::Bytes(Arc::from(b));
            *pos = end;
            v
        }
        DataType::Guid => {
            let end = *pos + 16;
            let b = buf.get(*pos..end).ok_or_else(trunc)?;
            let v = Value::Guid(u128::from_be_bytes(b.try_into().unwrap()));
            *pos = end;
            v
        }
    })
}

/// Raw byte payload of a Text/Bytes value for prefix matching.
fn raw_payload(v: &Value) -> Option<&[u8]> {
    match v {
        Value::Text(s) => Some(s.as_bytes()),
        Value::Bytes(b) => Some(b),
        _ => None,
    }
}

/// Encode one value in page-compressed format against a [`PageContext`]:
/// picks the cheapest of dictionary token, column-prefix suffix, or inline.
fn encode_value_page(out: &mut Vec<u8>, v: &Value, col: usize, ctx: &PageContext) {
    // Canonical form for dictionary lookup.
    let mut canon = Vec::new();
    encode_value_row(&mut canon, v);

    let inline_cost = 1 + canon.len();

    let dict_choice = ctx.dict_lookup(&canon).map(|id| {
        let cost = 1 + varint::len_u64(id as u64);
        (id, cost)
    });

    let prefix_choice = raw_payload(v).and_then(|payload| {
        let prefix = ctx.prefix(col);
        if prefix.is_empty() {
            return None;
        }
        let use_len = common_prefix_len(prefix, payload);
        if use_len < 2 {
            return None;
        }
        let suffix = &payload[use_len..];
        let cost = 1
            + varint::len_u64(use_len as u64)
            + varint::len_u64(suffix.len() as u64)
            + suffix.len();
        Some((use_len, cost))
    });

    let dict_cost = dict_choice.map(|(_, c)| c).unwrap_or(usize::MAX);
    let prefix_cost = prefix_choice.map(|(_, c)| c).unwrap_or(usize::MAX);

    if dict_cost <= prefix_cost && dict_cost < inline_cost {
        let (id, _) = dict_choice.unwrap();
        out.push(TAG_DICT);
        varint::write_u64(out, id as u64);
    } else if prefix_cost < inline_cost {
        let (use_len, _) = prefix_choice.unwrap();
        let payload = raw_payload(v).unwrap();
        out.push(TAG_PREFIX);
        varint::write_u64(out, use_len as u64);
        varint::write_u64(out, (payload.len() - use_len) as u64);
        out.extend_from_slice(&payload[use_len..]);
    } else {
        out.push(TAG_INLINE);
        out.extend_from_slice(&canon);
    }
}

fn decode_value_page(
    buf: &[u8],
    pos: &mut usize,
    dtype: DataType,
    ctx: &PageContext,
    col: usize,
) -> Result<Value> {
    let trunc = || DbError::Storage("truncated record".into());
    let tag = *buf.get(*pos).ok_or_else(trunc)?;
    *pos += 1;
    match tag {
        TAG_INLINE => decode_value_row(buf, pos, dtype),
        TAG_DICT => {
            let id = varint::read_u64(buf, pos).ok_or_else(trunc)? as usize;
            let canon = ctx
                .dict_entry(id)
                .ok_or_else(|| DbError::Storage(format!("dangling dictionary id {id}")))?;
            let mut p = 0;
            decode_value_row(canon, &mut p, dtype)
        }
        TAG_PREFIX => {
            let use_len = varint::read_u64(buf, pos).ok_or_else(trunc)? as usize;
            let suf_len = varint::read_u64(buf, pos).ok_or_else(trunc)? as usize;
            let end = pos.checked_add(suf_len).ok_or_else(trunc)?;
            let suffix = buf.get(*pos..end).ok_or_else(trunc)?;
            let prefix = ctx.prefix(col);
            if use_len > prefix.len() {
                return Err(DbError::Storage("prefix reference out of range".into()));
            }
            let mut payload = Vec::with_capacity(use_len + suf_len);
            payload.extend_from_slice(&prefix[..use_len]);
            payload.extend_from_slice(suffix);
            *pos = end;
            match dtype {
                DataType::Text => {
                    let s = String::from_utf8(payload)
                        .map_err(|_| DbError::Storage("non-utf8 text in record".into()))?;
                    Ok(Value::Text(Arc::from(s.as_str())))
                }
                DataType::Bytes => Ok(Value::Bytes(Arc::from(payload.as_slice()))),
                other => Err(DbError::Storage(format!(
                    "prefix encoding on non-string column of type {other}"
                ))),
            }
        }
        t => Err(DbError::Storage(format!("unknown value tag {t}"))),
    }
}

pub(crate) fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Serialize a row. `ctx` must be `Some` iff `comp == Compression::Page`
/// *and* the containing page has built a compression context; a page-
/// compressed table's open page encodes rows in plain row format until it
/// is recompressed.
pub fn encode_row(
    schema: &Schema,
    row: &Row,
    comp: Compression,
    ctx: Option<&PageContext>,
) -> Vec<u8> {
    debug_assert_eq!(row.len(), schema.len());
    let nbitmap = schema.len().div_ceil(8);
    let mut out = vec![0u8; nbitmap];
    for (i, v) in row.values().iter().enumerate() {
        if v.is_null() {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    for (i, v) in row.values().iter().enumerate() {
        if v.is_null() {
            continue;
        }
        // FILESTREAM columns may hold either the blob's GUID reference or
        // (rarely) small inline bytes; a marker byte distinguishes them.
        // They bypass page compression — the payload lives outside the
        // page anyway.
        if schema.column(i).filestream {
            match v {
                Value::Guid(g) => {
                    out.push(0);
                    out.extend_from_slice(&g.to_be_bytes());
                }
                Value::Bytes(b) => {
                    out.push(1);
                    varint::write_u64(&mut out, b.len() as u64);
                    out.extend_from_slice(b);
                }
                other => unreachable!("schema check admits Guid/Bytes, got {other:?}"),
            }
            continue;
        }
        match (comp, ctx) {
            (Compression::None, _) => encode_value_fixed(&mut out, v),
            (Compression::Row, _) | (Compression::Page, None) => encode_value_row(&mut out, v),
            (Compression::Page, Some(ctx)) => encode_value_page(&mut out, v, i, ctx),
        }
    }
    out
}

/// Deserialize a row previously produced by [`encode_row`] with the same
/// schema/compression/context.
pub fn decode_row(
    schema: &Schema,
    buf: &[u8],
    comp: Compression,
    ctx: Option<&PageContext>,
) -> Result<Row> {
    let nbitmap = schema.len().div_ceil(8);
    if buf.len() < nbitmap {
        return Err(DbError::Storage("record shorter than null bitmap".into()));
    }
    let mut pos = nbitmap;
    let mut vals = Vec::with_capacity(schema.len());
    for (i, col) in schema.columns().iter().enumerate() {
        if buf[i / 8] & (1 << (i % 8)) != 0 {
            vals.push(Value::Null);
            continue;
        }
        if col.filestream {
            let trunc = || DbError::Storage("truncated record".into());
            let marker = *buf.get(pos).ok_or_else(trunc)?;
            pos += 1;
            let v = match marker {
                0 => {
                    let end = pos + 16;
                    let raw = buf.get(pos..end).ok_or_else(trunc)?;
                    let g = u128::from_be_bytes(raw.try_into().unwrap());
                    pos = end;
                    Value::Guid(g)
                }
                1 => {
                    let n = varint::read_u64(buf, &mut pos).ok_or_else(trunc)? as usize;
                    let end = pos.checked_add(n).ok_or_else(trunc)?;
                    let b = buf.get(pos..end).ok_or_else(trunc)?;
                    let v = Value::Bytes(Arc::from(b));
                    pos = end;
                    v
                }
                m => {
                    return Err(DbError::Storage(format!(
                        "unknown filestream column marker {m}"
                    )))
                }
            };
            vals.push(v);
            continue;
        }
        let v = match (comp, ctx) {
            (Compression::None, _) => decode_value_fixed(buf, &mut pos, col.dtype)?,
            (Compression::Row, _) | (Compression::Page, None) => {
                decode_value_row(buf, &mut pos, col.dtype)?
            }
            (Compression::Page, Some(ctx)) => decode_value_page(buf, &mut pos, col.dtype, ctx, i)?,
        };
        vals.push(v);
    }
    Ok(Row::new(vals))
}

/// Advance `pos` past one encoded fixed-format value without building it.
fn skip_value_fixed(buf: &[u8], pos: &mut usize, dtype: DataType) -> Result<()> {
    let trunc = || DbError::Storage("truncated record".into());
    let advance = |pos: &mut usize, n: usize| -> Result<()> {
        let end = pos.checked_add(n).ok_or_else(trunc)?;
        if end > buf.len() {
            return Err(trunc());
        }
        *pos = end;
        Ok(())
    };
    match dtype {
        DataType::Bool => advance(pos, 1),
        DataType::Int => {
            let w = *buf.get(*pos).ok_or_else(trunc)?;
            *pos += 1;
            advance(pos, if w == 0 { 4 } else { 8 })
        }
        DataType::Float => advance(pos, 8),
        DataType::Text | DataType::Bytes => {
            let end = pos.checked_add(4).ok_or_else(trunc)?;
            let raw = buf.get(*pos..end).ok_or_else(trunc)?;
            let n = u32::from_le_bytes(raw.try_into().unwrap()) as usize;
            *pos = end;
            advance(pos, n)
        }
        DataType::Guid => advance(pos, 16),
    }
}

/// Advance `pos` past one encoded row-format value without building it.
fn skip_value_row(buf: &[u8], pos: &mut usize, dtype: DataType) -> Result<()> {
    let trunc = || DbError::Storage("truncated record".into());
    let advance = |pos: &mut usize, n: usize| -> Result<()> {
        let end = pos.checked_add(n).ok_or_else(trunc)?;
        if end > buf.len() {
            return Err(trunc());
        }
        *pos = end;
        Ok(())
    };
    match dtype {
        DataType::Bool => advance(pos, 1),
        DataType::Int => {
            varint::read_i64(buf, pos).ok_or_else(trunc)?;
            Ok(())
        }
        DataType::Float => advance(pos, 8),
        DataType::Text | DataType::Bytes => {
            let n = varint::read_u64(buf, pos).ok_or_else(trunc)? as usize;
            advance(pos, n)
        }
        DataType::Guid => advance(pos, 16),
    }
}

/// Advance `pos` past one page-compressed value (dictionary references
/// are skipped without touching the dictionary).
fn skip_value_page(buf: &[u8], pos: &mut usize, dtype: DataType) -> Result<()> {
    let trunc = || DbError::Storage("truncated record".into());
    let tag = *buf.get(*pos).ok_or_else(trunc)?;
    *pos += 1;
    match tag {
        TAG_INLINE => skip_value_row(buf, pos, dtype),
        TAG_DICT => {
            varint::read_u64(buf, pos).ok_or_else(trunc)?;
            Ok(())
        }
        TAG_PREFIX => {
            varint::read_u64(buf, pos).ok_or_else(trunc)?;
            let suf_len = varint::read_u64(buf, pos).ok_or_else(trunc)? as usize;
            let end = pos.checked_add(suf_len).ok_or_else(trunc)?;
            if end > buf.len() {
                return Err(trunc());
            }
            *pos = end;
            Ok(())
        }
        t => Err(DbError::Storage(format!("unknown value tag {t}"))),
    }
}

/// Like [`decode_row`], but only the columns set in `mask` are
/// materialized; the rest are *skipped* in the byte stream and left as
/// `Value::Null` placeholders at their original positions, so downstream
/// expressions keep their column indexes. This is the projection-pushdown
/// entry point for the vectorized scan: callers must ensure the mask
/// covers every column any consumer reads.
pub fn decode_row_masked(
    schema: &Schema,
    buf: &[u8],
    comp: Compression,
    ctx: Option<&PageContext>,
    mask: &[bool],
) -> Result<Row> {
    let nbitmap = schema.len().div_ceil(8);
    if buf.len() < nbitmap {
        return Err(DbError::Storage("record shorter than null bitmap".into()));
    }
    let mut pos = nbitmap;
    let mut vals = Vec::with_capacity(schema.len());
    for (i, col) in schema.columns().iter().enumerate() {
        if buf[i / 8] & (1 << (i % 8)) != 0 {
            vals.push(Value::Null);
            continue;
        }
        let wanted = mask.get(i).copied().unwrap_or(true);
        if col.filestream {
            if wanted {
                // Rare enough that the unmasked decoder's logic is reused
                // wholesale would cost a second bitmap walk; decode inline.
                let trunc = || DbError::Storage("truncated record".into());
                let marker = *buf.get(pos).ok_or_else(trunc)?;
                pos += 1;
                let v = match marker {
                    0 => {
                        let end = pos + 16;
                        let raw = buf.get(pos..end).ok_or_else(trunc)?;
                        let g = u128::from_be_bytes(raw.try_into().unwrap());
                        pos = end;
                        Value::Guid(g)
                    }
                    1 => {
                        let n = varint::read_u64(buf, &mut pos).ok_or_else(trunc)? as usize;
                        let end = pos.checked_add(n).ok_or_else(trunc)?;
                        let b = buf.get(pos..end).ok_or_else(trunc)?;
                        let v = Value::Bytes(Arc::from(b));
                        pos = end;
                        v
                    }
                    m => {
                        return Err(DbError::Storage(format!(
                            "unknown filestream column marker {m}"
                        )))
                    }
                };
                vals.push(v);
            } else {
                let trunc = || DbError::Storage("truncated record".into());
                let marker = *buf.get(pos).ok_or_else(trunc)?;
                pos += 1;
                match marker {
                    0 => {
                        let end = pos.checked_add(16).ok_or_else(trunc)?;
                        if end > buf.len() {
                            return Err(trunc());
                        }
                        pos = end;
                    }
                    1 => {
                        let n = varint::read_u64(buf, &mut pos).ok_or_else(trunc)? as usize;
                        let end = pos.checked_add(n).ok_or_else(trunc)?;
                        if end > buf.len() {
                            return Err(trunc());
                        }
                        pos = end;
                    }
                    m => {
                        return Err(DbError::Storage(format!(
                            "unknown filestream column marker {m}"
                        )))
                    }
                }
                vals.push(Value::Null);
            }
            continue;
        }
        if wanted {
            let v = match (comp, ctx) {
                (Compression::None, _) => decode_value_fixed(buf, &mut pos, col.dtype)?,
                (Compression::Row, _) | (Compression::Page, None) => {
                    decode_value_row(buf, &mut pos, col.dtype)?
                }
                (Compression::Page, Some(ctx)) => {
                    decode_value_page(buf, &mut pos, col.dtype, ctx, i)?
                }
            };
            vals.push(v);
        } else {
            match (comp, ctx) {
                (Compression::None, _) => skip_value_fixed(buf, &mut pos, col.dtype)?,
                (Compression::Row, _) | (Compression::Page, None) => {
                    skip_value_row(buf, &mut pos, col.dtype)?
                }
                (Compression::Page, Some(_)) => skip_value_page(buf, &mut pos, col.dtype)?,
            }
            vals.push(Value::Null);
        }
    }
    Ok(Row::new(vals))
}

/// Decode a run of records into `out` in one call — the batch-scan entry
/// point, so vectorized readers pay the schema walk set-up and virtual
/// dispatch once per run instead of once per row.
pub fn decode_rows_into<B: AsRef<[u8]>>(
    schema: &Schema,
    records: impl IntoIterator<Item = B>,
    comp: Compression,
    ctx: Option<&PageContext>,
    out: &mut Vec<Row>,
) -> Result<()> {
    for buf in records {
        out.push(decode_row(schema, buf.as_ref(), comp, ctx)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb_types::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("q", DataType::Float),
            Column::new("flag", DataType::Bool),
            Column::new("payload", DataType::Bytes),
            Column::new("guid", DataType::Guid),
        ])
    }

    fn sample_row() -> Row {
        Row::new(vec![
            Value::Int(-42),
            Value::text("IL4_855:1:1:954:659"),
            Value::Float(0.125),
            Value::Bool(true),
            Value::bytes(b"\x00\x01\x02"),
            Value::Guid(0xdeadbeef),
        ])
    }

    #[test]
    fn roundtrip_none_and_row() {
        let s = schema();
        let r = sample_row();
        for comp in [Compression::None, Compression::Row] {
            let enc = encode_row(&s, &r, comp, None);
            let dec = decode_row(&s, &enc, comp, None).unwrap();
            assert_eq!(dec, r, "{comp:?}");
        }
    }

    #[test]
    fn row_compression_is_smaller_for_small_ints() {
        let s = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]);
        let r = Row::new(vec![Value::Int(3), Value::Int(-7)]);
        let none = encode_row(&s, &r, Compression::None, None);
        let rowc = encode_row(&s, &r, Compression::Row, None);
        assert!(rowc.len() < none.len(), "{} !< {}", rowc.len(), none.len());
    }

    #[test]
    fn nulls_roundtrip() {
        let s = schema();
        let r = Row::new(vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]);
        for comp in [Compression::None, Compression::Row] {
            let enc = encode_row(&s, &r, comp, None);
            assert_eq!(enc.len(), 1); // just the bitmap
            let dec = decode_row(&s, &enc, comp, None).unwrap();
            assert_eq!(dec, r);
        }
    }

    #[test]
    fn truncated_record_is_an_error_not_a_panic() {
        let s = schema();
        let enc = encode_row(&s, &sample_row(), Compression::Row, None);
        for cut in 0..enc.len() {
            let _ = decode_row(&s, &enc[..cut], Compression::Row, None);
        }
    }

    #[test]
    fn batch_decode_matches_row_by_row() {
        let s = schema();
        let rows: Vec<Row> = (0..7).map(|_| sample_row()).collect();
        let encoded: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| encode_row(&s, r, Compression::Row, None))
            .collect();
        let mut out = Vec::new();
        decode_rows_into(&s, &encoded, Compression::Row, None, &mut out).unwrap();
        assert_eq!(out, rows);
    }

    #[test]
    fn masked_decode_skips_columns_across_formats() {
        let s = schema();
        let r = sample_row();
        let mask = [false, true, false, true, false, false];
        for comp in [Compression::None, Compression::Row] {
            let enc = encode_row(&s, &r, comp, None);
            let dec = decode_row_masked(&s, &enc, comp, None, &mask).unwrap();
            for i in 0..s.len() {
                if mask[i] {
                    assert_eq!(dec[i], r[i], "col {i} {comp:?}");
                } else {
                    assert_eq!(dec[i], Value::Null, "col {i} {comp:?}");
                }
            }
        }
        // A mask shorter than the schema treats missing entries as wanted.
        let dec = decode_row_masked(
            &s,
            &encode_row(&s, &r, Compression::Row, None),
            Compression::Row,
            None,
            &[false],
        )
        .unwrap();
        assert_eq!(dec[0], Value::Null);
        for i in 1..s.len() {
            assert_eq!(dec[i], r[i]);
        }
    }

    #[test]
    fn page_mode_without_context_acts_like_row() {
        let s = schema();
        let r = sample_row();
        let row_enc = encode_row(&s, &r, Compression::Row, None);
        let page_enc = encode_row(&s, &r, Compression::Page, None);
        assert_eq!(row_enc, page_enc);
        let dec = decode_row(&s, &page_enc, Compression::Page, None).unwrap();
        assert_eq!(dec, r);
    }
}

//! Buffer pool: an LRU cache of page frames over a [`PageStore`].
//!
//! Frames are shared via `Arc`; a frame whose `Arc` is held by an operator
//! is effectively pinned (never evicted). Hit/miss counters support the
//! "warm buffer pool" measurements of the paper's §5.3.3 (the 7-second
//! warm merge join).
//!
//! When the pool is built with a [`WriteAheadLog`]
//! ([`BufferPool::with_wal`]), every in-place page write follows the
//! WAL-before-data rule: the sealed page image is logged and the log
//! synced before the data store is touched, so a torn in-place write can
//! always be repaired on recovery. [`BufferPool::checkpoint`] batches the
//! images of all dirty pages under one commit marker and a single log
//! sync, then writes them back, syncs the store and truncates the log.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use seqdb_types::Result;

use crate::page::{Page, PageId, PageType, PAGE_SIZE};
use crate::pager::PageStore;
use crate::wal::WriteAheadLog;

/// One cached page image.
pub struct Frame {
    pub id: PageId,
    /// The page contents. Writers take the write lock, mark the frame dirty
    /// and the pool writes it back on eviction or flush.
    pub page: RwLock<Page>,
    dirty: AtomicBool,
}

impl Frame {
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }
}

/// Buffer-pool statistics (monotonic counters).
#[derive(Debug, Default)]
pub struct PoolStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub writebacks: AtomicU64,
}

/// An LRU buffer pool. `capacity` is in frames (8 KiB each).
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    wal: Option<Arc<WriteAheadLog>>,
    frames: Mutex<FrameTable>,
    capacity: usize,
    pub stats: PoolStats,
}

struct FrameTable {
    map: HashMap<PageId, Arc<Frame>>,
    /// LRU order: front = least recently used. Contains only ids in `map`.
    lru: Vec<PageId>,
}

impl BufferPool {
    /// Default capacity: 4096 frames = 32 MiB.
    pub const DEFAULT_CAPACITY: usize = 4096;

    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> Arc<BufferPool> {
        Self::build(store, capacity, None)
    }

    /// A pool whose page writes are protected by a write-ahead log. The
    /// caller is expected to have already replayed the log into `store`
    /// ([`WriteAheadLog::recover_into`]) before handing it over.
    pub fn with_wal(
        store: Arc<dyn PageStore>,
        capacity: usize,
        wal: Arc<WriteAheadLog>,
    ) -> Arc<BufferPool> {
        Self::build(store, capacity, Some(wal))
    }

    fn build(
        store: Arc<dyn PageStore>,
        capacity: usize,
        wal: Option<Arc<WriteAheadLog>>,
    ) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            store,
            wal,
            frames: Mutex::new(FrameTable {
                map: HashMap::new(),
                lru: Vec::new(),
            }),
            capacity: capacity.max(8),
            stats: PoolStats::default(),
        })
    }

    pub fn with_default_capacity(store: Arc<dyn PageStore>) -> Arc<BufferPool> {
        Self::new(store, Self::DEFAULT_CAPACITY)
    }

    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    pub fn wal(&self) -> Option<&Arc<WriteAheadLog>> {
        self.wal.as_ref()
    }

    /// Fetch a page frame, reading it from the store on a miss.
    pub fn fetch(&self, id: PageId) -> Result<Arc<Frame>> {
        {
            let mut t = self.frames.lock();
            if let Some(f) = t.map.get(&id).cloned() {
                touch(&mut t.lru, id);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(f);
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // Read outside the table lock; a racing fetch of the same page may
        // duplicate the read, but the table insert below deduplicates.
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let start = std::time::Instant::now();
        self.store.read_page(id, &mut buf)?;
        crate::counters::waits().record(crate::counters::WaitClass::BufferIo, start.elapsed());
        let page = Page::from_bytes(buf)?;
        let frame = Arc::new(Frame {
            id,
            page: RwLock::new(page),
            dirty: AtomicBool::new(false),
        });
        self.insert_frame(id, frame)
    }

    /// Allocate a fresh page of the given type and return its frame
    /// (already dirty).
    pub fn allocate(&self, ptype: PageType) -> Result<(PageId, Arc<Frame>)> {
        let id = self.store.allocate()?;
        let frame = Arc::new(Frame {
            id,
            page: RwLock::new(Page::new(ptype)),
            dirty: AtomicBool::new(true),
        });
        let frame = self.insert_frame(id, frame)?;
        Ok((id, frame))
    }

    fn insert_frame(&self, id: PageId, frame: Arc<Frame>) -> Result<Arc<Frame>> {
        let mut evict: Vec<Arc<Frame>> = Vec::new();
        let out;
        {
            let mut t = self.frames.lock();
            let f = t.map.entry(id).or_insert_with(|| frame).clone();
            touch(&mut t.lru, id);
            // Evict LRU frames that nobody references.
            while t.map.len() > self.capacity {
                let Some(pos) = t
                    .lru
                    .iter()
                    .position(|pid| Arc::strong_count(&t.map[pid]) == 1)
                else {
                    break; // everything pinned
                };
                let victim = t.lru.remove(pos);
                let vf = t.map.remove(&victim).expect("lru entry has a frame");
                evict.push(vf);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            out = f;
        }
        for (i, vf) in evict.iter().enumerate() {
            if let Err(e) = self.writeback(vf) {
                // A victim whose dirty image cannot be written back must
                // not be dropped — that would silently lose the page.
                // Reinsert it (and any not-yet-processed victims) and
                // surface the error.
                let mut t = self.frames.lock();
                for vf in &evict[i..] {
                    t.map.insert(vf.id, vf.clone());
                    touch(&mut t.lru, vf.id);
                }
                return Err(e);
            }
        }
        Ok(out)
    }

    /// Write one frame's dirty image in place (eviction path). With a WAL
    /// attached this is a single-page transaction: image + commit marker
    /// logged and synced before the in-place write.
    fn writeback(&self, frame: &Frame) -> Result<()> {
        if frame.is_dirty() {
            let page = frame.page.read();
            let image = page.to_bytes();
            if let Some(wal) = &self.wal {
                wal.log_page(frame.id, &image)?;
                wal.commit()?;
                wal.sync()?;
            }
            self.store.write_page(frame.id, &image)?;
            frame.dirty.store(false, Ordering::Release);
            drop(page);
            self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Durably write every dirty frame back to the store.
    ///
    /// With a WAL attached this is a checkpoint: all dirty images are
    /// logged under one commit marker and one log sync, written in place,
    /// the store is synced and the log truncated. Without a WAL it
    /// degrades to write-back-and-sync.
    pub fn checkpoint(&self) -> Result<()> {
        let frames: Vec<Arc<Frame>> = {
            let t = self.frames.lock();
            t.map.values().cloned().collect()
        };
        let Some(wal) = &self.wal else {
            for f in frames {
                self.writeback(&f)?;
            }
            return self.store.sync();
        };
        // Capture sealed images of all dirty frames, clearing the dirty
        // flag under the read guard so a concurrent re-dirtying after the
        // capture is never lost.
        let mut captured: Vec<(Arc<Frame>, Box<[u8]>)> = Vec::new();
        for f in &frames {
            if f.is_dirty() {
                let page = f.page.read();
                let image = page.to_bytes();
                f.dirty.store(false, Ordering::Release);
                drop(page);
                captured.push((f.clone(), image));
            }
        }
        if captured.is_empty() {
            return self.store.sync();
        }
        let result = (|| {
            for (f, image) in &captured {
                wal.log_page(f.id, image)?;
            }
            wal.commit()?;
            wal.sync()?;
            for (f, image) in &captured {
                self.store.write_page(f.id, image)?;
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            self.store.sync()?;
            wal.truncate()
        })();
        if result.is_err() {
            // The images never became durable as a unit; put the dirty
            // flags back so the pages are retried later.
            for (f, _) in &captured {
                f.mark_dirty();
            }
        }
        result
    }

    /// Alias for [`BufferPool::checkpoint`], kept for callers that predate
    /// the WAL.
    pub fn flush_all(&self) -> Result<()> {
        self.checkpoint()
    }

    /// Drop every clean cached frame (for cold-cache benchmarking).
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        let mut t = self.frames.lock();
        t.map.retain(|_, f| Arc::strong_count(f) > 1);
        let keep: std::collections::HashSet<PageId> = t.map.keys().copied().collect();
        t.lru.retain(|id| keep.contains(id));
        Ok(())
    }

    /// Repair path 1: if page `id` is cached, rewrite the durable copy
    /// from the in-memory image (WAL-before-data, like an eviction
    /// writeback) and return `true`. A cached frame is always at least as
    /// fresh as disk — corrupt images never enter the cache, because
    /// [`BufferPool::fetch`] verifies the checksum before inserting — so
    /// this is the preferred source for scrub repairs. Deliberately does
    /// NOT fall back to reading the store: the caller only wants the
    /// in-memory copy.
    pub fn rewrite_from_cache(&self, id: PageId) -> Result<bool> {
        let frame = {
            let t = self.frames.lock();
            t.map.get(&id).cloned()
        };
        let Some(frame) = frame else {
            return Ok(false);
        };
        let page = frame.page.read();
        let image = page.to_bytes();
        if let Some(wal) = &self.wal {
            wal.log_page(id, &image)?;
            wal.commit()?;
            wal.sync()?;
        }
        self.store.write_page(id, &image)?;
        self.store.sync()?;
        frame.dirty.store(false, Ordering::Release);
        Ok(true)
    }

    /// Repair path 2: rewrite page `id` in place from `image` (a verified
    /// last-committed copy recovered from the WAL). The image is logged
    /// and synced before the in-place write, so a crash mid-repair is
    /// itself recoverable. Any *clean* cached frame for the page is
    /// dropped defensively; readers re-fetch and see the repaired image.
    /// (A dirty or pinned frame is left alone — it is newer than the
    /// repair source and will overwrite it on its own writeback.)
    pub fn restore_page(&self, id: PageId, image: &[u8]) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.log_page(id, image)?;
            wal.commit()?;
            wal.sync()?;
        }
        self.store.write_page(id, image)?;
        self.store.sync()?;
        let mut t = self.frames.lock();
        let drop_it = t
            .map
            .get(&id)
            .is_some_and(|f| !f.is_dirty() && Arc::strong_count(f) == 1);
        if drop_it {
            t.map.remove(&id);
            t.lru.retain(|&pid| pid != id);
        }
        Ok(())
    }

    pub fn cached_frames(&self) -> usize {
        self.frames.lock().map.len()
    }

    /// Frames currently pinned by callers (an outstanding `Arc<Frame>`
    /// beyond the pool's own reference). A query that aborts mid-stream
    /// must drop every pin it took; leak tests assert this returns to its
    /// pre-query value.
    pub fn pinned_frames(&self) -> usize {
        self.frames
            .lock()
            .map
            .values()
            .filter(|f| Arc::strong_count(f) > 1)
            .count()
    }
}

fn touch(lru: &mut Vec<PageId>, id: PageId) {
    if let Some(pos) = lru.iter().position(|&p| p == id) {
        lru.remove(pos);
    }
    lru.push(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn pool(cap: usize) -> Arc<BufferPool> {
        BufferPool::new(Arc::new(MemPager::new()), cap)
    }

    #[test]
    fn allocate_fetch_roundtrip() {
        let pool = pool(16);
        let (id, frame) = pool.allocate(PageType::Heap).unwrap();
        frame.page.write().insert(b"data").unwrap();
        frame.mark_dirty();
        pool.flush_all().unwrap();

        pool.clear_cache().unwrap();
        drop(frame);
        let again = pool.fetch(id).unwrap();
        assert_eq!(again.page.read().get(0), Some(&b"data"[..]));
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let pool = pool(8);
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let (id, frame) = pool.allocate(PageType::Heap).unwrap();
            frame.page.write().insert(&[i]).unwrap();
            frame.mark_dirty();
            ids.push(id);
            // frames dropped here => evictable
        }
        assert!(pool.cached_frames() <= 8);
        assert!(pool.stats.evictions.load(Ordering::Relaxed) > 0);
        // All data still readable through the pool.
        for (i, id) in ids.iter().enumerate() {
            let f = pool.fetch(*id).unwrap();
            assert_eq!(f.page.read().get(0), Some(&[i as u8][..]));
        }
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let pool = pool(8);
        let (pinned_id, pinned) = pool.allocate(PageType::Heap).unwrap();
        pinned.page.write().insert(b"pinned").unwrap();
        pinned.mark_dirty();
        for _ in 0..64 {
            let _ = pool.allocate(PageType::Heap).unwrap();
        }
        // Our Arc still points at the same live frame.
        assert_eq!(pinned.page.read().get(0), Some(&b"pinned"[..]));
        let again = pool.fetch(pinned_id).unwrap();
        assert!(Arc::ptr_eq(&pinned, &again), "pinned frame was not evicted");
    }

    #[test]
    fn eviction_writeback_errors_propagate_and_lose_no_pages() {
        use crate::fault::{FaultClock, FaultInjectingPageStore, FaultPlan};
        // Transient I/O errors on a schedule: some will land on eviction
        // writebacks. The pool must surface them AND keep the dirty frame.
        let store = Arc::new(FaultInjectingPageStore::new(
            Arc::new(MemPager::new()),
            FaultClock::new(FaultPlan {
                seed: 11,
                io_error_every: Some(5),
                ..FaultPlan::none()
            }),
        ));
        let pool = BufferPool::new(store, 8);
        let mut written = Vec::new();
        let mut saw_error = false;
        for i in 0..64u8 {
            match pool.allocate(PageType::Heap) {
                Ok((id, frame)) => {
                    frame.page.write().insert(&[i]).unwrap();
                    frame.mark_dirty();
                    written.push((id, i));
                }
                Err(e) => {
                    assert!(matches!(e, seqdb_types::DbError::Io(_)), "{e}");
                    saw_error = true;
                }
            }
        }
        assert!(saw_error, "the schedule should have injected errors");
        assert!(pool.stats.evictions.load(Ordering::Relaxed) > 0);
        // Every acknowledged insert must still be readable: a failed
        // eviction writeback reinserted its frame instead of dropping it.
        for (id, i) in written {
            loop {
                match pool.fetch(id) {
                    Ok(f) => {
                        assert_eq!(f.page.read().get(0), Some(&[i][..]));
                        break;
                    }
                    // Injected read error; the data is still there.
                    Err(seqdb_types::DbError::Io(_)) => continue,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    }

    #[test]
    fn torn_eviction_write_is_caught_by_the_checksum() {
        use crate::fault::{FaultClock, FaultInjectingPageStore, FaultPlan};
        let store = Arc::new(FaultInjectingPageStore::new(
            Arc::new(MemPager::new()),
            FaultClock::new(FaultPlan {
                seed: 3,
                torn_write_every: Some(1), // every page write tears
                ..FaultPlan::none()
            }),
        ));
        let pool = BufferPool::new(store, 16);
        let (id, frame) = pool.allocate(PageType::Heap).unwrap();
        frame.page.write().insert(b"precious").unwrap();
        frame.mark_dirty();
        drop(frame);
        pool.flush_all().unwrap(); // the torn write "succeeds"
        pool.clear_cache().unwrap();
        let Err(err) = pool.fetch(id) else {
            panic!("fetching the torn page should fail");
        };
        assert!(
            matches!(err, seqdb_types::DbError::Corruption(_)),
            "torn write must surface as corruption, got: {err}"
        );
    }

    #[test]
    fn wal_pool_checkpoint_truncates_and_protects_writes() {
        use crate::wal::{MemWalBackend, WriteAheadLog};
        let wal = Arc::new(WriteAheadLog::new(Box::new(MemWalBackend::new())));
        let store = Arc::new(MemPager::new());
        let pool = BufferPool::with_wal(store, 16, wal.clone());
        let (id, frame) = pool.allocate(PageType::Heap).unwrap();
        frame.page.write().insert(b"logged").unwrap();
        frame.mark_dirty();
        drop(frame);
        pool.checkpoint().unwrap();
        // After a clean checkpoint the log is empty again...
        let out = wal.replay().unwrap();
        assert!(out.images.is_empty() && out.commits == 0);
        // ...and the data is durable in the store.
        pool.clear_cache().unwrap();
        assert_eq!(
            pool.fetch(id).unwrap().page.read().get(0),
            Some(&b"logged"[..])
        );
    }

    #[test]
    fn hit_miss_accounting() {
        let pool = pool(16);
        let (id, f) = pool.allocate(PageType::Heap).unwrap();
        drop(f);
        pool.clear_cache().unwrap();
        let _ = pool.fetch(id).unwrap(); // miss
        let _ = pool.fetch(id).unwrap(); // hit
        assert_eq!(pool.stats.misses.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats.hits.load(Ordering::Relaxed), 1);
    }
}

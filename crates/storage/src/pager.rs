//! Page stores: the interface between the buffer pool and raw storage.
//!
//! [`FilePager`] backs a database file on disk (positional reads/writes,
//! no global lock on the data path); [`MemPager`] keeps pages in memory
//! and is used by tests and in-memory databases.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use seqdb_types::{DbError, Result};

use crate::page::{PageId, PAGE_SIZE};

/// Abstract page-granular storage.
pub trait PageStore: Send + Sync {
    /// Read page `id` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;
    /// Write page `id` from `buf`.
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;
    /// Allocate a fresh page id (the page contents are undefined until the
    /// first `write_page`).
    fn allocate(&self) -> Result<PageId>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
    /// Flush to durable storage where applicable.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// File-backed pager. Uses positional I/O (`pread`/`pwrite`) so concurrent
/// readers do not serialize on a seek lock.
pub struct FilePager {
    file: File,
    next_page: AtomicU64,
}

impl FilePager {
    /// Create or open the database file at `path`.
    pub fn open(path: &Path) -> Result<FilePager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DbError::Storage(format!(
                "database file length {len} is not a multiple of the page size"
            )));
        }
        Ok(FilePager {
            file,
            next_page: AtomicU64::new(len / PAGE_SIZE as u64),
        })
    }
}

#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off)
}

#[cfg(unix)]
fn write_at(file: &File, buf: &[u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, off)
}

impl PageStore for FilePager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id >= self.num_pages() {
            return Err(DbError::Storage(format!("read of unallocated page {id}")));
        }
        read_at(&self.file, buf, id * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id >= self.num_pages() {
            return Err(DbError::Storage(format!("write of unallocated page {id}")));
        }
        write_at(&self.file, buf, id * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let id = self.next_page.fetch_add(1, Ordering::SeqCst);
        // Extend the file eagerly so reads of a freshly allocated (but not
        // yet written) page do not hit EOF.
        write_at(&self.file, &[0u8; PAGE_SIZE], id * PAGE_SIZE as u64)?;
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        self.next_page.load(Ordering::SeqCst)
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// In-memory pager for tests and `Database::in_memory()`.
#[derive(Default)]
pub struct MemPager {
    pages: RwLock<Vec<Box<[u8]>>>,
}

impl MemPager {
    pub fn new() -> MemPager {
        MemPager::default()
    }
}

impl PageStore for MemPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.read();
        let page = pages
            .get(id as usize)
            .ok_or_else(|| DbError::Storage(format!("read of unallocated page {id}")))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.write();
        let page = pages
            .get_mut(id as usize)
            .ok_or_else(|| DbError::Storage(format!("write of unallocated page {id}")))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.write();
        pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok((pages.len() - 1) as PageId)
    }

    fn num_pages(&self) -> u64 {
        self.pages.read().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        let mut w = vec![0u8; PAGE_SIZE];
        w[0] = 0xaa;
        w[PAGE_SIZE - 1] = 0xbb;
        store.write_page(b, &w).unwrap();
        let mut r = vec![0u8; PAGE_SIZE];
        store.read_page(b, &mut r).unwrap();
        assert_eq!(r, w);
        assert!(store.read_page(99, &mut r).is_err());
        assert_eq!(store.num_pages(), 2);
    }

    #[test]
    fn mem_pager_basic() {
        exercise(&MemPager::new());
    }

    #[test]
    fn file_pager_basic_and_reopen() {
        let dir = std::env::temp_dir().join(format!("seqdb-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        let _ = std::fs::remove_file(&path);
        {
            let p = FilePager::open(&path).unwrap();
            exercise(&p);
            p.sync().unwrap();
        }
        {
            let p = FilePager::open(&path).unwrap();
            assert_eq!(p.num_pages(), 2);
            let mut r = vec![0u8; PAGE_SIZE];
            p.read_page(1, &mut r).unwrap();
            assert_eq!(r[0], 0xaa);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Physical write-ahead log.
//!
//! Durability protocol (WAL-before-data):
//!
//! 1. Before a dirty page is written in place, its full sealed image is
//!    appended to the log and the log is synced. A torn in-place write can
//!    then always be repaired from the log on the next open.
//! 2. A checkpoint ([`crate::BufferPool::checkpoint`]) batches the images
//!    of every dirty page, appends a commit marker, syncs the log once,
//!    writes the pages in place, syncs the data store and finally
//!    truncates the log.
//! 3. On open, [`WriteAheadLog::recover_into`] replays the longest valid
//!    prefix of the log into the data store (later images of the same page
//!    override earlier ones), syncs it and truncates the log. A torn or
//!    corrupt record ends the prefix — everything before it was synced
//!    before anything after it was written, so the prefix is exactly the
//!    durable part of the log. Within the prefix, only images covered by a
//!    commit marker are applied: a batch of images with no trailing commit
//!    is an interrupted checkpoint whose in-place writes never started, and
//!    applying half of it could tear multi-page structures apart.
//!
//! Record framing: `[u32 len][u32 crc32c(payload)][payload]`, everything
//! little-endian. Payloads:
//!
//! * kind `1` — page image: `[1][page_id u64][image; PAGE_SIZE]`
//! * kind `2` — commit marker: `[2][seq u64]`
//!
//! Page images are sealed (page checksum valid) when logged, so a replayed
//! image always passes verification on the next read.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use seqdb_types::{DbError, Result};

use crate::counters::storage_counters;
use crate::crc32c::crc32c;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::PageStore;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// Frame header: u32 length + u32 payload checksum.
const FRAME_LEN: usize = 8;
/// Largest legal payload (a page-image record).
const MAX_PAYLOAD: usize = 1 + 8 + PAGE_SIZE;

/// Byte-level log storage. Abstracted so the fault-injection harness can
/// interpose on the log the same way [`crate::fault`] interposes on the
/// page store.
pub trait WalBackend: Send + Sync {
    /// The entire current log contents.
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Append bytes at the end of the log.
    fn append(&self, buf: &[u8]) -> Result<()>;
    /// Make appended bytes durable.
    fn sync(&self) -> Result<()>;
    /// Discard the log contents (after a checkpoint or recovery).
    fn truncate(&self) -> Result<()>;
}

/// Shared backends can be handed to a [`WriteAheadLog`] directly. This is
/// how crash tests reopen the same in-memory "disk" after a simulated
/// power loss.
impl<T: WalBackend + ?Sized> WalBackend for std::sync::Arc<T> {
    fn read_all(&self) -> Result<Vec<u8>> {
        (**self).read_all()
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        (**self).append(buf)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn truncate(&self) -> Result<()> {
        (**self).truncate()
    }
}

/// File-backed log storage. The file is opened in append mode; framing and
/// ordering are enforced by [`WriteAheadLog`].
pub struct FileWalBackend {
    file: File,
    path: PathBuf,
}

impl FileWalBackend {
    pub fn open(path: &Path) -> Result<FileWalBackend> {
        let file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        Ok(FileWalBackend {
            file,
            path: path.to_path_buf(),
        })
    }
}

impl WalBackend for FileWalBackend {
    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(std::fs::read(&self.path)?)
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        // A real ENOSPC surfaces as the typed DiskFull, not a device fault.
        (&self.file).write_all(buf).map_err(DbError::io_write)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate(&self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// In-memory log storage for tests and `Database::in_memory()`.
#[derive(Default)]
pub struct MemWalBackend {
    data: Mutex<Vec<u8>>,
}

impl MemWalBackend {
    pub fn new() -> MemWalBackend {
        MemWalBackend::default()
    }
}

impl WalBackend for MemWalBackend {
    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.data.lock().clone())
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        self.data.lock().extend_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn truncate(&self) -> Result<()> {
        self.data.lock().clear();
        Ok(())
    }
}

/// What [`WriteAheadLog::replay`] found in the log.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Committed page images in log order (a page may appear several
    /// times; the last image wins). Images not followed by a commit
    /// marker are excluded — see the module docs.
    pub images: Vec<(PageId, Box<[u8]>)>,
    /// Number of commit markers in the valid prefix.
    pub commits: u64,
    /// Highest commit sequence number seen, if any.
    pub last_seq: Option<u64>,
    /// Valid page images after the last commit marker, discarded as an
    /// interrupted batch.
    pub discarded: usize,
    /// `true` if the log ended in a torn or corrupt record (expected after
    /// a crash mid-append; everything before it is still applied).
    pub torn_tail: bool,
}

/// The write-ahead log. Appends are serialized by an internal mutex; the
/// caller (the buffer pool) decides when to sync and truncate.
pub struct WriteAheadLog {
    backend: Box<dyn WalBackend>,
    state: Mutex<WalState>,
}

struct WalState {
    next_seq: u64,
}

impl WriteAheadLog {
    pub fn new(backend: Box<dyn WalBackend>) -> WriteAheadLog {
        WriteAheadLog {
            backend,
            state: Mutex::new(WalState { next_seq: 1 }),
        }
    }

    /// Open a file-backed log at `path`.
    pub fn open_file(path: &Path) -> Result<WriteAheadLog> {
        Ok(WriteAheadLog::new(Box::new(FileWalBackend::open(path)?)))
    }

    /// Append a page-image record. The image must be a sealed page buffer.
    pub fn log_page(&self, id: PageId, image: &[u8]) -> Result<()> {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        let mut payload = Vec::with_capacity(MAX_PAYLOAD);
        payload.push(KIND_PAGE_IMAGE);
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(image);
        let _state = self.state.lock();
        self.backend.append(&counted_frame(&payload))
    }

    /// Append a commit marker and return its sequence number.
    pub fn commit(&self) -> Result<u64> {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        let mut payload = Vec::with_capacity(9);
        payload.push(KIND_COMMIT);
        payload.extend_from_slice(&seq.to_le_bytes());
        self.backend.append(&counted_frame(&payload))?;
        state.next_seq += 1;
        Ok(seq)
    }

    /// Make all appended records durable.
    pub fn sync(&self) -> Result<()> {
        self.backend.sync()?;
        storage_counters()
            .wal_fsyncs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Discard the log (call only after the data store is synced).
    pub fn truncate(&self) -> Result<()> {
        self.backend.truncate()
    }

    /// Parse the log and return the longest valid record prefix.
    pub fn replay(&self) -> Result<ReplayOutcome> {
        let data = self.backend.read_all()?;
        let mut out = ReplayOutcome {
            images: Vec::new(),
            commits: 0,
            last_seq: None,
            discarded: 0,
            torn_tail: false,
        };
        // Images accumulate here and graduate to `out.images` when a
        // commit marker covers them.
        let mut batch: Vec<(PageId, Box<[u8]>)> = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let Some((payload, next)) = parse_frame(&data[pos..]) else {
                out.torn_tail = true;
                break;
            };
            match payload[0] {
                KIND_PAGE_IMAGE if payload.len() == 1 + 8 + PAGE_SIZE => {
                    let id = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                    batch.push((id, payload[9..].to_vec().into_boxed_slice()));
                }
                KIND_COMMIT if payload.len() == 9 => {
                    let seq = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                    out.images.append(&mut batch);
                    out.commits += 1;
                    out.last_seq = Some(out.last_seq.map_or(seq, |s| s.max(seq)));
                }
                _ => {
                    // A record whose checksum matches but whose payload is
                    // nonsense means the log was written by something else.
                    return Err(DbError::Corruption(format!(
                        "unrecognized WAL record kind {} at byte {pos}",
                        payload[0]
                    )));
                }
            }
            pos += next;
        }
        out.discarded = batch.len();
        if let Some(seq) = out.last_seq {
            self.state.lock().next_seq = seq + 1;
        }
        Ok(out)
    }

    /// Replay the log into `store`: rewrite every logged page (last image
    /// of each page wins), sync the store and truncate the log. Returns
    /// the number of distinct pages restored.
    pub fn recover_into(&self, store: &dyn PageStore) -> Result<usize> {
        let outcome = self.replay()?;
        if outcome.images.is_empty() {
            if !outcome.torn_tail && outcome.commits == 0 && outcome.discarded == 0 {
                return Ok(0); // empty log: nothing to do, skip the syncs
            }
            self.backend.truncate()?;
            return Ok(0);
        }
        let mut last: std::collections::HashMap<PageId, &[u8]> = std::collections::HashMap::new();
        for (id, image) in &outcome.images {
            last.insert(*id, image.as_ref());
        }
        // Replayed pages may lie beyond the store's current end if the
        // crash happened before the file grew; extend as needed.
        let max_id = last.keys().copied().max().unwrap();
        while store.num_pages() <= max_id {
            store.allocate()?;
        }
        for (id, image) in &last {
            store.write_page(*id, image)?;
        }
        store.sync()?;
        self.backend.truncate()?;
        Ok(last.len())
    }
}

/// Build a frame and account it in the global storage counters. Both
/// append paths (`log_page`, `commit`) go through here so `wal_records`
/// and `wal_bytes` count exactly what lands in the log.
fn counted_frame(payload: &[u8]) -> Vec<u8> {
    let rec = frame(payload);
    let counters = storage_counters();
    let relaxed = std::sync::atomic::Ordering::Relaxed;
    counters.wal_records.fetch_add(1, relaxed);
    counters.wal_bytes.fetch_add(rec.len() as u64, relaxed);
    rec
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(FRAME_LEN + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32c(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

/// Parse one frame at the start of `data`. Returns the payload slice and
/// the total frame length, or `None` if the frame is torn or corrupt.
fn parse_frame(data: &[u8]) -> Option<(&[u8], usize)> {
    if data.len() < FRAME_LEN {
        return None;
    }
    let len = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_PAYLOAD || data.len() < FRAME_LEN + len {
        return None;
    }
    let stored_crc = u32::from_le_bytes(data[4..8].try_into().unwrap());
    let payload = &data[FRAME_LEN..FRAME_LEN + len];
    if crc32c(payload) != stored_crc {
        return None;
    }
    Some((payload, FRAME_LEN + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageType};
    use crate::pager::MemPager;

    fn image(marker: &[u8]) -> Box<[u8]> {
        let mut p = Page::new(PageType::Heap);
        p.insert(marker).unwrap();
        p.to_bytes()
    }

    #[test]
    fn log_and_replay_roundtrip() {
        let wal = WriteAheadLog::new(Box::new(MemWalBackend::new()));
        wal.log_page(0, &image(b"zero")).unwrap();
        wal.log_page(1, &image(b"one")).unwrap();
        wal.log_page(0, &image(b"zero-v2")).unwrap();
        let seq = wal.commit().unwrap();
        assert_eq!(seq, 1);
        wal.sync().unwrap();

        let out = wal.replay().unwrap();
        assert_eq!(out.images.len(), 3);
        assert_eq!(out.commits, 1);
        assert_eq!(out.last_seq, Some(1));
        assert!(!out.torn_tail);
        // Sequence numbers continue past what replay saw.
        assert_eq!(wal.commit().unwrap(), 2);
    }

    #[test]
    fn recover_applies_last_image_and_truncates() {
        let store = MemPager::new();
        let id = store.allocate().unwrap();
        let wal = WriteAheadLog::new(Box::new(MemWalBackend::new()));
        wal.log_page(id, &image(b"old")).unwrap();
        wal.log_page(id, &image(b"new")).unwrap();
        wal.commit().unwrap();

        let restored = wal.recover_into(&store).unwrap();
        assert_eq!(restored, 1);
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        store.read_page(id, &mut buf).unwrap();
        let page = Page::from_bytes(buf).unwrap();
        assert_eq!(page.get(0), Some(&b"new"[..]));
        // Log is empty afterwards.
        let out = wal.replay().unwrap();
        assert!(out.images.is_empty() && out.commits == 0);
    }

    #[test]
    fn recover_extends_store_for_unallocated_pages() {
        let store = MemPager::new();
        let wal = WriteAheadLog::new(Box::new(MemWalBackend::new()));
        wal.log_page(3, &image(b"far")).unwrap();
        wal.commit().unwrap();
        assert_eq!(wal.recover_into(&store).unwrap(), 1);
        assert_eq!(store.num_pages(), 4);
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        store.read_page(3, &mut buf).unwrap();
        assert_eq!(Page::from_bytes(buf).unwrap().get(0), Some(&b"far"[..]));
    }

    #[test]
    fn torn_tail_stops_replay_but_keeps_prefix() {
        let backend = MemWalBackend::new();
        {
            let wal = WriteAheadLog::new(Box::new(MemWalBackend::new()));
            // Build a valid log in a scratch WAL, then copy a torn version.
            wal.log_page(0, &image(b"a")).unwrap();
            wal.commit().unwrap();
            wal.log_page(1, &image(b"b")).unwrap();
            let bytes = wal.backend.read_all().unwrap();
            // Cut the final record short by 100 bytes.
            backend.append(&bytes[..bytes.len() - 100]).unwrap();
        }
        let wal = WriteAheadLog::new(Box::new(backend));
        let out = wal.replay().unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.images.len(), 1);
        assert_eq!(out.commits, 1);
    }

    #[test]
    fn corrupt_record_body_stops_replay() {
        let backend = MemWalBackend::new();
        {
            let scratch = WriteAheadLog::new(Box::new(MemWalBackend::new()));
            scratch.log_page(0, &image(b"a")).unwrap();
            scratch.commit().unwrap();
            scratch.log_page(1, &image(b"b")).unwrap();
            scratch.commit().unwrap();
            let mut bytes = scratch.backend.read_all().unwrap();
            // Flip a byte inside the second page image's payload.
            let flip = bytes.len() / 2 + 200;
            bytes[flip] ^= 0xFF;
            backend.append(&bytes).unwrap();
        }
        let wal = WriteAheadLog::new(Box::new(backend));
        let out = wal.replay().unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.images.len(), 1);
        assert_eq!(out.commits, 1);
    }

    #[test]
    fn uncommitted_tail_images_are_discarded() {
        let wal = WriteAheadLog::new(Box::new(MemWalBackend::new()));
        wal.log_page(0, &image(b"committed")).unwrap();
        wal.commit().unwrap();
        wal.log_page(1, &image(b"interrupted checkpoint")).unwrap();
        let out = wal.replay().unwrap();
        assert_eq!(out.images.len(), 1);
        assert_eq!(out.images[0].0, 0);
        assert_eq!(out.discarded, 1);
        assert!(!out.torn_tail);
    }

    #[test]
    fn file_backend_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("seqdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = WriteAheadLog::open_file(&path).unwrap();
            wal.log_page(0, &image(b"persisted")).unwrap();
            wal.commit().unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = WriteAheadLog::open_file(&path).unwrap();
            let out = wal.replay().unwrap();
            assert_eq!(out.images.len(), 1);
            assert_eq!(out.commits, 1);
            wal.truncate().unwrap();
        }
        {
            let wal = WriteAheadLog::open_file(&path).unwrap();
            assert!(wal.replay().unwrap().images.is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

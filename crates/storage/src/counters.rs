//! Process-global observability counters (the `DM_OS_*` DMV backing).
//!
//! SQL Server exposes engine internals through `sys.dm_os_performance_counters`
//! and `sys.dm_os_wait_stats`; the paper's evaluation (Figures 9–10) leans on
//! exactly those views to attribute query time to I/O vs compute. seqdb
//! mirrors the design with two registries:
//!
//! * [`storage_counters`] — monotonic activity counters for the WAL,
//!   FileStream store, and temp space. Buffer-pool counters stay on the
//!   per-pool [`crate::buffer::PoolStats`]; the engine merges both sets
//!   when it renders `DM_OS_PERFORMANCE_COUNTERS()`.
//! * [`waits`] — per-wait-class occurrence count and cumulative wall time,
//!   recorded at every point where a query thread blocks on a shared
//!   resource (admission queue, buffer-pool page reads, spill I/O,
//!   FileStream retry backoff).
//!
//! Counters are process-global statics rather than per-instance fields so
//! instrumentation points deep in the storage layer need no plumbing and
//! the DMVs can be assembled without threading handles everywhere. All
//! counters are monotonic; observers that need per-interval numbers take
//! before/after snapshots and subtract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// A low-level storage event forwarded to an installed trace hook (the
/// engine's structured tracer registers one). The hook is a plain `fn`
/// pointer kept in a `OnceLock`, so the per-event cost when no tracing
/// is active is one relaxed atomic load here plus one mask load in the
/// hook — cheap enough to leave compiled into every wait site.
#[derive(Debug, Clone, Copy)]
pub enum StorageEvent {
    /// One recorded wait (class + duration), fired by
    /// [`WaitStats::record`] at the end of the blocked interval.
    Wait { class: WaitClass, nanos: u64 },
    /// One spill file created in a temp space.
    SpillFile { class: WaitClass },
}

static TRACE_HOOK: OnceLock<fn(&StorageEvent)> = OnceLock::new();

/// Install the process-wide storage trace hook. First install wins;
/// later calls are no-ops (the hook is expected to be the engine's
/// tracer, installed once at database assembly).
pub fn install_trace_hook(hook: fn(&StorageEvent)) {
    let _ = TRACE_HOOK.set(hook);
}

/// Forward `event` to the installed hook, if any.
pub fn emit_storage_event(event: StorageEvent) {
    if let Some(hook) = TRACE_HOOK.get() {
        hook(&event);
    }
}

/// Classes of waits tracked by [`WaitStats`] (the seqdb analogue of
/// SQL Server wait types like `RESOURCE_SEMAPHORE` and `PAGEIOLATCH_SH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Blocked in the admission controller waiting for workspace memory
    /// (SQL Server `RESOURCE_SEMAPHORE`).
    Admission = 0,
    /// Reading a page from the data store on a buffer-pool miss
    /// (`PAGEIOLATCH_SH`).
    BufferIo = 1,
    /// Writing or reading operator spill files in the temp space
    /// (`IO_COMPLETION` on tempdb).
    SpillIo = 2,
    /// Backoff sleeps between FileStream transient-error retries.
    FileStreamRetry = 3,
    /// Writing or reading hash-join partition files in the temp space.
    /// Kept separate from [`WaitClass::SpillIo`] so join spills are
    /// distinguishable from sort/aggregate spills in `DM_OS_WAIT_STATS()`.
    JoinSpill = 4,
    /// Page reads and blob re-hashing performed by the integrity scrubber
    /// (`CHECK TABLE` / `CHECK DATABASE` / the background scrub thread).
    /// Separate from [`WaitClass::BufferIo`] so scrub overhead is
    /// attributable independently of query-driven page reads.
    ScrubIo = 5,
    /// Page and blob copying performed by the online backup path
    /// (`BACKUP DATABASE` / the background backup thread). Separate from
    /// [`WaitClass::ScrubIo`] so backup overhead is attributable
    /// independently of integrity scrubbing.
    BackupIo = 6,
}

/// All wait classes, in rendering order for `DM_OS_WAIT_STATS()`.
pub const WAIT_CLASSES: [WaitClass; 7] = [
    WaitClass::Admission,
    WaitClass::BufferIo,
    WaitClass::SpillIo,
    WaitClass::FileStreamRetry,
    WaitClass::JoinSpill,
    WaitClass::ScrubIo,
    WaitClass::BackupIo,
];

impl WaitClass {
    /// The `wait_class` string rendered by `DM_OS_WAIT_STATS()`.
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::Admission => "ADMISSION",
            WaitClass::BufferIo => "BUFFER_IO",
            WaitClass::SpillIo => "SPILL_IO",
            WaitClass::FileStreamRetry => "FILESTREAM_RETRY",
            WaitClass::JoinSpill => "JOIN_SPILL",
            WaitClass::ScrubIo => "SCRUB_IO",
            WaitClass::BackupIo => "BACKUP_IO",
        }
    }
}

/// Per-class wait occurrence counts, cumulative wall time, and the
/// longest single wait observed.
#[derive(Default)]
pub struct WaitStats {
    counts: [AtomicU64; WAIT_CLASSES.len()],
    nanos: [AtomicU64; WAIT_CLASSES.len()],
    max_nanos: [AtomicU64; WAIT_CLASSES.len()],
}

/// One row of `DM_OS_WAIT_STATS()`.
#[derive(Debug, Clone)]
pub struct WaitSnapshot {
    pub class: WaitClass,
    pub count: u64,
    pub total_nanos: u64,
    /// The longest single wait recorded in this class.
    pub max_nanos: u64,
}

impl WaitSnapshot {
    /// Cumulative wait time in milliseconds (what the DMV renders).
    pub fn total_ms(&self) -> u64 {
        self.total_nanos / 1_000_000
    }

    /// Longest single wait in milliseconds (the `max_wait_ms` column).
    pub fn max_ms(&self) -> u64 {
        self.max_nanos / 1_000_000
    }
}

impl WaitStats {
    /// Record one wait of `dur` in `class`.
    pub fn record(&self, class: WaitClass, dur: Duration) {
        let i = class as usize;
        let n = dur.as_nanos() as u64;
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.nanos[i].fetch_add(n, Ordering::Relaxed);
        self.max_nanos[i].fetch_max(n, Ordering::Relaxed);
        emit_storage_event(StorageEvent::Wait { class, nanos: n });
    }

    /// Occurrences of `class` so far.
    pub fn count(&self, class: WaitClass) -> u64 {
        self.counts[class as usize].load(Ordering::Relaxed)
    }

    /// Cumulative nanoseconds waited in `class`.
    pub fn total_nanos(&self, class: WaitClass) -> u64 {
        self.nanos[class as usize].load(Ordering::Relaxed)
    }

    /// Longest single wait (nanoseconds) recorded in `class`.
    pub fn max_nanos(&self, class: WaitClass) -> u64 {
        self.max_nanos[class as usize].load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot of every class (counts and times are
    /// read independently; both are monotonic).
    pub fn snapshot(&self) -> Vec<WaitSnapshot> {
        WAIT_CLASSES
            .iter()
            .map(|&class| WaitSnapshot {
                class,
                count: self.count(class),
                total_nanos: self.total_nanos(class),
                max_nanos: self.max_nanos(class),
            })
            .collect()
    }
}

macro_rules! zero_counters {
    () => {
        [
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ]
    };
}

static WAITS: WaitStats = WaitStats {
    counts: zero_counters!(),
    nanos: zero_counters!(),
    max_nanos: zero_counters!(),
};

/// The process-global wait-stats registry.
pub fn waits() -> &'static WaitStats {
    &WAITS
}

/// Monotonic storage-activity counters (WAL, FileStream, temp space).
#[derive(Default)]
pub struct StorageCounters {
    /// WAL records appended (page images + commit markers).
    pub wal_records: AtomicU64,
    /// WAL bytes appended, including frame headers.
    pub wal_bytes: AtomicU64,
    /// WAL durability syncs issued.
    pub wal_fsyncs: AtomicU64,
    /// FileStream payload bytes read from blobs.
    pub filestream_bytes_read: AtomicU64,
    /// FileStream payload bytes written into blobs.
    pub filestream_bytes_written: AtomicU64,
    /// Transient-error read retries across all FileStream readers.
    pub filestream_read_retries: AtomicU64,
    /// Transient-error write retries across all FileStream stores.
    pub filestream_write_retries: AtomicU64,
    /// Spill files created in any temp space.
    pub spill_files: AtomicU64,
    /// Bytes written to spill files in any temp space.
    pub spill_bytes: AtomicU64,
    /// Hash-join partition files created in any temp space (subset of
    /// `spill_files`, attributed to the JOIN_SPILL wait class).
    pub join_spill_files: AtomicU64,
    /// Bytes written to hash-join partition files (subset of `spill_bytes`).
    pub join_spill_bytes: AtomicU64,
    /// Table/index pages verified by the integrity scrubber.
    pub scrub_pages_checked: AtomicU64,
    /// FileStream blobs re-hashed by the integrity scrubber.
    pub scrub_blobs_checked: AtomicU64,
    /// Corrupt pages and blobs found by the scrubber (whether or not a
    /// repair succeeded).
    pub corruptions_found: AtomicU64,
    /// Corrupt pages rewritten from a good in-memory or WAL image and
    /// re-verified.
    pub pages_repaired: AtomicU64,
    /// Orphaned tempspace spill files and stale FileStream `.tmp`/sidecar
    /// files removed during `Database::open` startup hygiene.
    pub startup_orphans_removed: AtomicU64,
    /// Pages copied into backup sets (full and incremental).
    pub backup_pages_copied: AtomicU64,
    /// Bytes written into backup sets (pages, blobs, WAL segment,
    /// catalog snapshot and manifest).
    pub backup_bytes: AtomicU64,
    /// Pages verified during `RESTORE DATABASE` (including `VERIFY ONLY`).
    pub restore_pages_verified: AtomicU64,
}

impl StorageCounters {
    /// Render every counter as `(name, value)` pairs, in a stable order,
    /// for `DM_OS_PERFORMANCE_COUNTERS()`.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("wal_records", ld(&self.wal_records)),
            ("wal_bytes", ld(&self.wal_bytes)),
            ("wal_fsyncs", ld(&self.wal_fsyncs)),
            ("filestream_bytes_read", ld(&self.filestream_bytes_read)),
            (
                "filestream_bytes_written",
                ld(&self.filestream_bytes_written),
            ),
            ("filestream_read_retries", ld(&self.filestream_read_retries)),
            (
                "filestream_write_retries",
                ld(&self.filestream_write_retries),
            ),
            ("spill_files", ld(&self.spill_files)),
            ("spill_bytes", ld(&self.spill_bytes)),
            ("join_spill_files", ld(&self.join_spill_files)),
            ("join_spill_bytes", ld(&self.join_spill_bytes)),
            ("scrub_pages_checked", ld(&self.scrub_pages_checked)),
            ("scrub_blobs_checked", ld(&self.scrub_blobs_checked)),
            ("corruptions_found", ld(&self.corruptions_found)),
            ("pages_repaired", ld(&self.pages_repaired)),
            ("startup_orphans_removed", ld(&self.startup_orphans_removed)),
            ("backup_pages_copied", ld(&self.backup_pages_copied)),
            ("backup_bytes", ld(&self.backup_bytes)),
            ("restore_pages_verified", ld(&self.restore_pages_verified)),
        ]
    }
}

static STORAGE: StorageCounters = StorageCounters {
    wal_records: AtomicU64::new(0),
    wal_bytes: AtomicU64::new(0),
    wal_fsyncs: AtomicU64::new(0),
    filestream_bytes_read: AtomicU64::new(0),
    filestream_bytes_written: AtomicU64::new(0),
    filestream_read_retries: AtomicU64::new(0),
    filestream_write_retries: AtomicU64::new(0),
    spill_files: AtomicU64::new(0),
    spill_bytes: AtomicU64::new(0),
    join_spill_files: AtomicU64::new(0),
    join_spill_bytes: AtomicU64::new(0),
    scrub_pages_checked: AtomicU64::new(0),
    scrub_blobs_checked: AtomicU64::new(0),
    corruptions_found: AtomicU64::new(0),
    pages_repaired: AtomicU64::new(0),
    startup_orphans_removed: AtomicU64::new(0),
    backup_pages_copied: AtomicU64::new(0),
    backup_bytes: AtomicU64::new(0),
    restore_pages_verified: AtomicU64::new(0),
};

/// The process-global storage-counter registry.
pub fn storage_counters() -> &'static StorageCounters {
    &STORAGE
}

/// A spill attribution sink: every spill file created through
/// [`crate::TempSpace::create_spill_tallied`] bumps `files` on creation and
/// `bytes` on each write, for every tally attached to the writer. Queries
/// attach one tally per governor (statement-level totals) and one per plan
/// operator (per-node `EXPLAIN ANALYZE` numbers); both observe the same
/// spill traffic without double-counting the global registry.
#[derive(Default, Debug)]
pub struct SpillTally {
    files: AtomicU64,
    bytes: AtomicU64,
    wait_nanos: AtomicU64,
}

impl SpillTally {
    pub fn add_file(&self) {
        self.files.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Attribute spill I/O wall time to this tally (the per-statement
    /// wait breakdown in the query store reads it back).
    pub fn add_wait_nanos(&self, n: u64) {
        self.wait_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Spill files attributed to this tally.
    pub fn files(&self) -> u64 {
        self.files.load(Ordering::Relaxed)
    }

    /// Spill bytes attributed to this tally.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Spill I/O wall time (nanoseconds) attributed to this tally.
    pub fn wait_nanos(&self) -> u64 {
        self.wait_nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_stats_accumulate() {
        let w = WaitStats::default();
        w.record(WaitClass::Admission, Duration::from_millis(3));
        w.record(WaitClass::Admission, Duration::from_millis(4));
        w.record(WaitClass::SpillIo, Duration::from_micros(10));
        assert_eq!(w.count(WaitClass::Admission), 2);
        assert_eq!(w.total_nanos(WaitClass::Admission), 7_000_000);
        assert_eq!(w.count(WaitClass::SpillIo), 1);
        assert_eq!(w.count(WaitClass::BufferIo), 0);
        let snap = w.snapshot();
        assert_eq!(snap.len(), WAIT_CLASSES.len());
        assert_eq!(snap[0].total_ms(), 7);
        assert_eq!(snap[0].max_ms(), 4, "longest single wait is tracked");
        assert_eq!(w.max_nanos(WaitClass::SpillIo), 10_000);
    }

    #[test]
    fn global_registries_are_reachable() {
        let before = waits().count(WaitClass::FileStreamRetry);
        waits().record(WaitClass::FileStreamRetry, Duration::from_nanos(1));
        assert!(waits().count(WaitClass::FileStreamRetry) > before);
        let names: Vec<&str> = storage_counters()
            .snapshot()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert!(names.contains(&"wal_fsyncs") && names.contains(&"spill_bytes"));
    }

    #[test]
    fn spill_tally_sums() {
        let t = SpillTally::default();
        t.add_file();
        t.add_bytes(100);
        t.add_bytes(28);
        t.add_wait_nanos(5_000);
        assert_eq!(t.files(), 1);
        assert_eq!(t.bytes(), 128);
        assert_eq!(t.wait_nanos(), 5_000);
    }

    #[test]
    fn trace_hook_receives_wait_events() {
        use std::sync::atomic::AtomicU64 as A;
        static SEEN: A = A::new(0);
        fn hook(e: &StorageEvent) {
            if matches!(
                e,
                StorageEvent::Wait { .. } | StorageEvent::SpillFile { .. }
            ) {
                SEEN.fetch_add(1, Ordering::Relaxed);
            }
        }
        install_trace_hook(hook);
        let before = SEEN.load(Ordering::Relaxed);
        waits().record(WaitClass::BackupIo, Duration::from_nanos(5));
        emit_storage_event(StorageEvent::SpillFile {
            class: WaitClass::SpillIo,
        });
        // At least our two events arrived (other tests may add more; the
        // hook slot is process-global and first-install-wins).
        assert!(SEEN.load(Ordering::Relaxed) >= before + 2);
    }
}

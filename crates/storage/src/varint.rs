//! LEB128 varints with zigzag encoding for signed integers.
//!
//! Used by row compression (paper §2.3.5: "row compression uses
//! variable-length storage formats for numeric types") and by every other
//! variable-length field in record and page encodings.

/// Append `v` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `v` with zigzag + LEB128.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Read an unsigned varint from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncated input or overlong encoding (> 10 bytes).
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Read a zigzag-encoded signed varint.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(buf, pos).map(unzigzag)
}

#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Number of bytes `write_u64` would emit.
pub fn len_u64(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_one_byte() {
        let mut out = Vec::new();
        write_u64(&mut out, 127);
        assert_eq!(out, vec![0x7f]);
        out.clear();
        write_i64(&mut out, -1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut pos = 0;
        assert_eq!(read_u64(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(read_u64(&[], &mut pos), None);
    }

    #[test]
    fn len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert_eq!(out.len(), len_u64(v), "v={v}");
        }
    }

    proptest! {
        #[test]
        fn roundtrip_u64(v: u64) {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&out, &mut pos), Some(v));
            prop_assert_eq!(pos, out.len());
        }

        #[test]
        fn roundtrip_i64(v: i64) {
            let mut out = Vec::new();
            write_i64(&mut out, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&out, &mut pos), Some(v));
        }

        #[test]
        fn zigzag_small_magnitude_small_encoding(v in -64i64..64) {
            let mut out = Vec::new();
            write_i64(&mut out, v);
            prop_assert_eq!(out.len(), 1);
        }
    }
}

//! seqdb storage engine.
//!
//! Implements the storage-layer features of SQL Server 2008 that the paper
//! (*Röhm & Blakeley, CIDR 2009*) builds on:
//!
//! * slotted 8 KiB pages with heap files and a buffer pool ([`page`],
//!   [`heap`], [`buffer`], [`pager`]);
//! * **row compression** (variable-length numeric storage, §2.3.5) and
//!   **page compression** (per-page column-prefix + dictionary, §2.3.5)
//!   in [`rowfmt`] and [`pagec`];
//! * B+-tree clustered indexes used by the paper's parallel merge join
//!   (§5.3.3) in [`btree`];
//! * **FileStream BLOBs** (§2.3.6): database-managed files with streaming
//!   chunked access (`GetBytes` + `SequentialAccess` prefetch) in
//!   [`filestream`];
//! * spill-accounted temporary space for blocking operators ([`tempspace`]),
//!   which makes the "huge intermediate result on the temporary tablespace"
//!   of §5.3.3 measurable.

pub mod btree;
pub mod buffer;
pub mod counters;
pub mod crc32c;
pub mod fault;
pub mod filestream;
pub mod heap;
pub mod keycode;
pub mod page;
pub mod pagec;
pub mod pager;
pub mod rowfmt;
pub mod scrub;
pub mod sha256;
pub mod tempspace;
pub mod varint;
pub mod wal;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use counters::{
    emit_storage_event, install_trace_hook, storage_counters, waits, SpillTally, StorageCounters,
    StorageEvent, WaitClass, WaitSnapshot, WaitStats,
};
pub use fault::{
    rot_file, FaultClock, FaultInjectingPageStore, FaultInjectingStream, FaultPlan, NetFate,
    PageRot,
};
pub use filestream::{BlobCheck, FileStreamReader, FileStreamStore};
pub use heap::{HeapFile, RecordId};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pagec::PageContext;
pub use pager::{FilePager, MemPager, PageStore};
pub use rowfmt::Compression;
pub use scrub::Quarantine;
pub use tempspace::TempSpace;
pub use wal::WriteAheadLog;

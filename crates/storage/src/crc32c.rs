//! CRC-32C (Castagnoli) — the checksum used for page images and WAL
//! records.
//!
//! The Castagnoli polynomial (0x1EDC6F41) is the one used by iSCSI, ext4
//! and Btrfs metadata; its error-detection properties for short messages
//! are better than the IEEE CRC-32. This is a plain table-driven software
//! implementation (no SSE4.2 intrinsics) — at ~1 GB/s it is far from the
//! bottleneck of an 8 KiB page write.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continue a CRC-32C computation: `crc` is the checksum of the bytes seen
/// so far, the result covers those bytes followed by `data`.
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // RFC 3720 (iSCSI) test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn append_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c(a), b), crc32c(data));
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = vec![0x5Au8; 512];
        let crc = crc32c(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), crc, "flip at {byte}:{bit} undetected");
            }
        }
    }
}

//! Page-compression context: the per-page column-prefix table and value
//! dictionary of SQL Server 2008 page compression (paper §2.3.5, [11]).
//!
//! When a heap page fills up on a `DATA_COMPRESSION = PAGE` table, the heap
//! decodes the page's rows, builds a [`PageContext`] from them (longest
//! common column prefixes + a dictionary of repeated values), re-encodes
//! every row against it and rewrites the page. The context is serialized
//! into the page's *compression-information* area, so pages remain
//! self-describing given the table schema.
//!
//! The paper's Table 2 observation — "the short-reads are much less uniform
//! and hence the common-prefix- and dictionary-based compression algorithms
//! over only a small subset of the data fitting on one disk page do not
//! perform that well" — falls out of this design naturally: the context
//! only ever sees one page's worth of rows.

use std::collections::HashMap;

use seqdb_types::{Result, Row, Schema, Value};

use crate::rowfmt::{common_prefix_len, encode_value_row};
use crate::varint;

/// Upper bound on the serialized size of a page's compression context.
/// Keeps the CI area from crowding out the data it is meant to compress.
pub const MAX_CONTEXT_BYTES: usize = 2048;

/// Minimum number of occurrences for a value to be considered for the
/// dictionary, and minimum canonical length (shorter values cost more as a
/// token than inline).
const DICT_MIN_COUNT: usize = 2;
const DICT_MIN_LEN: usize = 3;

/// A per-page compression context: one optional byte prefix per column and
/// a dictionary of canonical value encodings shared by all columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageContext {
    prefixes: Vec<Vec<u8>>,
    dict: Vec<Vec<u8>>,
    dict_index: HashMap<Vec<u8>, u32>,
}

impl PageContext {
    /// Build a context from the rows currently on a page.
    ///
    /// Column prefixes: the longest common prefix of the raw payloads of
    /// all non-null Text/Bytes values in the column (capped at 255 bytes).
    /// Dictionary: canonical encodings occurring at least twice, greedily
    /// admitted by descending total savings until [`MAX_CONTEXT_BYTES`].
    pub fn build(schema: &Schema, rows: &[Row]) -> PageContext {
        let ncols = schema.len();
        let mut prefixes: Vec<Option<Vec<u8>>> = vec![None; ncols];
        let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();

        for row in rows {
            for (i, v) in row.values().iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                if let Some(payload) = raw_payload(v) {
                    match &mut prefixes[i] {
                        None => prefixes[i] = Some(payload[..payload.len().min(255)].to_vec()),
                        Some(p) => {
                            let l = common_prefix_len(p, payload);
                            p.truncate(l);
                        }
                    }
                }
                let mut canon = Vec::new();
                encode_value_row(&mut canon, v);
                if canon.len() >= DICT_MIN_LEN {
                    *counts.entry(canon).or_insert(0) += 1;
                }
            }
        }

        let prefixes: Vec<Vec<u8>> = prefixes
            .into_iter()
            .map(|p| p.unwrap_or_default())
            .collect();

        // Rank dictionary candidates by savings = (count-1) * len, best first.
        let mut candidates: Vec<(Vec<u8>, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= DICT_MIN_COUNT)
            .collect();
        candidates.sort_by(|a, b| {
            let sa = (a.1 - 1) * a.0.len();
            let sb = (b.1 - 1) * b.0.len();
            sb.cmp(&sa).then_with(|| a.0.cmp(&b.0))
        });

        let mut budget = MAX_CONTEXT_BYTES
            .saturating_sub(prefixes.iter().map(|p| p.len() + 2).sum::<usize>() + 8);
        let mut dict = Vec::new();
        for (canon, _) in candidates {
            let cost = canon.len() + varint::len_u64(canon.len() as u64);
            if cost > budget {
                continue;
            }
            budget -= cost;
            dict.push(canon);
        }

        let dict_index = dict
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();

        PageContext {
            prefixes,
            dict,
            dict_index,
        }
    }

    /// The prefix bytes for column `col` (empty = no prefix).
    pub fn prefix(&self, col: usize) -> &[u8] {
        self.prefixes.get(col).map(|p| p.as_slice()).unwrap_or(&[])
    }

    /// Dictionary id for a canonical value encoding, if present.
    pub fn dict_lookup(&self, canon: &[u8]) -> Option<u32> {
        self.dict_index.get(canon).copied()
    }

    /// Canonical encoding stored under `id`.
    pub fn dict_entry(&self, id: usize) -> Option<&[u8]> {
        self.dict.get(id).map(|d| d.as_slice())
    }

    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Whether the context contains anything worth storing.
    pub fn is_trivial(&self) -> bool {
        self.dict.is_empty() && self.prefixes.iter().all(|p| p.len() < 2)
    }

    /// Serialize into the page's CI area.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u64(&mut out, self.prefixes.len() as u64);
        for p in &self.prefixes {
            varint::write_u64(&mut out, p.len() as u64);
            out.extend_from_slice(p);
        }
        varint::write_u64(&mut out, self.dict.len() as u64);
        for d in &self.dict {
            varint::write_u64(&mut out, d.len() as u64);
            out.extend_from_slice(d);
        }
        out
    }

    /// Parse a CI area back into a context.
    pub fn deserialize(buf: &[u8]) -> Result<PageContext> {
        let err = || seqdb_types::DbError::Storage("corrupt page compression context".into());
        let mut pos = 0;
        let npref = varint::read_u64(buf, &mut pos).ok_or_else(err)? as usize;
        let mut prefixes = Vec::with_capacity(npref.min(1024));
        for _ in 0..npref {
            let n = varint::read_u64(buf, &mut pos).ok_or_else(err)? as usize;
            let end = pos.checked_add(n).ok_or_else(err)?;
            prefixes.push(buf.get(pos..end).ok_or_else(err)?.to_vec());
            pos = end;
        }
        let ndict = varint::read_u64(buf, &mut pos).ok_or_else(err)? as usize;
        let mut dict = Vec::with_capacity(ndict.min(4096));
        for _ in 0..ndict {
            let n = varint::read_u64(buf, &mut pos).ok_or_else(err)? as usize;
            let end = pos.checked_add(n).ok_or_else(err)?;
            dict.push(buf.get(pos..end).ok_or_else(err)?.to_vec());
            pos = end;
        }
        let dict_index = dict
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        Ok(PageContext {
            prefixes,
            dict,
            dict_index,
        })
    }
}

fn raw_payload(v: &Value) -> Option<&[u8]> {
    match v {
        Value::Text(s) => Some(s.as_bytes()),
        Value::Bytes(b) => Some(b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowfmt::{decode_row, encode_row, Compression};
    use seqdb_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("tag", DataType::Text),
        ])
    }

    fn repetitive_rows() -> Vec<Row> {
        // Digital gene expression style: few distinct tags, repeated often,
        // sharing a long prefix.
        (0..100)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::text(format!("CATGGAATTCTCGGG_{}", i % 4)),
                ])
            })
            .collect()
    }

    #[test]
    fn context_finds_prefix_and_dictionary() {
        let s = schema();
        let rows = repetitive_rows();
        let ctx = PageContext::build(&s, &rows);
        assert!(ctx.prefix(1).starts_with(b"CATGGAATTCTCGGG_"));
        assert!(
            ctx.dict_len() >= 4,
            "four repeated tags should be dict entries"
        );
        assert!(!ctx.is_trivial());
    }

    #[test]
    fn page_compressed_rows_roundtrip_and_shrink() {
        let s = schema();
        let rows = repetitive_rows();
        let ctx = PageContext::build(&s, &rows);
        let mut plain = 0usize;
        let mut compressed = 0usize;
        for r in &rows {
            let enc_row = encode_row(&s, r, Compression::Row, None);
            let enc_page = encode_row(&s, r, Compression::Page, Some(&ctx));
            plain += enc_row.len();
            compressed += enc_page.len();
            let dec = decode_row(&s, &enc_page, Compression::Page, Some(&ctx)).unwrap();
            assert_eq!(&dec, r);
        }
        assert!(
            compressed * 2 < plain,
            "repetitive page should compress >2x: {compressed} vs {plain}"
        );
    }

    #[test]
    fn high_entropy_rows_barely_compress() {
        // 1000-Genomes style: nearly-unique reads. Page compression should
        // not help much (Table 2's observation).
        let s = schema();
        let bases = [b'A', b'C', b'G', b'T'];
        let rows: Vec<Row> = (0..100u64)
            .map(|i| {
                let mut x = i
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(144115188075855872);
                let seq: String = (0..36)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        bases[(x >> 33) as usize % 4] as char
                    })
                    .collect();
                Row::new(vec![Value::Int(i as i64), Value::text(seq)])
            })
            .collect();
        let ctx = PageContext::build(&s, &rows);
        let mut plain = 0usize;
        let mut compressed = 0usize;
        for r in &rows {
            plain += encode_row(&s, r, Compression::Row, None).len();
            let enc = encode_row(&s, r, Compression::Page, Some(&ctx));
            compressed += enc.len();
            let dec = decode_row(&s, &enc, Compression::Page, Some(&ctx)).unwrap();
            assert_eq!(&dec, r);
        }
        let ratio = compressed as f64 / plain as f64;
        assert!(
            ratio > 0.85,
            "unique reads should not compress well: {ratio}"
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let s = schema();
        let ctx = PageContext::build(&s, &repetitive_rows());
        let ser = ctx.serialize();
        assert!(ser.len() <= MAX_CONTEXT_BYTES);
        let back = PageContext::deserialize(&ser).unwrap();
        assert_eq!(back, ctx);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(PageContext::deserialize(&[0xff, 0xff, 0xff]).is_err());
    }
}

//! B+-tree clustered indexes.
//!
//! The paper's §5.3.3 relies on "appropriate clustered indexes" so the
//! query processor can merge-join alignments with reads "in order of their
//! starting position". This module provides the ordered storage for that:
//! a disk-resident B+-tree over [`crate::keycode`]-encoded keys, with a
//! right-sibling chain on the leaves for ordered range scans.
//!
//! Nodes are serialized as a single record on a page; every structural
//! mutation rewrites the node's page image (nodes are ≤ 8 KiB, so this is
//! one memcpy). Concurrency is a coarse tree latch: shared for reads,
//! exclusive for writes — adequate for seqdb's bulk-load-then-query
//! workloads and simple to reason about.

use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use seqdb_types::{DbError, Result};

use crate::buffer::BufferPool;
use crate::page::{Page, PageId, PageType, NO_PAGE};
use crate::varint;

/// Serialized node payloads above this size trigger a split. Leaves room
/// for the page header and slot entry.
const SPLIT_THRESHOLD: usize = 7600;
/// A single key+value entry may not exceed this (it must fit a node).
const MAX_ENTRY: usize = 3500;

/// A disk-resident B+-tree mapping byte keys to byte values.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: RwLock<PageId>,
    len: AtomicU64,
}

/// Result of a recursive insert: the displaced old value (if the key
/// existed) and, when the child split, the separator key + new right page.
type InsertOutcome = (Option<Vec<u8>>, Option<(Vec<u8>, PageId)>);

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        next: PageId,
    },
    Internal {
        /// `keys.len() + 1 == children.len()`; subtree `children[i]` holds
        /// keys `< keys[i]`, subtree `children[i+1]` holds keys `>= keys[i]`.
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Node::Leaf { entries, .. } => {
                varint::write_u64(&mut out, entries.len() as u64);
                for (k, v) in entries {
                    varint::write_u64(&mut out, k.len() as u64);
                    out.extend_from_slice(k);
                    varint::write_u64(&mut out, v.len() as u64);
                    out.extend_from_slice(v);
                }
            }
            Node::Internal { keys, children } => {
                varint::write_u64(&mut out, keys.len() as u64);
                for k in keys {
                    varint::write_u64(&mut out, k.len() as u64);
                    out.extend_from_slice(k);
                }
                for c in children {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        out
    }

    fn deserialize(page: &Page) -> Result<Node> {
        let err = || DbError::Storage("corrupt b+tree node".into());
        let rec = page.get(0).ok_or_else(err)?;
        let mut pos = 0;
        match page.page_type() {
            PageType::BTreeLeaf => {
                let n = varint::read_u64(rec, &mut pos).ok_or_else(err)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let kl = varint::read_u64(rec, &mut pos).ok_or_else(err)? as usize;
                    let k = rec.get(pos..pos + kl).ok_or_else(err)?.to_vec();
                    pos += kl;
                    let vl = varint::read_u64(rec, &mut pos).ok_or_else(err)? as usize;
                    let v = rec.get(pos..pos + vl).ok_or_else(err)?.to_vec();
                    pos += vl;
                    entries.push((k, v));
                }
                Ok(Node::Leaf {
                    entries,
                    next: page.next_page(),
                })
            }
            PageType::BTreeInternal => {
                let n = varint::read_u64(rec, &mut pos).ok_or_else(err)? as usize;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    let kl = varint::read_u64(rec, &mut pos).ok_or_else(err)? as usize;
                    keys.push(rec.get(pos..pos + kl).ok_or_else(err)?.to_vec());
                    pos += kl;
                }
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..=n {
                    let raw = rec.get(pos..pos + 8).ok_or_else(err)?;
                    children.push(PageId::from_le_bytes(raw.try_into().unwrap()));
                    pos += 8;
                }
                Ok(Node::Internal { keys, children })
            }
            other => Err(DbError::Storage(format!(
                "page type {other:?} is not a b+tree node"
            ))),
        }
    }

    fn page_type(&self) -> PageType {
        match self {
            Node::Leaf { .. } => PageType::BTreeLeaf,
            Node::Internal { .. } => PageType::BTreeInternal,
        }
    }
}

impl BTree {
    /// Create an empty tree.
    pub fn create(pool: Arc<BufferPool>) -> Result<BTree> {
        let (root_id, frame) = pool.allocate(PageType::BTreeLeaf)?;
        let node = Node::Leaf {
            entries: Vec::new(),
            next: NO_PAGE,
        };
        write_node(&pool, frame.as_ref(), &node)?;
        Ok(BTree {
            pool,
            root: RwLock::new(root_id),
            len: AtomicU64::new(0),
        })
    }

    /// Re-open a tree given its root page (counts entries by walking the
    /// leaf chain).
    pub fn open(pool: Arc<BufferPool>, root: PageId) -> Result<BTree> {
        let tree = BTree {
            pool,
            root: RwLock::new(root),
            len: AtomicU64::new(0),
        };
        let n = tree.range(Bound::Unbounded, Bound::Unbounded)?.count();
        tree.len.store(n as u64, Ordering::Relaxed);
        Ok(tree)
    }

    pub fn root_page(&self) -> PageId {
        *self.root.read()
    }

    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages currently reachable from the root.
    pub fn page_count(&self) -> Result<u64> {
        let latch = self.root.read();
        let mut count = 0u64;
        let mut stack = vec![*latch];
        while let Some(pid) = stack.pop() {
            count += 1;
            if let Node::Internal { children, .. } = self.read_node(pid)? {
                stack.extend(children);
            }
        }
        Ok(count)
    }

    /// Every page reachable from the root, for the integrity scrubber.
    /// Unlike [`BTree::page_count`] this tolerates unreadable pages: a
    /// corrupt internal node is still *listed* (so the scrubber can try to
    /// repair it) — its subtree is simply not descended into until a later
    /// scrub pass after repair.
    pub fn pages(&self) -> Vec<PageId> {
        let latch = self.root.read();
        let mut out = Vec::new();
        let mut stack = vec![*latch];
        while let Some(pid) = stack.pop() {
            out.push(pid);
            if let Ok(Node::Internal { children, .. }) = self.read_node(pid) {
                stack.extend(children);
            }
        }
        out
    }

    /// Insert or replace. Returns the previous value under `key`, if any.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() + value.len() > MAX_ENTRY {
            return Err(DbError::Storage(format!(
                "index entry of {} bytes exceeds the {MAX_ENTRY}-byte limit",
                key.len() + value.len()
            )));
        }
        let mut root_guard = self.root.write();
        let (old, split) = self.insert_rec(*root_guard, key, value)?;
        if let Some((sep, right)) = split {
            // Grow a new root.
            let (new_root, frame) = self.pool.allocate(PageType::BTreeInternal)?;
            let node = Node::Internal {
                keys: vec![sep],
                children: vec![*root_guard, right],
            };
            write_node(&self.pool, frame.as_ref(), &node)?;
            *root_guard = new_root;
        }
        if old.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        Ok(old)
    }

    fn insert_rec(&self, pid: PageId, key: &[u8], value: &[u8]) -> Result<InsertOutcome> {
        let mut node = self.read_node(pid)?;
        match &mut node {
            Node::Leaf { entries, next: _ } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                if node_size(&node) <= SPLIT_THRESHOLD {
                    self.write_back(pid, &node)?;
                    return Ok((old, None));
                }
                // Split the leaf.
                let Node::Leaf { entries, next } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let sep = right_entries[0].0.clone();
                let (right_id, right_frame) = self.pool.allocate(PageType::BTreeLeaf)?;
                write_node(
                    &self.pool,
                    right_frame.as_ref(),
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                self.write_back(
                    pid,
                    &Node::Leaf {
                        entries: left_entries,
                        next: right_id,
                    },
                )?;
                Ok((old, Some((sep, right_id))))
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let child = children[idx];
                let (old, split) = self.insert_rec(child, key, value)?;
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if node_size(&node) <= SPLIT_THRESHOLD {
                        self.write_back(pid, &node)?;
                    } else {
                        let Node::Internal { keys, children } = node else {
                            unreachable!()
                        };
                        let mid = keys.len() / 2;
                        let promoted = keys[mid].clone();
                        let right_node = Node::Internal {
                            keys: keys[mid + 1..].to_vec(),
                            children: children[mid + 1..].to_vec(),
                        };
                        let left_node = Node::Internal {
                            keys: keys[..mid].to_vec(),
                            children: children[..=mid].to_vec(),
                        };
                        let (right_id, right_frame) =
                            self.pool.allocate(PageType::BTreeInternal)?;
                        write_node(&self.pool, right_frame.as_ref(), &right_node)?;
                        self.write_back(pid, &left_node)?;
                        return Ok((old, Some((promoted, right_id))));
                    }
                } else {
                    // Child handled everything; nothing changed here.
                }
                Ok((old, None))
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let latch = self.root.read();
        let mut pid = *latch;
        loop {
            match self.read_node(pid)? {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    pid = children[idx];
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone()));
                }
            }
        }
    }

    /// Remove `key`, returning its value. Leaves may underflow (no
    /// rebalancing); ordered iteration remains correct.
    pub fn delete(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let latch = self.root.write();
        let mut pid = *latch;
        loop {
            let mut node = self.read_node(pid)?;
            match &mut node {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    pid = children[idx];
                }
                Node::Leaf { entries, .. } => {
                    let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => Some(entries.remove(i).1),
                        Err(_) => None,
                    };
                    if old.is_some() {
                        self.write_back(pid, &node)?;
                        self.len.fetch_sub(1, Ordering::Relaxed);
                    }
                    return Ok(old);
                }
            }
        }
    }

    /// Ordered scan over `[start, end)` bounds (inclusive/exclusive per
    /// `Bound`). Materializes entries leaf-by-leaf.
    pub fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<BTreeRange<'_>> {
        let latch = self.root.read();
        // Find the first relevant leaf.
        let seek_key: &[u8] = match start {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let mut pid = *latch;
        loop {
            match self.read_node(pid)? {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(seek_key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    pid = children[idx];
                }
                Node::Leaf { entries, next } => {
                    let from = match start {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => entries.partition_point(|(ek, _)| ek.as_slice() < k),
                        Bound::Excluded(k) => entries.partition_point(|(ek, _)| ek.as_slice() <= k),
                    };
                    return Ok(BTreeRange {
                        tree: self,
                        entries,
                        idx: from,
                        next,
                        end: match end {
                            Bound::Unbounded => None,
                            Bound::Included(k) => Some((k.to_vec(), true)),
                            Bound::Excluded(k) => Some((k.to_vec(), false)),
                        },
                    });
                }
            }
        }
    }

    fn read_node(&self, pid: PageId) -> Result<Node> {
        let frame = self.pool.fetch(pid)?;
        let page = frame.page.read();
        Node::deserialize(&page)
    }

    fn write_back(&self, pid: PageId, node: &Node) -> Result<()> {
        let frame = self.pool.fetch(pid)?;
        write_node(&self.pool, frame.as_ref(), node)
    }
}

fn node_size(node: &Node) -> usize {
    node.serialize().len()
}

fn write_node(_pool: &Arc<BufferPool>, frame: &crate::buffer::Frame, node: &Node) -> Result<()> {
    let payload = node.serialize();
    let mut page = frame.page.write();
    let next = match node {
        Node::Leaf { next, .. } => *next,
        Node::Internal { .. } => NO_PAGE,
    };
    let mut fresh = Page::new(node.page_type());
    fresh.set_next_page(next);
    fresh
        .insert(&payload)
        .ok_or_else(|| DbError::Storage("b+tree node payload exceeds page".into()))?;
    *page = fresh;
    frame.mark_dirty();
    Ok(())
}

/// Ordered iterator over a key range.
pub struct BTreeRange<'a> {
    tree: &'a BTree,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    idx: usize,
    next: PageId,
    end: Option<(Vec<u8>, bool)>,
}

impl Iterator for BTreeRange<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.idx < self.entries.len() {
                let (k, v) = &self.entries[self.idx];
                if let Some((end, inclusive)) = &self.end {
                    let stop = if *inclusive { k > end } else { k >= end };
                    if stop {
                        return None;
                    }
                }
                self.idx += 1;
                return Some(Ok((k.clone(), v.clone())));
            }
            if self.next == NO_PAGE {
                return None;
            }
            match self.tree.read_node(self.next) {
                Ok(Node::Leaf { entries, next }) => {
                    self.entries = entries;
                    self.idx = 0;
                    self.next = next;
                }
                Ok(_) => {
                    return Some(Err(DbError::Storage(
                        "leaf chain points at a non-leaf page".into(),
                    )))
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn tree() -> BTree {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 256);
        BTree::create(pool).unwrap()
    }

    fn k(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_small() {
        let t = tree();
        assert_eq!(t.insert(&k(5), b"five").unwrap(), None);
        assert_eq!(t.insert(&k(3), b"three").unwrap(), None);
        assert_eq!(t.get(&k(5)).unwrap(), Some(b"five".to_vec()));
        assert_eq!(t.get(&k(4)).unwrap(), None);
        assert_eq!(t.insert(&k(5), b"FIVE").unwrap(), Some(b"five".to_vec()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn many_inserts_stay_sorted_across_splits() {
        let t = tree();
        let n = 20_000u32;
        // Insert in a scrambled order.
        let mut order: Vec<u32> = (0..n).collect();
        let mut state = 12345u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for i in &order {
            t.insert(&k(*i), format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(t.len(), n as u64);
        assert!(t.page_count().unwrap() > 10, "tree should have split");
        // Full ordered scan.
        let got: Vec<u32> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|e| u32::from_be_bytes(e.unwrap().0.try_into().unwrap()))
            .collect();
        let expect: Vec<u32> = (0..n).collect();
        assert_eq!(got, expect);
        // Random point lookups.
        for i in [0u32, 1, 999, 4321, n - 1] {
            assert_eq!(t.get(&k(i)).unwrap(), Some(format!("v{i}").into_bytes()));
        }
    }

    #[test]
    fn range_bounds() {
        let t = tree();
        for i in 0..100u32 {
            t.insert(&k(i), b"x").unwrap();
        }
        let collect = |s: Bound<&[u8]>, e: Bound<&[u8]>| -> Vec<u32> {
            t.range(s, e)
                .unwrap()
                .map(|r| u32::from_be_bytes(r.unwrap().0.try_into().unwrap()))
                .collect()
        };
        let k10 = k(10);
        let k20 = k(20);
        assert_eq!(
            collect(Bound::Included(&k10), Bound::Excluded(&k20)),
            (10..20).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(Bound::Excluded(&k10), Bound::Included(&k20)),
            (11..=20).collect::<Vec<_>>()
        );
        assert_eq!(collect(Bound::Unbounded, Bound::Excluded(&k10)).len(), 10);
    }

    #[test]
    fn delete_and_rescan() {
        let t = tree();
        for i in 0..1000u32 {
            t.insert(&k(i), b"v").unwrap();
        }
        for i in (0..1000u32).step_by(2) {
            assert!(t.delete(&k(i)).unwrap().is_some());
        }
        assert_eq!(t.delete(&k(0)).unwrap(), None);
        assert_eq!(t.len(), 500);
        let got: Vec<u32> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|e| u32::from_be_bytes(e.unwrap().0.try_into().unwrap()))
            .collect();
        assert!(got.iter().all(|i| i % 2 == 1));
        assert_eq!(got.len(), 500);
    }

    #[test]
    fn oversized_entry_rejected() {
        let t = tree();
        let big = vec![0u8; 8000];
        assert!(t.insert(b"k", &big).is_err());
    }

    #[test]
    fn reopen_from_root() {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 256);
        let t = BTree::create(pool.clone()).unwrap();
        for i in 0..5000u32 {
            t.insert(&k(i), b"v").unwrap();
        }
        let root = t.root_page();
        drop(t);
        let t2 = BTree::open(pool, root).unwrap();
        assert_eq!(t2.len(), 5000);
        assert_eq!(t2.get(&k(4999)).unwrap(), Some(b"v".to_vec()));
    }
}

//! Slotted 8 KiB pages.
//!
//! Layout:
//!
//! ```text
//! +--------------------+---------------------+----------------->      <-----------+
//! | header (32 bytes)  | CI area (ci_len)    | record data ...   ...  | slot array |
//! +--------------------+---------------------+----------------->      <-----------+
//! ```
//!
//! The header stores a sibling pointer (`next_page`) used both for heap
//! page chains and B+-tree leaf chains, and a CRC-32C checksum over the
//! whole page image (computed with the checksum field itself zeroed).
//! The checksum is refreshed by [`Page::to_bytes`]/[`Page::seal_buf`] when
//! a page is written back and verified by [`Page::from_bytes`] when it is
//! read, so torn writes and bit-rot surface as [`DbError::Corruption`]
//! instead of silently wrong query results. The *CI area* holds the
//! serialized page-compression context ([`crate::pagec::PageContext`]) on
//! compressed pages. Records grow upward from the end of the CI area; the
//! slot array (4 bytes per slot: `u16 offset`, `u16 len`) grows downward
//! from the end of the page. A slot with `len == 0` is a deleted record.

use seqdb_types::{DbError, Result};

use crate::crc32c::{crc32c, crc32c_append};

/// Size of every page, matching SQL Server's 8 KiB pages.
pub const PAGE_SIZE: usize = 8192;

/// Page number within a pager; byte offset = `id * PAGE_SIZE`.
pub type PageId = u64;

/// Sentinel "no page" value used in sibling pointers.
pub const NO_PAGE: PageId = u64::MAX;

const MAGIC: u32 = 0x5351_4442; // "SQDB"
const HEADER_LEN: usize = 32;
const SLOT_LEN: usize = 4;

// Header field offsets.
const OFF_MAGIC: usize = 0;
const OFF_TYPE: usize = 4;
const OFF_FLAGS: usize = 5;
const OFF_SLOTS: usize = 6;
const OFF_FREE_START: usize = 8;
const OFF_CI_LEN: usize = 10;
const OFF_NEXT: usize = 12;
const OFF_AUX: usize = 20; // u32 auxiliary field (B+-tree rightmost child low bits etc.)
const OFF_CHECKSUM: usize = 24; // u32 CRC-32C over the page, checksum field zeroed
                                // bytes 28..32 are reserved (always zero)

/// Kind of page; stored in the header so a pager can be inspected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    Meta = 0,
    Heap = 1,
    BTreeLeaf = 2,
    BTreeInternal = 3,
}

impl PageType {
    fn from_u8(v: u8) -> Option<PageType> {
        match v {
            0 => Some(PageType::Meta),
            1 => Some(PageType::Heap),
            2 => Some(PageType::BTreeLeaf),
            3 => Some(PageType::BTreeInternal),
            _ => None,
        }
    }
}

/// Flag bit: the CI area contains a serialized compression context.
pub const FLAG_COMPRESSED: u8 = 0b0000_0001;
/// Flag bit: this page has already been through recompression (heap pages
/// are recompressed at most once, when they first fill up).
pub const FLAG_RECOMPRESSED: u8 = 0b0000_0010;

/// An in-memory page image. The buffer is exactly [`PAGE_SIZE`] bytes and
/// is what gets written to / read from the pager verbatim.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8]>,
}

impl Page {
    /// A fresh, formatted page of the given type.
    pub fn new(ptype: PageType) -> Page {
        let mut page = Page {
            buf: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        };
        page.write_u32(OFF_MAGIC, MAGIC);
        page.buf[OFF_TYPE] = ptype as u8;
        page.set_slot_count(0);
        page.set_free_start(HEADER_LEN as u16);
        page.set_ci_len(0);
        page.set_next_page(NO_PAGE);
        page.seal();
        page
    }

    /// Wrap a raw buffer read from disk, verifying the checksum, magic
    /// number and page type. Any content-level failure — including a stale
    /// checksum from a torn write — is reported as [`DbError::Corruption`].
    pub fn from_bytes(buf: Box<[u8]>) -> Result<Page> {
        Page::verify_buf(&buf)?;
        let page = Page { buf };
        if page.read_u32(OFF_MAGIC) != MAGIC {
            return Err(DbError::Corruption("bad page magic".into()));
        }
        PageType::from_u8(page.buf[OFF_TYPE])
            .ok_or_else(|| DbError::Corruption("unknown page type".into()))?;
        Ok(page)
    }

    /// CRC-32C of a page image with the checksum field treated as zero.
    fn checksum_of(buf: &[u8]) -> u32 {
        let crc = crc32c(&buf[..OFF_CHECKSUM]);
        let crc = crc32c_append(crc, &[0u8; 4]);
        crc32c_append(crc, &buf[OFF_CHECKSUM + 4..])
    }

    /// Recompute and store this page's checksum. Mutating accessors do NOT
    /// maintain the checksum; it is sealed once, when the image is about to
    /// leave memory (writeback, WAL append).
    pub fn seal(&mut self) {
        let crc = Page::checksum_of(&self.buf);
        self.write_u32(OFF_CHECKSUM, crc);
    }

    /// Seal a raw page image in place (used on copied buffers so writeback
    /// does not need a write lock on the source page).
    pub fn seal_buf(buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let crc = Page::checksum_of(buf);
        buf[OFF_CHECKSUM..OFF_CHECKSUM + 4].copy_from_slice(&crc.to_le_bytes());
    }

    /// Verify the checksum of a raw page image.
    pub fn verify_buf(buf: &[u8]) -> Result<()> {
        if buf.len() != PAGE_SIZE {
            return Err(DbError::Storage(format!(
                "page buffer has {} bytes, expected {PAGE_SIZE}",
                buf.len()
            )));
        }
        let stored = u32::from_le_bytes(buf[OFF_CHECKSUM..OFF_CHECKSUM + 4].try_into().unwrap());
        let computed = Page::checksum_of(buf);
        if stored != computed {
            return Err(DbError::Corruption(format!(
                "page checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        Ok(())
    }

    /// A sealed on-disk image of this page (checksum freshly computed).
    pub fn to_bytes(&self) -> Box<[u8]> {
        let mut buf = self.buf.clone();
        Page::seal_buf(&mut buf);
        buf
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    pub fn page_type(&self) -> PageType {
        PageType::from_u8(self.buf[OFF_TYPE]).expect("validated at construction")
    }

    pub fn flags(&self) -> u8 {
        self.buf[OFF_FLAGS]
    }

    pub fn set_flag(&mut self, flag: u8) {
        self.buf[OFF_FLAGS] |= flag;
    }

    pub fn has_flag(&self, flag: u8) -> bool {
        self.buf[OFF_FLAGS] & flag != 0
    }

    pub fn next_page(&self) -> PageId {
        self.read_u64(OFF_NEXT)
    }

    pub fn set_next_page(&mut self, id: PageId) {
        self.write_u64(OFF_NEXT, id);
    }

    pub fn aux(&self) -> u32 {
        self.read_u32(OFF_AUX)
    }

    pub fn set_aux(&mut self, v: u32) {
        self.write_u32(OFF_AUX, v);
    }

    pub fn slot_count(&self) -> usize {
        self.read_u16(OFF_SLOTS) as usize
    }

    fn set_slot_count(&mut self, n: u16) {
        self.write_u16(OFF_SLOTS, n);
    }

    fn free_start(&self) -> usize {
        self.read_u16(OFF_FREE_START) as usize
    }

    fn set_free_start(&mut self, v: u16) {
        self.write_u16(OFF_FREE_START, v);
    }

    fn ci_len(&self) -> usize {
        self.read_u16(OFF_CI_LEN) as usize
    }

    fn set_ci_len(&mut self, v: u16) {
        self.write_u16(OFF_CI_LEN, v);
    }

    /// The serialized compression-context area (empty slice if none).
    pub fn ci_area(&self) -> &[u8] {
        &self.buf[HEADER_LEN..HEADER_LEN + self.ci_len()]
    }

    /// Bytes available for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let slots_end = PAGE_SIZE - self.slot_count() * SLOT_LEN;
        slots_end
            .saturating_sub(self.free_start())
            .saturating_sub(SLOT_LEN)
    }

    /// Insert a record, returning its slot number, or `None` if the page
    /// cannot hold it. Empty records are rejected (`len == 0` marks a
    /// deleted slot; engine rows are never empty — they always carry at
    /// least a null bitmap byte).
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if record.is_empty() || record.len() > u16::MAX as usize || record.len() > self.free_space()
        {
            return None;
        }
        let off = self.free_start();
        self.buf[off..off + record.len()].copy_from_slice(record);
        let slot = self.slot_count() as u16;
        self.write_slot(slot, off as u16, record.len() as u16);
        self.set_slot_count(slot + 1);
        self.set_free_start((off + record.len()) as u16);
        Some(slot)
    }

    /// Record bytes in `slot`, or `None` if out of range or deleted.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if (slot as usize) >= self.slot_count() {
            return None;
        }
        let (off, len) = self.read_slot(slot);
        if len == 0 {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Mark `slot` deleted. Space is reclaimed by [`Page::rebuild`].
    pub fn delete(&mut self, slot: u16) -> bool {
        if (slot as usize) >= self.slot_count() {
            return false;
        }
        let (off, len) = self.read_slot(slot);
        if len == 0 {
            return false;
        }
        self.write_slot(slot, off, 0);
        true
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count() as u16).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Number of live (non-deleted) records.
    pub fn live_count(&self) -> usize {
        self.iter().count()
    }

    /// Rewrite the page with a new CI area and record set, preserving type,
    /// flags and sibling pointer. Returns `false` (leaving `self` intact)
    /// if the records do not fit.
    pub fn rebuild(&mut self, ci: &[u8], records: &[Vec<u8>]) -> bool {
        let mut fresh = Page::new(self.page_type());
        fresh.buf[OFF_FLAGS] = self.buf[OFF_FLAGS];
        fresh.set_next_page(self.next_page());
        fresh.set_aux(self.aux());
        if HEADER_LEN + ci.len() > PAGE_SIZE / 2 || ci.len() > u16::MAX as usize {
            return false;
        }
        fresh.buf[HEADER_LEN..HEADER_LEN + ci.len()].copy_from_slice(ci);
        fresh.set_ci_len(ci.len() as u16);
        fresh.set_free_start((HEADER_LEN + ci.len()) as u16);
        for r in records {
            if fresh.insert(r).is_none() {
                return false;
            }
        }
        *self = fresh;
        true
    }

    /// Fraction of the page occupied by record data (diagnostics).
    pub fn fill_factor(&self) -> f64 {
        let used = self.free_start() - HEADER_LEN + self.slot_count() * SLOT_LEN;
        used as f64 / (PAGE_SIZE - HEADER_LEN) as f64
    }

    fn read_slot(&self, slot: u16) -> (u16, u16) {
        let base = PAGE_SIZE - (slot as usize + 1) * SLOT_LEN;
        (
            u16::from_le_bytes([self.buf[base], self.buf[base + 1]]),
            u16::from_le_bytes([self.buf[base + 2], self.buf[base + 3]]),
        )
    }

    fn write_slot(&mut self, slot: u16, off: u16, len: u16) {
        let base = PAGE_SIZE - (slot as usize + 1) * SLOT_LEN;
        self.buf[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.buf[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.buf[off..off + 2].try_into().unwrap())
    }
    fn write_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
    fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap())
    }
    fn write_u32(&mut self, off: usize, v: u32) {
        self.buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }
    fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.buf[off..off + 8].try_into().unwrap())
    }
    fn write_u64(&mut self, off: usize, v: u64) {
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("type", &self.page_type())
            .field("slots", &self.slot_count())
            .field("live", &self.live_count())
            .field("free", &self.free_space())
            .field("ci_len", &self.ci_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_delete() {
        let mut p = Page::new(PageType::Heap);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
        assert!(p.delete(a));
        assert_eq!(p.get(a), None);
        assert_eq!(p.live_count(), 1);
        assert!(!p.delete(a), "double delete is a no-op");
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new(PageType::Heap);
        let rec = vec![7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8192 - 32 header over 104 bytes/record ≈ 78 records
        assert!((70..=80).contains(&n), "fit {n} records");
        assert!(p.free_space() < 104);
    }

    #[test]
    fn rebuild_with_ci_preserves_links_and_records() {
        let mut p = Page::new(PageType::Heap);
        p.set_next_page(42);
        p.insert(b"aaa").unwrap();
        p.insert(b"bbb").unwrap();
        let records: Vec<Vec<u8>> = p.iter().map(|(_, r)| r.to_vec()).collect();
        assert!(p.rebuild(b"CTX", &records));
        assert_eq!(p.ci_area(), b"CTX");
        assert_eq!(p.next_page(), 42);
        assert_eq!(p.get(0), Some(&b"aaa"[..]));
        assert_eq!(p.get(1), Some(&b"bbb"[..]));
    }

    #[test]
    fn from_bytes_validates_magic() {
        let raw = vec![0u8; PAGE_SIZE].into_boxed_slice();
        assert!(Page::from_bytes(raw).is_err());
        let p = Page::new(PageType::BTreeLeaf);
        let back = Page::from_bytes(p.buf.clone()).unwrap();
        assert_eq!(back.page_type(), PageType::BTreeLeaf);
    }

    #[test]
    fn to_bytes_seals_and_roundtrips_after_mutation() {
        let mut p = Page::new(PageType::Heap);
        p.insert(b"mutated after construction").unwrap();
        p.set_next_page(9);
        // The in-memory checksum is stale now; to_bytes must reseal.
        let image = p.to_bytes();
        let back = Page::from_bytes(image).unwrap();
        assert_eq!(back.get(0), Some(&b"mutated after construction"[..]));
        assert_eq!(back.next_page(), 9);
    }

    #[test]
    fn corrupted_image_is_rejected_as_corruption() {
        let mut p = Page::new(PageType::Heap);
        p.insert(b"payload").unwrap();
        let good = p.to_bytes();
        assert!(Page::verify_buf(&good).is_ok());
        // Flip one bit in the record area.
        let mut bad = good.clone();
        bad[100] ^= 0x01;
        assert!(matches!(Page::from_bytes(bad), Err(DbError::Corruption(_))));
        // A torn write that zeroes the tail is also caught.
        let mut torn = good.clone();
        for b in &mut torn[PAGE_SIZE / 2..] {
            *b = 0;
        }
        assert!(matches!(
            Page::verify_buf(&torn),
            Err(DbError::Corruption(_))
        ));
    }

    #[test]
    fn seal_buf_matches_seal() {
        let mut p = Page::new(PageType::BTreeInternal);
        p.insert(b"key").unwrap();
        let mut via_buf = p.bytes().to_vec();
        Page::seal_buf(&mut via_buf);
        p.seal();
        assert_eq!(p.bytes(), &via_buf[..]);
    }

    proptest! {
        #[test]
        fn records_roundtrip(recs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..200), 1..40)) {
            let mut p = Page::new(PageType::Heap);
            let mut stored = Vec::new();
            for r in &recs {
                if let Some(slot) = p.insert(r) {
                    stored.push((slot, r.clone()));
                }
            }
            for (slot, r) in &stored {
                prop_assert_eq!(p.get(*slot), Some(r.as_slice()));
            }
            prop_assert_eq!(p.live_count(), stored.len());
        }
    }
}

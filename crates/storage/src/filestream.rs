//! FileStream BLOB storage (paper §2.3.6).
//!
//! SQL Server 2008 FileStream stores `VARBINARY(MAX)` payloads as files in
//! an NTFS directory managed by the database: rows carry a GUID, payloads
//! live on the filesystem, and clients get two access paths — relational
//! (`GetBytes` streaming through the engine, bypassing the buffer pool)
//! and direct file-handle access through Win32 APIs for external tools.
//!
//! [`FileStreamStore`] reproduces that contract:
//!
//! * [`FileStreamStore::insert`] / [`FileStreamStore::insert_from_file`] —
//!   the `OPENROWSET(BULK ..., SINGLE_BLOB)` import path;
//! * [`FileStreamReader::get_bytes`] — positional reads with an optional
//!   *sequential-access* read-ahead buffer, exactly the API shape the
//!   paper's chunked TVF wrapper is written against (§4.1);
//! * [`FileStreamStore::open_for_external_tool`] — hands out a real `File`
//!   so "existing bioinformatics tools can be used almost unchanged";
//! * [`FileStreamStore::path_name`] — the T-SQL `column.PathName()`.
//!
//! There is deliberately **no storage transformation**: a FileStream BLOB
//! occupies exactly its original size on disk, which is what makes the
//! FileStream columns of Tables 1 and 2 show zero overhead.
//!
//! Inserts are crash-safe: payloads are written to a `.tmp` file, synced,
//! and atomically renamed to their final `.blob` name (followed by a
//! directory sync), so a blob either exists completely or not at all.
//! [`FileStreamStore::open`] removes `.tmp` orphans left by a crash and
//! resumes the GUID sequence past the existing blobs.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use seqdb_types::{DbError, Result, Value};

use crate::counters::{storage_counters, waits, WaitClass};
use crate::fault::FaultClock;
use crate::scrub::Quarantine;
use crate::sha256::{self, Sha256};

/// Default read-ahead chunk for sequential access (64 KiB, matching the
/// paper's observation that chunked reads beat per-line reads).
pub const SEQUENTIAL_BUFFER: usize = 64 * 1024;

/// How many times a failed BLOB read is retried before giving up.
pub const READ_RETRIES: u32 = 3;

/// How many times a failed BLOB write is retried before giving up. The
/// import path (`insert` / `insert_from_file`) rebuilds the temp file
/// from scratch on each attempt, so a retry never resumes a torn write.
pub const WRITE_RETRIES: u32 = 3;

/// Backoff before the first retry; doubles per attempt (1ms, 2ms, 4ms).
const RETRY_BASE: Duration = Duration::from_millis(1);

/// A database-managed directory of BLOB files, addressed by GUID.
pub struct FileStreamStore {
    root: PathBuf,
    guid_seq: AtomicU64,
    /// Optional fault clock shared with the pager/WAL wrappers so tests
    /// can drive transient read errors through one seeded schedule.
    fault: Mutex<Option<Arc<FaultClock>>>,
    /// Total transient-error retries burned by `write_atomic` across the
    /// store's lifetime (observability for import-under-fault tests).
    write_retries: AtomicU64,
    /// Optional quarantine list shared with the scrubber. When set,
    /// `path_name` (and everything built on it: reads, `DATALENGTH`,
    /// external-tool opens) refuses quarantined blobs with the typed
    /// [`DbError::Quarantined`].
    quarantine: Mutex<Option<Arc<Quarantine>>>,
}

/// Outcome of re-hashing one blob against its recorded import hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlobCheck {
    /// Hash matches the sidecar: the blob is byte-identical to its import.
    Ok,
    /// No sidecar exists (blob created by an external tool, or the sidecar
    /// was invalidated by an external-tool open). Nothing to verify
    /// against — reported, not treated as corruption.
    Unhashed,
    /// Hash differs from the sidecar: the blob decayed at rest.
    Mismatch,
}

impl FileStreamStore {
    /// Create (or reopen) a store rooted at `dir`. Reopening removes any
    /// `.tmp` files orphaned by a crash mid-insert and resumes the GUID
    /// sequence past the blobs already present so it cannot restart from 1
    /// and collide with them.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileStreamStore> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        let mut blobs = 0u64;
        let mut blob_stems = std::collections::HashSet::new();
        let mut sidecars = Vec::new();
        for entry in fs::read_dir(&root)? {
            let path = entry?.path();
            match path.extension().and_then(|e| e.to_str()) {
                // An orphaned temp file is an insert that never completed;
                // its GUID was never returned to anyone, so drop it.
                Some("tmp") if fs::remove_file(&path).is_ok() => {
                    storage_counters()
                        .startup_orphans_removed
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some("blob") => {
                    blobs += 1;
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        blob_stems.insert(stem.to_string());
                    }
                }
                Some("sha256") => sidecars.push(path),
                _ => {}
            }
        }
        // A hash sidecar whose blob never made it (crash between sidecar
        // write and rename) certifies nothing; sweep it too.
        for sc in sidecars {
            let stem = sc.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if !blob_stems.contains(stem) && fs::remove_file(&sc).is_ok() {
                storage_counters()
                    .startup_orphans_removed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(FileStreamStore {
            root,
            guid_seq: AtomicU64::new(blobs + 1),
            fault: Mutex::new(None),
            write_retries: AtomicU64::new(0),
            quarantine: Mutex::new(None),
        })
    }

    /// Directory managed by this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Attach (or detach, with `None`) a fault clock. Readers opened after
    /// this call consult the clock on every physical read, exercising the
    /// transient-error retry path.
    pub fn set_fault_clock(&self, clock: Option<Arc<FaultClock>>) {
        *self.fault.lock() = clock;
    }

    /// Total transient-error retries `write_atomic` has performed.
    pub fn write_retries(&self) -> u64 {
        self.write_retries.load(Ordering::Relaxed)
    }

    /// Generate a fresh GUID (`NEWID()`): time-seeded, process-unique,
    /// and guaranteed not to collide with any blob already on disk.
    pub fn new_guid(&self) -> u128 {
        loop {
            let seq = self.guid_seq.fetch_add(1, Ordering::Relaxed) as u128;
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            // Version-4-style layout: high bits from the clock, low from seq.
            let guid = (now << 32) ^ (seq << 1) ^ 0x4000_0000_0000_0000_0000_0000_0000_0001;
            // A clobbered blob is silent data loss; re-roll on collision.
            if !self.path(guid).exists() {
                return guid;
            }
        }
    }

    /// Attach (or detach) the scrubber's quarantine list. With a list
    /// attached, every access that resolves a blob path first checks it.
    pub fn set_quarantine(&self, quarantine: Option<Arc<Quarantine>>) {
        *self.quarantine.lock() = quarantine;
    }

    /// The quarantine key for a blob: `filestream:<guid-string>`.
    pub fn object_key(guid: u128) -> String {
        format!("filestream:{}", Value::guid_string(guid))
    }

    fn path(&self, guid: u128) -> PathBuf {
        self.root.join(format!("{}.blob", Value::guid_string(guid)))
    }

    fn sidecar(&self, guid: u128) -> PathBuf {
        self.root
            .join(format!("{}.sha256", Value::guid_string(guid)))
    }

    /// Store a BLOB from memory; returns its GUID.
    pub fn insert(&self, data: &[u8]) -> Result<u128> {
        let guid = self.new_guid();
        self.write_atomic(guid, |f| {
            f.write_all(data)?;
            Ok(())
        })?;
        Ok(guid)
    }

    /// Bulk-import an existing file (the `OPENROWSET(BULK …, SINGLE_BLOB)`
    /// path): streams it into the store without loading it into memory.
    pub fn insert_from_file(&self, source: &Path) -> Result<u128> {
        let guid = self.new_guid();
        let mut src = File::open(source)?;
        self.write_atomic(guid, |f| {
            // A retry restarts the copy on a fresh temp file; rewind the
            // source so the blob is complete, not a tail.
            src.seek(SeekFrom::Start(0))?;
            std::io::copy(&mut src, f)?;
            Ok(())
        })?;
        Ok(guid)
    }

    /// Crash-safe blob creation: fill a `.tmp` file, sync it, atomically
    /// rename it to its final name and sync the directory. A crash at any
    /// point leaves either no blob or the complete blob, never a torn one.
    ///
    /// Like the read path, each attempt consults the attached fault clock
    /// and transient I/O errors are retried up to [`WRITE_RETRIES`] times
    /// with bounded exponential backoff. Every retry discards the temp
    /// file and refills it from scratch, so the atomicity argument above
    /// holds per attempt.
    fn write_atomic(
        &self,
        guid: u128,
        mut fill: impl FnMut(&mut File) -> Result<()>,
    ) -> Result<()> {
        let tmp = self.root.join(format!("{}.tmp", Value::guid_string(guid)));
        let path = self.path(guid);
        let fault = self.fault.lock().clone();
        let mut attempt = 0u32;
        loop {
            match self.try_write_atomic(&tmp, &path, &fault, &mut fill) {
                Ok(()) => return Ok(()),
                Err(DbError::Io(msg)) => {
                    let _ = fs::remove_file(&tmp);
                    if attempt >= WRITE_RETRIES {
                        return Err(DbError::Io(format!(
                            "filestream write failed after {attempt} retries: {msg}"
                        )));
                    }
                    let backoff = Instant::now();
                    std::thread::sleep(RETRY_BASE * (1 << attempt));
                    waits().record(WaitClass::FileStreamRetry, backoff.elapsed());
                    attempt += 1;
                    self.write_retries.fetch_add(1, Ordering::Relaxed);
                    storage_counters()
                        .filestream_write_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    let _ = fs::remove_file(&tmp);
                    return Err(e);
                }
            }
        }
    }

    /// One attempt of [`Self::write_atomic`]. The fault clock is consulted
    /// twice — at write submission and at the durability point — so a
    /// seeded schedule can fail an attempt either before any bytes land or
    /// after the temp file is full, exercising the refill-from-scratch
    /// retry path.
    fn try_write_atomic(
        &self,
        tmp: &Path,
        path: &Path,
        fault: &Option<Arc<FaultClock>>,
        fill: &mut impl FnMut(&mut File) -> Result<()>,
    ) -> Result<()> {
        if let Some(clock) = fault {
            clock.inject_write()?;
        }
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(tmp)
            .map_err(DbError::io_write)?;
        let written = fill(&mut f).and_then(|()| {
            if let Some(clock) = fault {
                clock.inject_write()?;
            }
            f.sync_data()?;
            Ok(())
        });
        drop(f);
        written?;
        // Record the content hash before the blob becomes visible, so a
        // complete blob always carries its import-time digest. (A crash
        // here leaves an orphan sidecar, swept on reopen.)
        let digest = hash_file(tmp)?;
        let stem = tmp.file_stem().and_then(|s| s.to_str()).unwrap_or("blob");
        fs::write(
            self.root.join(format!("{stem}.sha256")),
            sha256::to_hex(&digest),
        )
        .map_err(DbError::io_write)?;
        fs::rename(tmp, path)?;
        sync_dir(&self.root)?;
        storage_counters()
            .filestream_bytes_written
            .fetch_add(fs::metadata(path)?.len(), Ordering::Relaxed);
        Ok(())
    }

    /// `column.PathName()`: the filesystem path of a BLOB. Quarantined
    /// blobs are refused here — the chokepoint every read path goes
    /// through — so a statement touching a known-corrupt blob fails typed
    /// instead of serving rotted bytes.
    pub fn path_name(&self, guid: u128) -> Result<PathBuf> {
        if let Some(q) = self.quarantine.lock().as_ref() {
            q.check(&Self::object_key(guid))?;
        }
        let p = self.path(guid);
        if p.exists() {
            Ok(p)
        } else {
            Err(DbError::NotFound(format!(
                "filestream blob {}",
                Value::guid_string(guid)
            )))
        }
    }

    /// `DATALENGTH(column)`: BLOB size in bytes.
    pub fn len(&self, guid: u128) -> Result<u64> {
        Ok(fs::metadata(self.path_name(guid)?)?.len())
    }

    /// Open a streaming reader. `sequential` enables read-ahead buffering
    /// (the `CommandBehavior.SequentialAccess` flag of §4.1).
    pub fn open_reader(&self, guid: u128, sequential: bool) -> Result<FileStreamReader> {
        let path = self.path_name(guid)?;
        let file = File::open(&path)?;
        let len = file.metadata()?.len();
        Ok(FileStreamReader {
            file,
            len,
            buffer: if sequential {
                Some(ReadAhead {
                    buf: vec![0u8; SEQUENTIAL_BUFFER],
                    start: 0,
                    filled: 0,
                })
            } else {
                None
            },
            fault: self.fault.lock().clone(),
            retries: 0,
        })
    }

    /// Direct file-handle access for external tools (the Win32
    /// `WriteFile()`/`ReadFile()` path). Opens read-write so a tool can
    /// also produce its output into DBMS-managed storage. The import-time
    /// hash sidecar is invalidated: an external tool may legitimately
    /// rewrite the blob, after which the old digest certifies nothing.
    pub fn open_for_external_tool(&self, guid: u128) -> Result<File> {
        let path = self.path_name(guid)?;
        let _ = fs::remove_file(self.sidecar(guid));
        Ok(OpenOptions::new().read(true).write(true).open(path)?)
    }

    /// Create an *empty* BLOB and return `(guid, file)` so an external
    /// tool can write its output under database control.
    pub fn create_for_external_tool(&self) -> Result<(u128, File)> {
        let guid = self.new_guid();
        let path = self.path(guid);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        Ok((guid, file))
    }

    /// Delete a BLOB. Goes straight to the path (not through the
    /// quarantine check): deleting a quarantined blob is how an operator
    /// clears it for re-import, so the delete clears the quarantine entry.
    pub fn delete(&self, guid: u128) -> Result<()> {
        let p = self.path(guid);
        if !p.exists() {
            return Err(DbError::NotFound(format!(
                "filestream blob {}",
                Value::guid_string(guid)
            )));
        }
        fs::remove_file(p)?;
        let _ = fs::remove_file(self.sidecar(guid));
        if let Some(q) = self.quarantine.lock().as_ref() {
            q.clear_object(&Self::object_key(guid));
        }
        Ok(())
    }

    /// GUID strings of every blob in the store, by directory listing (the
    /// scrubber's enumeration — file names are authoritative, no catalog
    /// needed).
    pub fn blob_names(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "blob") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    out.push(stem.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Re-hash the named blob (a stem from [`Self::blob_names`]) against
    /// its import-time sidecar. Reads the file directly — quarantined
    /// blobs must stay verifiable, or a repaired/re-imported blob could
    /// never clear its entry.
    pub fn verify_blob(&self, name: &str) -> Result<BlobCheck> {
        let blob = self.root.join(format!("{name}.blob"));
        let sidecar = self.root.join(format!("{name}.sha256"));
        let start = Instant::now();
        let result = (|| {
            let expected = match fs::read_to_string(&sidecar) {
                Ok(hex) => hex.trim().to_string(),
                Err(_) => return Ok(BlobCheck::Unhashed),
            };
            let digest = hash_file(&blob)?;
            if sha256::to_hex(&digest) == expected {
                Ok(BlobCheck::Ok)
            } else {
                Ok(BlobCheck::Mismatch)
            }
        })();
        waits().record(WaitClass::ScrubIo, start.elapsed());
        storage_counters()
            .scrub_blobs_checked
            .fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Total bytes of all BLOBs in the store (for the storage-efficiency
    /// tables).
    pub fn total_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "blob") {
                total += entry.metadata()?.len();
            }
        }
        Ok(total)
    }
}

struct ReadAhead {
    buf: Vec<u8>,
    /// File offset of `buf[0]`.
    start: u64,
    /// Valid bytes in `buf`.
    filled: usize,
}

/// Streaming reader over one BLOB, with the `GetBytes` positional API of
/// ADO.NET that the paper's TVF wrapper uses.
///
/// BLOB reads go to plain files outside the buffer pool, so a transient
/// I/O error (NFS hiccup, overloaded disk) would otherwise kill a
/// long-running import or `CROSS APPLY` scan near its end. Each physical
/// read is therefore retried up to [`READ_RETRIES`] times with bounded
/// exponential backoff; only a persistently failing device surfaces as an
/// error, and that error reports how many retries were burned.
pub struct FileStreamReader {
    file: File,
    len: u64,
    buffer: Option<ReadAhead>,
    fault: Option<Arc<FaultClock>>,
    retries: u64,
}

impl FileStreamReader {
    /// Total BLOB length.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total transient-error retries this reader has performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// One physical read attempt at `offset` (fault-checked).
    fn try_read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        if let Some(clock) = &self.fault {
            clock.inject_op()?;
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let n = read_fully(&mut self.file, buf)?;
        storage_counters()
            .filestream_bytes_read
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Positional read with bounded-backoff retry on transient I/O errors.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let mut attempt = 0u32;
        loop {
            match self.try_read_at(offset, buf) {
                Ok(n) => return Ok(n),
                Err(DbError::Io(msg)) => {
                    if attempt >= READ_RETRIES {
                        return Err(DbError::Io(format!(
                            "filestream read failed after {attempt} retries: {msg}"
                        )));
                    }
                    let backoff = Instant::now();
                    std::thread::sleep(RETRY_BASE * (1 << attempt));
                    waits().record(WaitClass::FileStreamRetry, backoff.elapsed());
                    attempt += 1;
                    self.retries += 1;
                    storage_counters()
                        .filestream_read_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read up to `out.len()` bytes starting at `offset`; returns the
    /// number of bytes read (0 at EOF). With sequential access enabled,
    /// forward reads are served from a read-ahead buffer.
    pub fn get_bytes(&mut self, offset: u64, out: &mut [u8]) -> Result<usize> {
        if offset >= self.len || out.is_empty() {
            return Ok(0);
        }
        if let Some(mut ra) = self.buffer.take() {
            // Serve from the read-ahead window where possible. (The window
            // is moved out so `read_at` can borrow `self` for refills.)
            let mut produced = 0usize;
            let mut offset = offset;
            let mut result = Ok(());
            while produced < out.len() && offset < self.len {
                let in_window = offset >= ra.start && offset < ra.start + ra.filled as u64;
                if !in_window {
                    // Refill the window starting at `offset`.
                    let n = match self.read_at(offset, &mut ra.buf) {
                        Ok(n) => n,
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    };
                    ra.start = offset;
                    ra.filled = n;
                    if n == 0 {
                        break;
                    }
                }
                let window_off = (offset - ra.start) as usize;
                let avail = ra.filled - window_off;
                let want = (out.len() - produced).min(avail);
                out[produced..produced + want]
                    .copy_from_slice(&ra.buf[window_off..window_off + want]);
                produced += want;
                offset += want as u64;
            }
            self.buffer = Some(ra);
            result?;
            Ok(produced)
        } else {
            self.read_at(offset, out)
        }
    }

    /// Read the entire BLOB (convenience for small blobs and tests).
    pub fn read_all(&mut self) -> Result<Vec<u8>> {
        let mut out = vec![0u8; self.len as usize];
        let mut pos = 0usize;
        while (pos as u64) < self.len {
            let n = self.read_at(pos as u64, &mut out[pos..])?;
            if n == 0 {
                break;
            }
            pos += n;
        }
        out.truncate(pos);
        Ok(out)
    }
}

/// SHA-256 of a file's contents, streamed in 64 KiB chunks.
fn hash_file(path: &Path) -> Result<[u8; 32]> {
    let mut f = File::open(path)?;
    let mut hasher = Sha256::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(hasher.finalize())
}

/// Sync a directory so a just-completed rename inside it is durable.
fn sync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

fn read_fully(file: &mut File, buf: &mut [u8]) -> Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        let r = file.read(&mut buf[n..])?;
        if r == 0 {
            break;
        }
        n += r;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(name: &str) -> FileStreamStore {
        let dir = std::env::temp_dir().join(format!("seqdb-fs-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        FileStreamStore::open(dir).unwrap()
    }

    #[test]
    fn insert_and_read_back() {
        let s = store("basic");
        let guid = s.insert(b"@read1\nACGT\n+\nIIII\n").unwrap();
        assert_eq!(s.len(guid).unwrap(), 19);
        let mut r = s.open_reader(guid, false).unwrap();
        assert_eq!(r.read_all().unwrap(), b"@read1\nACGT\n+\nIIII\n");
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn get_bytes_positional_and_sequential_agree() {
        let s = store("chunks");
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let guid = s.insert(&data).unwrap();
        for sequential in [false, true] {
            let mut r = s.open_reader(guid, sequential).unwrap();
            let mut buf = vec![0u8; 7001];
            let mut pos = 0u64;
            let mut assembled = Vec::new();
            loop {
                let n = r.get_bytes(pos, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                assembled.extend_from_slice(&buf[..n]);
                pos += n as u64;
            }
            assert_eq!(assembled, data, "sequential={sequential}");
        }
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn random_access_within_sequential_mode_still_correct() {
        let s = store("random");
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 13) as u8).collect();
        let guid = s.insert(&data).unwrap();
        let mut r = s.open_reader(guid, true).unwrap();
        let mut buf = [0u8; 64];
        // Jump backwards: the window must refill, not return stale bytes.
        let n = r.get_bytes(90_000, &mut buf).unwrap();
        assert_eq!(&buf[..n], &data[90_000..90_000 + n]);
        let n = r.get_bytes(5, &mut buf).unwrap();
        assert_eq!(&buf[..n], &data[5..5 + n]);
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn path_name_and_external_tool_handle() {
        let s = store("external");
        let guid = s.insert(b"hello").unwrap();
        let p = s.path_name(guid).unwrap();
        assert!(p.exists());
        // An external tool appends through its own handle...
        let mut f = s.open_for_external_tool(guid).unwrap();
        f.seek(SeekFrom::End(0)).unwrap();
        f.write_all(b" world").unwrap();
        drop(f);
        // ...and the database sees the update.
        assert_eq!(s.len(guid).unwrap(), 11);
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn create_for_external_tool_registers_blob() {
        let s = store("create-ext");
        let (guid, mut f) = s.create_for_external_tool().unwrap();
        f.write_all(b"alignment output").unwrap();
        drop(f);
        assert_eq!(s.len(guid).unwrap(), 16);
        assert!(s.total_bytes().unwrap() >= 16);
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn delete_then_not_found() {
        let s = store("delete");
        let guid = s.insert(b"x").unwrap();
        s.delete(guid).unwrap();
        assert!(matches!(s.len(guid), Err(DbError::NotFound(_))));
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn reopen_resumes_guid_sequence_and_keeps_blobs() {
        let s = store("reopen");
        let root = s.root().to_path_buf();
        let mut guids = Vec::new();
        for i in 0..8u8 {
            guids.push(s.insert(&[i; 32]).unwrap());
        }
        drop(s);
        // A second process opens the same directory. Its fresh GUIDs must
        // not clobber any existing blob.
        let s = FileStreamStore::open(&root).unwrap();
        let mut new_guids = Vec::new();
        for i in 8..16u8 {
            new_guids.push(s.insert(&[i; 32]).unwrap());
        }
        for (i, g) in guids.iter().enumerate() {
            assert!(!new_guids.contains(g), "guid reused after reopen");
            let mut r = s.open_reader(*g, false).unwrap();
            assert_eq!(r.read_all().unwrap(), vec![i as u8; 32]);
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_removes_orphaned_temp_files() {
        let s = store("orphans");
        let root = s.root().to_path_buf();
        let keep = s.insert(b"committed blob").unwrap();
        // Simulate a crash mid-insert: a .tmp file with no final rename.
        fs::write(root.join("deadbeef.tmp"), b"half-written").unwrap();
        drop(s);
        let s = FileStreamStore::open(&root).unwrap();
        assert!(!root.join("deadbeef.tmp").exists(), "orphan not cleaned");
        assert_eq!(s.len(keep).unwrap(), 14, "real blob untouched");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn insert_leaves_no_temp_files_behind() {
        let s = store("no-temps");
        for i in 0..4u8 {
            s.insert(&[i; 100]).unwrap();
        }
        let temps = fs::read_dir(s.root())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .count();
        assert_eq!(temps, 0);
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn transient_read_errors_are_retried_to_success() {
        use crate::fault::{FaultClock, FaultPlan};
        let s = store("retry-ok");
        let data: Vec<u8> = (0..150_000u32).map(|i| (i % 197) as u8).collect();
        let guid = s.insert(&data).unwrap();
        // Every 4th operation fails: each failure is followed by at least
        // three good attempts, so retries always recover.
        s.set_fault_clock(Some(FaultClock::new(FaultPlan {
            io_error_every: Some(4),
            ..FaultPlan::none()
        })));
        for sequential in [false, true] {
            let mut r = s.open_reader(guid, sequential).unwrap();
            let mut buf = vec![0u8; 7000];
            let mut assembled = Vec::new();
            loop {
                let n = r.get_bytes(assembled.len() as u64, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                assembled.extend_from_slice(&buf[..n]);
            }
            assert_eq!(assembled, data, "sequential={sequential}");
            assert!(
                r.retries() > 0,
                "the schedule must have fired (sequential={sequential})"
            );
        }
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn persistent_read_errors_report_retry_count() {
        use crate::fault::{FaultClock, FaultPlan};
        let s = store("retry-dead");
        let guid = s.insert(b"unreachable payload").unwrap();
        // Every operation fails: the device is effectively dead.
        s.set_fault_clock(Some(FaultClock::new(FaultPlan {
            io_error_every: Some(1),
            ..FaultPlan::none()
        })));
        let mut r = s.open_reader(guid, false).unwrap();
        let err = r.read_all().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("after {READ_RETRIES} retries")),
            "error must carry the retry count: {msg}"
        );
        // Detaching the clock restores normal service on new readers.
        s.set_fault_clock(None);
        let mut r = s.open_reader(guid, false).unwrap();
        assert_eq!(r.read_all().unwrap(), b"unreachable payload");
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn transient_write_errors_are_retried_to_success() {
        use crate::fault::{FaultClock, FaultPlan};
        let s = store("write-retry-ok");
        // Every 4th operation fails. Each write attempt burns two ops
        // (submission + durability), so the schedule hits both the
        // before-any-bytes and the after-fill failure points across the
        // inserts below, and every failure recovers within the retry
        // budget.
        s.set_fault_clock(Some(FaultClock::new(FaultPlan {
            io_error_every: Some(4),
            ..FaultPlan::none()
        })));
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 211) as u8).collect();
        let mut guids = Vec::new();
        for _ in 0..6 {
            guids.push(s.insert(&data).unwrap());
        }
        assert!(s.write_retries() > 0, "the schedule must have fired");
        s.set_fault_clock(None);
        for g in guids {
            let mut r = s.open_reader(g, false).unwrap();
            assert_eq!(r.read_all().unwrap(), data, "blob complete after retries");
        }
        let temps = fs::read_dir(s.root())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .count();
        assert_eq!(temps, 0, "no temp files survive a retried insert");
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn import_from_file_rewinds_the_source_on_retry() {
        use crate::fault::{FaultClock, FaultPlan};
        let s = store("write-retry-rewind");
        let src = s.root().join("source.fastq");
        let payload: Vec<u8> = (0..120_000u32).map(|i| (i % 251) as u8).collect();
        fs::write(&src, &payload).unwrap();
        // Failures landing on the durability op leave a fully-copied temp
        // file behind; the retry must rewind the source or the re-copy
        // produces an empty blob. Each attempt burns two ops, so with a
        // warm-up insert (ops 1-2) the import's first attempt fails on
        // its durability op (op 4) — after the copy — and its retry
        // (ops 5-6) succeeds.
        s.set_fault_clock(Some(FaultClock::new(FaultPlan {
            io_error_every: Some(4),
            ..FaultPlan::none()
        })));
        s.insert(b"warm-up").unwrap();
        let guid = s.insert_from_file(&src).unwrap();
        assert!(s.write_retries() > 0, "the schedule must have fired");
        s.set_fault_clock(None);
        let mut r = s.open_reader(guid, true).unwrap();
        assert_eq!(r.read_all().unwrap(), payload, "import not torn by retries");
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn persistent_write_errors_fail_cleanly() {
        use crate::fault::{FaultClock, FaultPlan};
        let s = store("write-retry-dead");
        // Every operation fails: the device is effectively dead.
        s.set_fault_clock(Some(FaultClock::new(FaultPlan {
            io_error_every: Some(1),
            ..FaultPlan::none()
        })));
        let err = s.insert(b"never lands").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("after {WRITE_RETRIES} retries")),
            "error must carry the retry count: {msg}"
        );
        // A failed insert leaves nothing behind: no blob, no temp file.
        let leftovers = fs::read_dir(s.root()).unwrap().count();
        assert_eq!(leftovers, 0, "failed insert must not leave files");
        // Detaching the clock restores normal service.
        s.set_fault_clock(None);
        let guid = s.insert(b"lands now").unwrap();
        assert_eq!(s.len(guid).unwrap(), 9);
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn imports_record_a_hash_that_verifies_and_catches_rot() {
        let s = store("sha");
        let guid = s.insert(b"precious genomic payload").unwrap();
        let name = Value::guid_string(guid);
        assert!(
            s.root().join(format!("{name}.sha256")).exists(),
            "import must record a sidecar"
        );
        assert_eq!(s.verify_blob(&name).unwrap(), BlobCheck::Ok);
        // Rot one byte of the blob at rest; verification catches it.
        crate::fault::rot_file(&s.path(guid), 77, 0, 24).unwrap();
        assert_eq!(s.verify_blob(&name).unwrap(), BlobCheck::Mismatch);
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn external_tool_open_invalidates_the_hash() {
        let s = store("sha-ext");
        let guid = s.insert(b"tool input").unwrap();
        let name = Value::guid_string(guid);
        let mut f = s.open_for_external_tool(guid).unwrap();
        f.write_all(b"rewritten").unwrap();
        drop(f);
        // The old digest certifies nothing now; the blob is unhashed, not
        // corrupt.
        assert_eq!(s.verify_blob(&name).unwrap(), BlobCheck::Unhashed);
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn blob_names_enumerates_and_reopen_sweeps_orphan_sidecars() {
        let s = store("sha-sweep");
        let root = s.root().to_path_buf();
        let a = s.insert(b"one").unwrap();
        let b = s.insert(b"two").unwrap();
        let mut names = vec![Value::guid_string(a), Value::guid_string(b)];
        names.sort();
        assert_eq!(s.blob_names().unwrap(), names);
        // A sidecar with no blob (crash between sidecar write and rename).
        fs::write(root.join("deadbeef.sha256"), "00").unwrap();
        drop(s);
        let before = storage_counters()
            .startup_orphans_removed
            .load(Ordering::Relaxed);
        let s = FileStreamStore::open(&root).unwrap();
        assert!(!root.join("deadbeef.sha256").exists());
        assert!(
            storage_counters()
                .startup_orphans_removed
                .load(Ordering::Relaxed)
                > before
        );
        // Real sidecars survive the sweep.
        assert_eq!(
            s.verify_blob(&Value::guid_string(a)).unwrap(),
            BlobCheck::Ok
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn quarantined_blobs_fail_typed_until_cleared() {
        let s = store("quarantine");
        let guid = s.insert(b"fenced").unwrap();
        let q = crate::scrub::Quarantine::in_memory();
        s.set_quarantine(Some(q.clone()));
        let key = FileStreamStore::object_key(guid);
        q.add(&key, 0);
        for result in [
            s.path_name(guid).map(|_| ()),
            s.len(guid).map(|_| ()),
            s.open_reader(guid, false).map(|_| ()),
            s.open_for_external_tool(guid).map(|_| ()),
        ] {
            assert!(
                matches!(result, Err(DbError::Quarantined { .. })),
                "{result:?}"
            );
        }
        // Delete is allowed (that's how an operator clears for re-import)
        // and clears the quarantine entry.
        s.delete(guid).unwrap();
        assert!(q.check(&key).is_ok(), "delete cleared the entry");
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn guids_are_unique() {
        let s = store("guids");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(s.new_guid()));
        }
        fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn filestream_has_zero_storage_overhead() {
        // The Table 1 / Table 2 "FileStream" column: stored size == input
        // size, byte for byte.
        let s = store("overhead");
        let payload = vec![b'A'; 123_457];
        let guid = s.insert(&payload).unwrap();
        assert_eq!(s.len(guid).unwrap(), payload.len() as u64);
        assert_eq!(s.total_bytes().unwrap(), payload.len() as u64);
        fs::remove_dir_all(s.root()).unwrap();
    }
}

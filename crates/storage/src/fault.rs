//! Deterministic fault injection for the storage layer.
//!
//! [`FaultInjectingPageStore`] wraps any [`PageStore`] and
//! [`FaultInjectingWalBackend`] wraps any [`WalBackend`]; both consult a
//! shared [`FaultClock`] so a single seeded schedule drives faults across
//! the data file and the log, the way one dying disk would. Three fault
//! kinds are supported:
//!
//! * **injected I/O errors** — every `n`th operation fails with
//!   [`DbError::Io`];
//! * **torn writes** — every `n`th page write persists only a
//!   pseudo-random prefix of the new image *and reports success*, the way
//!   a sector-granular write interrupted by power loss does (detected
//!   later by the page checksum);
//! * **crash cut-off** — after `n` successful syncs the "machine loses
//!   power": the failing sync persists only a pseudo-random part of the
//!   unsynced writes (possibly tearing them) and every subsequent
//!   operation fails.
//!
//! To model the volatility of the OS page cache, both wrappers buffer
//! writes and only push them to the wrapped store on a successful `sync`.
//! The wrapped store therefore plays the role of the durable medium: a
//! recovery test crashes the wrappers, throws them away, and reopens the
//! inner store directly to see exactly what a reboot would see.
//!
//! All randomness comes from a splitmix64 stream seeded by
//! [`FaultPlan::seed`], so a given (plan, workload) pair always yields the
//! same fault schedule.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use seqdb_types::{DbError, Result};

use crate::page::{PageId, PAGE_SIZE};
use crate::pager::PageStore;
use crate::wal::WalBackend;

/// The fault schedule. `None` disables that fault kind.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic schedule (torn-write lengths, partial
    /// crash flushes).
    pub seed: u64,
    /// Every `n`th I/O operation (reads, writes, allocations — counted
    /// across all wrappers sharing the clock) fails with an injected
    /// error.
    pub io_error_every: Option<u64>,
    /// Every `n`th page write is torn: a prefix of the new image lands,
    /// the rest of the page keeps its old contents, and the write reports
    /// success.
    pub torn_write_every: Option<u64>,
    /// The first `n` syncs succeed; the next one crashes the device.
    pub crash_after_syncs: Option<u64>,
    /// Every `n`th network stream operation delivers at most one byte,
    /// the way a congested socket hands back less than was asked for.
    /// Counted on the network clock (separate from storage ops, so
    /// adding a network wrapper never shifts a disk fault schedule).
    pub net_short_read_every: Option<u64>,
    /// Every `n`th network stream operation accepts only a seeded-random
    /// prefix of the buffer, forcing callers to handle split writes.
    pub net_partial_write_every: Option<u64>,
    /// Every `n`th network stream operation stalls for
    /// [`FaultPlan::net_stall_ms`] before proceeding — a peer that went
    /// quiet, as seen by deadline-based connection logic.
    pub net_stall_every: Option<u64>,
    /// How long an injected network stall lasts.
    pub net_stall_ms: u64,
    /// The first `n` network operations succeed; every later one fails
    /// with `ConnectionReset`, the abrupt mid-statement disconnect.
    pub net_reset_after_ops: Option<u64>,
    /// The first `n` I/O operations succeed; every later *write* fails
    /// with [`DbError::DiskFull`] — the device filled up. Reads keep
    /// working (a full disk still serves existing data), which is what
    /// makes degrade-don't-die testable: queries that only read proceed
    /// while spills and imports fail typed.
    pub disk_full_after_ops: Option<u64>,
    /// Seeded bit-rot schedule: when page `page` is read for the
    /// `at_read`th time through the wrapper, one seeded byte of its
    /// *at-rest* image is flipped first, so the corruption persists until
    /// something rewrites the page. Models media decay surfacing on access.
    pub rot_pages: Vec<PageRot>,
}

/// One entry of the bit-rot schedule: flip a byte in `page` just before
/// its `at_read`th read (1-based) through the fault wrapper.
#[derive(Debug, Clone)]
pub struct PageRot {
    pub page: PageId,
    pub at_read: u64,
}

impl FaultPlan {
    /// A plan with no faults (useful as a base for struct update syntax).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }
}

/// The splitmix64 step shared by [`FaultClock`] and [`rot_file`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flip one seeded byte of `path` within `[offset, offset + len)`, at
/// rest, and return the absolute file position flipped. The xor mask is
/// never zero, so the byte always changes. End-to-end tests use this to
/// plant bit rot directly in a data file (`offset = page * PAGE_SIZE`,
/// `len = PAGE_SIZE`) or a FileStream blob while the database has it open
/// through another descriptor — exactly the decayed-medium scenario the
/// scrubber exists to catch.
pub fn rot_file(path: &std::path::Path, seed: u64, offset: u64, len: u64) -> Result<u64> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut state = seed;
    let pos = offset + splitmix64(&mut state) % len.max(1);
    let mask = (splitmix64(&mut state) % 255) as u8 + 1;
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    f.seek(SeekFrom::Start(pos))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= mask;
    f.seek(SeekFrom::Start(pos))?;
    f.write_all(&b)?;
    f.sync_data()?;
    Ok(pos)
}

enum SyncOutcome {
    Ok,
    /// This sync is the crash point: partially persist, then fail.
    JustCrashed(DbError),
    /// The device already crashed earlier.
    Down(DbError),
}

/// Shared fault state: operation/sync counters, crash flag and the seeded
/// random stream.
pub struct FaultClock {
    plan: FaultPlan,
    ops: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
    crashed: AtomicBool,
    /// Network stream operations, counted separately from storage ops so
    /// the two schedules never perturb each other.
    net_ops: AtomicU64,
    /// The simulated peer reset the connection (sticky, like `crashed`).
    net_reset: AtomicBool,
    rng: Mutex<u64>,
}

impl FaultClock {
    pub fn new(plan: FaultPlan) -> Arc<FaultClock> {
        let rng_seed = plan.seed;
        Arc::new(FaultClock {
            plan,
            ops: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            net_ops: AtomicU64::new(0),
            net_reset: AtomicBool::new(false),
            rng: Mutex::new(rng_seed),
        })
    }

    /// Has the simulated device lost power?
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Total I/O operations observed.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Total successful syncs observed.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    fn next_rand(&self) -> u64 {
        splitmix64(&mut self.rng.lock())
    }

    /// Count one I/O operation against the schedule, failing if the plan
    /// says this operation errors. Public so components that do their own
    /// raw-file I/O (e.g. the FileStream store, which bypasses the pager)
    /// can share the clock's fault schedule.
    pub fn inject_op(&self) -> Result<()> {
        self.check_op()
    }

    /// Like [`FaultClock::inject_op`], for *write* paths: also subject to
    /// the disk-full schedule. TempSpace spills, WAL appends and
    /// FileStream imports route through this so a single
    /// [`FaultPlan::disk_full_after_ops`] threshold starves every write
    /// path at once, the way a full filesystem does.
    pub fn inject_write(&self) -> Result<()> {
        self.check_op()?;
        self.check_disk_full()
    }

    /// Count one durability point (fsync) against the crash schedule, for
    /// components that manage their own raw files outside the injecting
    /// store/WAL wrappers (e.g. the backup writer). Once the schedule's
    /// [`FaultPlan::crash_after_syncs`] limit is crossed the clock is
    /// crashed for good: this and every later injected operation fails,
    /// exactly as the page-store wrapper behaves.
    pub fn inject_sync(&self) -> Result<()> {
        match self.check_sync() {
            SyncOutcome::Ok => Ok(()),
            SyncOutcome::JustCrashed(e) | SyncOutcome::Down(e) => Err(e),
        }
    }

    fn check_disk_full(&self) -> Result<()> {
        if let Some(k) = self.plan.disk_full_after_ops {
            let n = self.ops.load(Ordering::Relaxed);
            if n > k {
                return Err(DbError::DiskFull(format!(
                    "injected ENOSPC: write at operation {n} exceeds the {k}-op device budget"
                )));
            }
        }
        Ok(())
    }

    fn check_op(&self) -> Result<()> {
        if self.is_crashed() {
            return Err(DbError::Io("injected crash: device offline".into()));
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(k) = self.plan.io_error_every {
            if n.is_multiple_of(k) {
                return Err(DbError::Io(format!("injected I/O error at operation {n}")));
            }
        }
        Ok(())
    }

    /// Total network stream operations observed.
    pub fn net_op_count(&self) -> u64 {
        self.net_ops.load(Ordering::Relaxed)
    }

    /// Has the simulated peer reset the connection?
    pub fn is_net_reset(&self) -> bool {
        self.net_reset.load(Ordering::Acquire)
    }

    /// True once the schedule has reached (or passed) its reset point:
    /// either a reset already fired, or the op budget is exhausted and
    /// the *next* operation will fail. Connection-lifecycle code uses
    /// this to treat the peer as gone without burning a schedule op.
    pub fn net_reset_pending(&self) -> bool {
        self.is_net_reset()
            || self
                .plan
                .net_reset_after_ops
                .is_some_and(|k| self.net_op_count() >= k)
    }

    /// Refund one network op. Used by [`FaultInjectingStream`] when the
    /// inner read returns `WouldBlock`/`TimedOut`: timeout polls happen
    /// a timing-dependent number of times, so counting them would make
    /// the "same seed, same schedule" invariant time-sensitive.
    fn net_unop(&self) {
        self.net_ops.fetch_sub(1, Ordering::Relaxed);
    }

    /// Advance the network schedule by one operation and report what the
    /// plan wants done to it. Used by [`FaultInjectingStream`]; public so
    /// custom transports can share the same seeded schedule.
    pub fn net_fate(&self) -> NetFate {
        let n = self.net_ops.fetch_add(1, Ordering::Relaxed) + 1;
        let mut fate = NetFate::default();
        if let Some(limit) = self.plan.net_reset_after_ops {
            if n > limit {
                self.net_reset.store(true, Ordering::Release);
            }
        }
        if self.is_net_reset() {
            fate.reset = true;
            return fate;
        }
        let hits = |every: Option<u64>| every.is_some_and(|k| n.is_multiple_of(k));
        if hits(self.plan.net_stall_every) {
            fate.stall_ms = self.plan.net_stall_ms;
        }
        fate.short_read = hits(self.plan.net_short_read_every);
        fate.partial_write = hits(self.plan.net_partial_write_every);
        fate
    }

    /// A seeded pseudo-random value in `1..=n` (used for partial-write
    /// prefix lengths; consuming the shared stream keeps the whole
    /// schedule a pure function of the seed).
    pub fn rand_cut(&self, n: usize) -> usize {
        1 + (self.next_rand() as usize) % n.max(1)
    }

    fn is_torn_write(&self) -> bool {
        let Some(k) = self.plan.torn_write_every else {
            return false;
        };
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(k)
    }

    fn check_sync(&self) -> SyncOutcome {
        if self.is_crashed() {
            return SyncOutcome::Down(DbError::Io("injected crash: device offline".into()));
        }
        let n = self.syncs.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.plan.crash_after_syncs {
            if n > limit {
                self.crashed.store(true, Ordering::Release);
                return SyncOutcome::JustCrashed(DbError::Io(format!(
                    "injected crash at sync {n}"
                )));
            }
        }
        SyncOutcome::Ok
    }
}

/// What the fault schedule dictates for one network stream operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetFate {
    /// Sleep this long before performing the operation (0 = no stall).
    pub stall_ms: u64,
    /// Deliver at most one byte even if more is available.
    pub short_read: bool,
    /// Accept only a seeded-random prefix of the buffer.
    pub partial_write: bool,
    /// Fail with `ConnectionReset` (sticky: the peer is gone for good).
    pub reset: bool,
}

/// A byte-stream wrapper (socket, pipe, in-memory channel) that injects
/// network faults according to a shared [`FaultClock`]: short reads,
/// partial writes, stalls, and abrupt connection resets, all at seeded
/// points. The connection-lifecycle analogue of
/// [`FaultInjectingPageStore`] — a server accepting connections through
/// this wrapper sees the same deterministic misbehavior on every run
/// with the same seed.
pub struct FaultInjectingStream<S> {
    inner: S,
    clock: Arc<FaultClock>,
}

impl<S> FaultInjectingStream<S> {
    pub fn new(inner: S, clock: Arc<FaultClock>) -> FaultInjectingStream<S> {
        FaultInjectingStream { inner, clock }
    }

    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.clock
    }

    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

fn net_reset_err() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        "injected connection reset",
    )
}

impl<S: std::io::Read> std::io::Read for FaultInjectingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let fate = self.clock.net_fate();
        if fate.reset {
            return Err(net_reset_err());
        }
        if fate.stall_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(fate.stall_ms));
        }
        let cap = if fate.short_read {
            buf.len().min(1)
        } else {
            buf.len()
        };
        match self.inner.read(&mut buf[..cap]) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A timed-out poll moved no bytes; refund the op so the
                // schedule stays a pure function of data transferred.
                self.clock.net_unop();
                Err(e)
            }
            other => other,
        }
    }
}

impl<S: std::io::Write> std::io::Write for FaultInjectingStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let fate = self.clock.net_fate();
        if fate.reset {
            return Err(net_reset_err());
        }
        if fate.stall_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(fate.stall_ms));
        }
        let cap = if fate.partial_write && buf.len() > 1 {
            self.clock.rand_cut(buf.len() - 1)
        } else {
            buf.len()
        };
        self.inner.write(&buf[..cap])
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.clock.is_net_reset() {
            return Err(net_reset_err());
        }
        self.inner.flush()
    }
}

/// A [`PageStore`] wrapper that injects faults according to a
/// [`FaultClock`]. Writes are buffered and reach the inner store on sync
/// (or partially, on a crash).
pub struct FaultInjectingPageStore {
    inner: Arc<dyn PageStore>,
    clock: Arc<FaultClock>,
    pending: Mutex<HashMap<PageId, Box<[u8]>>>,
    /// Per-page read counts driving [`FaultPlan::rot_pages`].
    page_reads: Mutex<HashMap<PageId, u64>>,
}

impl FaultInjectingPageStore {
    pub fn new(inner: Arc<dyn PageStore>, clock: Arc<FaultClock>) -> FaultInjectingPageStore {
        FaultInjectingPageStore {
            inner,
            clock,
            pending: Mutex::new(HashMap::new()),
            page_reads: Mutex::new(HashMap::new()),
        }
    }

    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.clock
    }

    /// Current contents of page `id` as the device would persist it now
    /// (pending write if any, else the inner store's copy, else zeroes for
    /// a never-written page).
    fn current_image(&self, id: PageId) -> Box<[u8]> {
        if let Some(img) = self.pending.lock().get(&id) {
            return img.clone();
        }
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        if self.inner.read_page(id, &mut buf).is_err() {
            buf.iter_mut().for_each(|b| *b = 0);
        }
        buf
    }

    /// Take the buffered writes in page-id order. The order matters: the
    /// crash path consumes seeded randomness per page, and draining a
    /// `HashMap` directly would make the schedule depend on hasher state.
    fn drain_pending(&self) -> Vec<(PageId, Box<[u8]>)> {
        let mut pending: Vec<(PageId, Box<[u8]>)> = self.pending.lock().drain().collect();
        pending.sort_by_key(|(id, _)| *id);
        pending
    }

    /// Advance the bit-rot schedule for one read of page `id`: if this is
    /// the scheduled read, flip a seeded byte of the *at-rest* image (the
    /// pending write if one is buffered, else the durable copy directly —
    /// bypassing the op counter, because decay is not an I/O operation).
    /// A later rewrite of the page genuinely heals it.
    fn maybe_rot(&self, id: PageId) {
        let plan = &self.clock.plan;
        if plan.rot_pages.is_empty() {
            return;
        }
        let n = {
            let mut reads = self.page_reads.lock();
            let n = reads.entry(id).or_insert(0);
            *n += 1;
            *n
        };
        if !plan
            .rot_pages
            .iter()
            .any(|r| r.page == id && r.at_read == n)
        {
            return;
        }
        let pos = (self.clock.next_rand() as usize) % PAGE_SIZE;
        let mask = (self.clock.next_rand() % 255) as u8 + 1;
        let mut pending = self.pending.lock();
        if let Some(img) = pending.get_mut(&id) {
            img[pos] ^= mask;
            return;
        }
        drop(pending);
        let mut img = vec![0u8; PAGE_SIZE];
        if self.inner.read_page(id, &mut img).is_err() {
            return;
        }
        img[pos] ^= mask;
        let _ = self.inner.write_page(id, &img);
    }

    /// Overlay a pseudo-random-length prefix of `new` onto the current
    /// page contents — the effect of a write interrupted partway.
    fn tear(&self, id: PageId, new: &[u8]) -> Box<[u8]> {
        let mut torn = self.current_image(id);
        // Tear at a position that leaves the write genuinely partial.
        let cut = 1 + (self.clock.next_rand() as usize) % (PAGE_SIZE - 1);
        torn[..cut].copy_from_slice(&new[..cut]);
        torn
    }
}

impl PageStore for FaultInjectingPageStore {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.clock.check_op()?;
        self.maybe_rot(id);
        if let Some(img) = self.pending.lock().get(&id) {
            buf.copy_from_slice(img);
            return Ok(());
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.clock.inject_write()?;
        let image = if self.clock.is_torn_write() {
            self.tear(id, buf)
        } else {
            buf.to_vec().into_boxed_slice()
        };
        self.pending.lock().insert(id, image);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        self.clock.check_op()?;
        self.inner.allocate()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn sync(&self) -> Result<()> {
        match self.clock.check_sync() {
            SyncOutcome::Ok => {
                for (id, img) in self.drain_pending() {
                    self.inner.write_page(id, &img)?;
                }
                self.inner.sync()
            }
            SyncOutcome::JustCrashed(e) => {
                // Power loss mid-flush: each unsynced write independently
                // lands whole, lands torn, or is lost.
                for (id, img) in self.drain_pending() {
                    match self.clock.next_rand() % 3 {
                        0 => {} // lost
                        1 => {
                            let torn = self.tear(id, &img);
                            let _ = self.inner.write_page(id, &torn);
                        }
                        _ => {
                            let _ = self.inner.write_page(id, &img);
                        }
                    }
                }
                Err(e)
            }
            SyncOutcome::Down(e) => Err(e),
        }
    }
}

/// A [`WalBackend`] wrapper sharing the same [`FaultClock`]. Appends are
/// buffered; a crash during sync persists only a prefix of the unsynced
/// tail, which is how torn WAL records come to exist.
pub struct FaultInjectingWalBackend {
    inner: Arc<dyn WalBackend>,
    clock: Arc<FaultClock>,
    pending: Mutex<Vec<u8>>,
}

impl FaultInjectingWalBackend {
    pub fn new(inner: Arc<dyn WalBackend>, clock: Arc<FaultClock>) -> FaultInjectingWalBackend {
        FaultInjectingWalBackend {
            inner,
            clock,
            pending: Mutex::new(Vec::new()),
        }
    }
}

impl WalBackend for FaultInjectingWalBackend {
    fn read_all(&self) -> Result<Vec<u8>> {
        self.clock.check_op()?;
        let mut data = self.inner.read_all()?;
        data.extend_from_slice(&self.pending.lock());
        Ok(data)
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        self.clock.inject_write()?;
        self.pending.lock().extend_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        match self.clock.check_sync() {
            SyncOutcome::Ok => {
                let pending = std::mem::take(&mut *self.pending.lock());
                if !pending.is_empty() {
                    self.inner.append(&pending)?;
                }
                self.inner.sync()
            }
            SyncOutcome::JustCrashed(e) => {
                let pending = std::mem::take(&mut *self.pending.lock());
                if !pending.is_empty() {
                    let cut = (self.clock.next_rand() as usize) % (pending.len() + 1);
                    let _ = self.inner.append(&pending[..cut]);
                }
                Err(e)
            }
            SyncOutcome::Down(e) => Err(e),
        }
    }

    fn truncate(&self) -> Result<()> {
        self.clock.check_op()?;
        self.pending.lock().clear();
        self.inner.truncate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn plan_store(plan: FaultPlan) -> FaultInjectingPageStore {
        let inner = Arc::new(MemPager::new());
        FaultInjectingPageStore::new(inner, FaultClock::new(plan))
    }

    #[test]
    fn no_faults_behaves_like_inner_store() {
        let store = plan_store(FaultPlan::none());
        let id = store.allocate().unwrap();
        let img = vec![7u8; PAGE_SIZE];
        store.write_page(id, &img).unwrap();
        store.sync().unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut back).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn io_errors_follow_the_schedule() {
        let store = plan_store(FaultPlan {
            io_error_every: Some(3),
            ..FaultPlan::none()
        });
        let id = store.allocate().unwrap(); // op 1
        let img = vec![1u8; PAGE_SIZE];
        store.write_page(id, &img).unwrap(); // op 2
        let err = store.write_page(id, &img).unwrap_err(); // op 3 fails
        assert!(matches!(err, DbError::Io(_)), "{err}");
        store.write_page(id, &img).unwrap(); // op 4
    }

    #[test]
    fn crash_cuts_off_all_later_operations() {
        let store = plan_store(FaultPlan {
            crash_after_syncs: Some(1),
            ..FaultPlan::none()
        });
        let id = store.allocate().unwrap();
        store.write_page(id, &vec![2u8; PAGE_SIZE]).unwrap();
        store.sync().unwrap(); // sync 1: ok
        let err = store.sync().unwrap_err(); // sync 2: crash
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert!(store.clock().is_crashed());
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(store.read_page(id, &mut buf).is_err());
        assert!(store.write_page(id, &buf).is_err());
        assert!(store.sync().is_err());
    }

    #[test]
    fn same_seed_same_schedule() {
        // Run the same workload against two identically-seeded harnesses
        // and require bit-identical surviving state.
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let inner = Arc::new(MemPager::new());
            let store = FaultInjectingPageStore::new(
                inner.clone(),
                FaultClock::new(FaultPlan {
                    seed,
                    torn_write_every: Some(3),
                    crash_after_syncs: Some(2),
                    ..FaultPlan::none()
                }),
            );
            for round in 0u8..12 {
                let Ok(id) = store.allocate() else { break };
                let _ = store.write_page(id, &vec![round; PAGE_SIZE]);
                if round % 4 == 3 && store.sync().is_err() {
                    break;
                }
            }
            // What the durable medium holds after the crash:
            (0..inner.num_pages())
                .map(|id| {
                    let mut buf = vec![0u8; PAGE_SIZE];
                    inner.read_page(id, &mut buf).unwrap();
                    buf
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn torn_write_reports_success_but_corrupts() {
        let store = plan_store(FaultPlan {
            seed: 7,
            torn_write_every: Some(1), // every write tears
            ..FaultPlan::none()
        });
        let id = store.allocate().unwrap();
        let img = vec![0xABu8; PAGE_SIZE];
        store.write_page(id, &img).unwrap(); // "succeeds"
        store.sync().unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut back).unwrap();
        assert_ne!(back, img, "write should have been torn");
        assert_eq!(back[0], 0xAB, "some prefix must have landed");
    }

    #[test]
    fn stream_short_reads_follow_the_schedule() {
        use std::io::Read;
        let clock = FaultClock::new(FaultPlan {
            net_short_read_every: Some(2),
            ..FaultPlan::none()
        });
        let data = [9u8; 64];
        let mut s = FaultInjectingStream::new(&data[..], clock);
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 16, "op 1 reads in full");
        assert_eq!(s.read(&mut buf).unwrap(), 1, "op 2 is short");
        assert_eq!(s.read(&mut buf).unwrap(), 16, "op 3 reads in full");
    }

    #[test]
    fn stream_partial_writes_are_seeded_and_deterministic() {
        use std::io::Write;
        let run = |seed: u64| {
            let clock = FaultClock::new(FaultPlan {
                seed,
                net_partial_write_every: Some(1),
                ..FaultPlan::none()
            });
            let mut s = FaultInjectingStream::new(Vec::new(), clock);
            let mut accepted = Vec::new();
            for _ in 0..8 {
                accepted.push(s.write(&[7u8; 100]).unwrap());
            }
            accepted
        };
        let a = run(11);
        assert!(a.iter().all(|&n| (1..100).contains(&n)), "{a:?}");
        assert_eq!(a, run(11), "same seed, same prefix lengths");
        assert_ne!(a, run(12), "different seeds diverge");
    }

    #[test]
    fn stream_reset_is_sticky_and_counts_ops() {
        use std::io::{Read, Write};
        let clock = FaultClock::new(FaultPlan {
            net_reset_after_ops: Some(2),
            ..FaultPlan::none()
        });
        let data = [1u8; 8];
        let mut s = FaultInjectingStream::new(&data[..], clock.clone());
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 4); // op 1
        assert_eq!(s.read(&mut buf).unwrap(), 4); // op 2
        let err = s.read(&mut buf).unwrap_err(); // op 3: reset
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert!(clock.is_net_reset());
        // Writes through the same clock are dead too.
        let mut w = FaultInjectingStream::new(Vec::new(), clock.clone());
        assert!(w.write(&[0u8; 4]).is_err());
        assert!(clock.net_op_count() >= 4);
    }

    #[test]
    fn stream_faults_do_not_shift_the_storage_schedule() {
        use std::io::Read;
        // The same storage workload, with and without interleaved network
        // traffic on the shared clock, must produce the same op count —
        // i.e. network ops never consume storage schedule slots.
        let clock = FaultClock::new(FaultPlan {
            io_error_every: Some(3),
            net_short_read_every: Some(1),
            ..FaultPlan::none()
        });
        let store = FaultInjectingPageStore::new(Arc::new(MemPager::new()), clock.clone());
        let id = store.allocate().unwrap(); // storage op 1
        let data = [0u8; 8];
        let mut s = FaultInjectingStream::new(&data[..], clock.clone());
        let mut buf = [0u8; 4];
        for _ in 0..5 {
            let _ = s.read(&mut buf); // net ops, storage clock untouched
        }
        let img = vec![1u8; PAGE_SIZE];
        store.write_page(id, &img).unwrap(); // storage op 2
        let err = store.write_page(id, &img).unwrap_err(); // storage op 3
        assert!(matches!(err, DbError::Io(_)), "{err}");
        assert_eq!(clock.op_count(), 3);
        assert_eq!(clock.net_op_count(), 5);
    }

    #[test]
    fn disk_full_fails_writes_typed_but_reads_survive() {
        let store = plan_store(FaultPlan {
            disk_full_after_ops: Some(3),
            ..FaultPlan::none()
        });
        let id = store.allocate().unwrap(); // op 1
        let img = vec![4u8; PAGE_SIZE];
        store.write_page(id, &img).unwrap(); // op 2
        store.sync().unwrap();
        store.write_page(id, &img).unwrap(); // op 3: at the budget edge
        let err = store.write_page(id, &img).unwrap_err(); // op 4: full
        assert!(matches!(err, DbError::DiskFull(_)), "{err:?}");
        // Reads still work on a full disk.
        let mut back = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut back).unwrap();
        assert_eq!(back, img);
        // The WAL backend starves on the same clock.
        let wal = FaultInjectingWalBackend::new(
            Arc::new(crate::wal::MemWalBackend::new()),
            store.clock().clone(),
        );
        let err = wal.append(b"x").unwrap_err();
        assert!(matches!(err, DbError::DiskFull(_)), "{err:?}");
    }

    #[test]
    fn bit_rot_fires_at_the_scheduled_read_and_persists() {
        let store = plan_store(FaultPlan {
            seed: 9,
            rot_pages: vec![PageRot {
                page: 0,
                at_read: 2,
            }],
            ..FaultPlan::none()
        });
        let id = store.allocate().unwrap();
        let img = vec![0x11u8; PAGE_SIZE];
        store.write_page(id, &img).unwrap();
        store.sync().unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut back).unwrap(); // read 1: clean
        assert_eq!(back, img);
        store.read_page(id, &mut back).unwrap(); // read 2: rotted
        assert_ne!(back, img, "scheduled read must surface the flip");
        let rotted = back.clone();
        store.read_page(id, &mut back).unwrap(); // read 3: still rotted
        assert_eq!(back, rotted, "rot is at-rest, not transient");
        // A rewrite genuinely heals the page.
        store.write_page(id, &img).unwrap();
        store.sync().unwrap();
        store.read_page(id, &mut back).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn rot_file_flips_one_seeded_byte_in_range() {
        let dir = std::env::temp_dir().join(format!("seqdb-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        let base = vec![0xC3u8; 4096];
        std::fs::write(&path, &base).unwrap();
        let pos = rot_file(&path, 21, 1024, 2048).unwrap();
        assert!((1024..3072).contains(&pos), "flip at {pos} out of range");
        let after = std::fs::read(&path).unwrap();
        let diffs: Vec<usize> = (0..base.len()).filter(|&i| after[i] != base[i]).collect();
        assert_eq!(diffs, vec![pos as usize], "exactly one byte changes");
        // Same seed flips the same position in a fresh copy.
        std::fs::write(&path, &base).unwrap();
        assert_eq!(rot_file(&path, 21, 1024, 2048).unwrap(), pos);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_backend_loses_unsynced_tail_on_crash() {
        let inner = Arc::new(crate::wal::MemWalBackend::new());
        let clock = FaultClock::new(FaultPlan {
            seed: 5,
            crash_after_syncs: Some(1),
            ..FaultPlan::none()
        });
        let wal = FaultInjectingWalBackend::new(inner.clone(), clock);
        wal.append(b"synced").unwrap();
        wal.sync().unwrap();
        wal.append(b"doomed-doomed-doomed").unwrap();
        assert!(wal.sync().is_err());
        let durable = inner.read_all().unwrap();
        assert!(durable.starts_with(b"synced"));
        assert!(
            durable.len() <= b"synced".len() + 20,
            "only a prefix of the unsynced tail may persist"
        );
        assert!(wal.append(b"x").is_err(), "device is down");
    }
}

//! The genomic database schemas (paper §3).
//!
//! Three designs, matching §3.3's physical-design discussion:
//!
//! 1. **Normalized** ([`create_normalized_schema`]): the E-R model of
//!    Figure 4 mapped to relations, with synthetic numeric ids replacing
//!    the textual composite keys of the file formats (§5.1.1), workflow
//!    provenance tables integrated with the sequence data (§3.2), and
//!    clustered indexes chosen for the analysis queries (§5.3.3).
//! 2. **1:1 file-image** ([`create_file_image_schema`]): "a simulation of
//!    a user trying to use a relational database in a 'straightforward'
//!    manner just based on the input file formats" — every table repeats
//!    the textual read names, which is why it comes out *larger* than
//!    the files in Tables 1–2.
//! 3. **Hybrid FileStream** ([`create_filestream_schema`]): level-1 data
//!    stays in its original FASTQ bytes inside DBMS-managed FileStream
//!    blobs, wrapped relationally by the `ListShortReads` TVF.

use std::sync::Arc;

use seqdb_engine::Database;
use seqdb_sql::DatabaseSqlExt;
use seqdb_storage::rowfmt::Compression;
use seqdb_types::Result;

/// Compression clause for a given setting.
fn with_compression(c: Compression) -> String {
    match c {
        Compression::None => String::new(),
        other => format!(" WITH (DATA_COMPRESSION = {})", other.sql_name()),
    }
}

/// Create the normalized schema. `compression` applies to the bulk data
/// tables (Read/Tag/Alignment), mirroring how the paper varies
/// `DATA_COMPRESSION` per design; the small metadata tables stay
/// uncompressed. `suffix` namespaces the tables so several designs can
/// coexist in one database (e.g. `Read_row`, `Read_page`).
pub fn create_normalized_schema(
    db: &Arc<Database>,
    suffix: &str,
    compression: Compression,
) -> Result<()> {
    let c = with_compression(compression);
    let script = format!(
        "
        CREATE TABLE Experiment{sfx} (
            e_id INT NOT NULL PRIMARY KEY,
            e_name VARCHAR(128) NOT NULL,
            e_type VARCHAR(32) NOT NULL,
            e_started VARCHAR(32)
        );
        CREATE TABLE SampleGroup{sfx} (
            sg_id INT NOT NULL PRIMARY KEY,
            sg_e_id INT NOT NULL,
            sg_name VARCHAR(128)
        );
        CREATE TABLE Sample{sfx} (
            s_id INT NOT NULL PRIMARY KEY,
            s_sg_id INT NOT NULL,
            s_name VARCHAR(128)
        );
        CREATE TABLE Lane{sfx} (
            l_id INT NOT NULL PRIMARY KEY,
            l_s_id INT NOT NULL,
            machine VARCHAR(32) NOT NULL,
            flowcell INT NOT NULL,
            lane_no INT NOT NULL
        );
        CREATE TABLE ReferenceSeq{sfx} (
            chr_id INT NOT NULL PRIMARY KEY,
            chr_name VARCHAR(32) NOT NULL,
            chr_len INT NOT NULL
        );
        CREATE TABLE Gene{sfx} (
            g_id INT NOT NULL PRIMARY KEY,
            g_name VARCHAR(64) NOT NULL,
            g_chr_id INT NOT NULL,
            g_start INT NOT NULL,
            g_len INT NOT NULL
        );
        CREATE TABLE Read{sfx} (
            r_id INT NOT NULL PRIMARY KEY,
            r_e_id INT NOT NULL,
            r_sg_id INT NOT NULL,
            r_s_id INT NOT NULL,
            r_l_id INT NOT NULL,
            tile INT NOT NULL,
            x INT NOT NULL,
            y INT NOT NULL,
            short_read_seq VARCHAR(512) NOT NULL,
            quals VARCHAR(512) NOT NULL
        ){c};
        CREATE TABLE Tag{sfx} (
            t_id INT NOT NULL PRIMARY KEY,
            t_e_id INT NOT NULL,
            t_sg_id INT NOT NULL,
            t_s_id INT NOT NULL,
            t_seq VARCHAR(512) NOT NULL,
            t_frequency INT NOT NULL
        ){c};
        CREATE TABLE Alignment{sfx} (
            a_id INT NOT NULL PRIMARY KEY,
            a_e_id INT NOT NULL,
            a_sg_id INT NOT NULL,
            a_s_id INT NOT NULL,
            a_t_id INT NOT NULL,
            a_g_id INT,
            a_chr_id INT NOT NULL,
            a_pos INT NOT NULL,
            a_strand VARCHAR(1) NOT NULL,
            a_mismatches INT NOT NULL,
            a_mapq INT NOT NULL
        ){c};
        CREATE TABLE GeneExpression{sfx} (
            x_g_id INT NOT NULL,
            x_e_id INT NOT NULL,
            x_sg_id INT NOT NULL,
            x_s_id INT NOT NULL,
            total_frequency INT NOT NULL,
            tag_count INT NOT NULL
        );
        ",
        sfx = suffix,
        c = c,
    );
    db.execute_sql_script(&script)?;
    // The clustered indexes §5.3.3 depends on: alignments in read order
    // (merge join with Read) and in genome order (ordered consensus).
    db.execute_sql(&format!(
        "CREATE INDEX ix_Alignment{suffix}_read ON Alignment{suffix} (a_t_id)"
    ))?;
    db.execute_sql(&format!(
        "CREATE INDEX ix_Alignment{suffix}_pos ON Alignment{suffix} (a_chr_id, a_pos)"
    ))?;
    Ok(())
}

/// Create the naive 1:1 import schema: the file columns verbatim, with
/// textual composite identifiers repeated in every table.
pub fn create_file_image_schema(
    db: &Arc<Database>,
    suffix: &str,
    compression: Compression,
) -> Result<()> {
    let c = with_compression(compression);
    let script = format!(
        "
        CREATE TABLE RawReads{sfx} (
            read_name VARCHAR(128) NOT NULL,
            seq VARCHAR(512) NOT NULL,
            qual VARCHAR(512) NOT NULL
        ){c};
        CREATE TABLE RawTags{sfx} (
            rank INT NOT NULL,
            frequency INT NOT NULL,
            tag VARCHAR(512) NOT NULL
        ){c};
        CREATE TABLE RawAlignments{sfx} (
            read_name VARCHAR(128) NOT NULL,
            chrom VARCHAR(32) NOT NULL,
            pos INT NOT NULL,
            strand VARCHAR(1) NOT NULL,
            mapq INT NOT NULL,
            mismatches INT NOT NULL,
            seq VARCHAR(512) NOT NULL
        ){c};
        CREATE TABLE RawGeneExpression{sfx} (
            gene_name VARCHAR(64) NOT NULL,
            total_frequency INT NOT NULL,
            tag_count INT NOT NULL
        ){c};
        ",
        sfx = suffix,
        c = c,
    );
    db.execute_sql_script(&script)?;
    Ok(())
}

/// Create the hybrid FileStream schema (the paper's §3.3 example,
/// verbatim modulo the filegroup name).
pub fn create_filestream_schema(db: &Arc<Database>, suffix: &str) -> Result<()> {
    db.execute_sql(&format!(
        "CREATE TABLE ShortReadFiles{suffix} (
            guid UNIQUEIDENTIFIER ROWGUIDCOL NOT NULL PRIMARY KEY,
            sample INT NOT NULL,
            lane INT NOT NULL,
            reads VARBINARY(MAX) FILESTREAM
        ) FILESTREAM_ON FILESTREAMGROUP"
    ))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb_engine::Database;

    #[test]
    fn normalized_schema_creates_all_tables_and_indexes() {
        let db = Database::in_memory();
        create_normalized_schema(&db, "", Compression::Row).unwrap();
        for t in [
            "Experiment",
            "SampleGroup",
            "Sample",
            "Lane",
            "ReferenceSeq",
            "Gene",
            "Read",
            "Tag",
            "Alignment",
            "GeneExpression",
        ] {
            assert!(db.catalog().has_table(t), "{t} missing");
        }
        let a = db.catalog().table("Alignment").unwrap();
        assert!(a.index_named("ix_Alignment_read").is_some());
        assert!(a.index_named("ix_Alignment_pos").is_some());
        let r = db.catalog().table("Read").unwrap();
        assert_eq!(r.heap.compression(), Compression::Row);
    }

    #[test]
    fn suffixed_designs_coexist() {
        let db = Database::in_memory();
        create_normalized_schema(&db, "_row", Compression::Row).unwrap();
        create_normalized_schema(&db, "_page", Compression::Page).unwrap();
        create_file_image_schema(&db, "_none", Compression::None).unwrap();
        create_filestream_schema(&db, "").unwrap();
        assert!(db.catalog().has_table("Read_row"));
        assert!(db.catalog().has_table("Read_page"));
        assert!(db.catalog().has_table("RawReads_none"));
        assert!(db.catalog().has_table("ShortReadFiles"));
        assert_eq!(
            db.catalog().table("Read_page").unwrap().heap.compression(),
            Compression::Page
        );
    }

    #[test]
    fn filestream_column_is_marked() {
        let db = Database::in_memory();
        create_filestream_schema(&db, "").unwrap();
        let t = db.catalog().table("ShortReadFiles").unwrap();
        let idx = t.schema.index_of("reads").unwrap();
        assert!(t.schema.column(idx).filestream);
    }
}

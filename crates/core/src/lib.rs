//! seqdb-core — the paper's genomic data platform.
//!
//! This crate is the reproduction of the *contribution* of Röhm &
//! Blakeley (CIDR 2009): data management for high-throughput sequencing
//! on top of an extensible relational engine.
//!
//! * [`schema`] — the conceptual model of Figure 4 mapped to a normalized
//!   relational schema (§3.2), plus the 1:1 "file-image" schema and the
//!   hybrid FileStream schema of §3.3;
//! * [`udx`] — the paper's user-defined extensions: the `ListShortReads`
//!   file-wrapper TVF (§3.3/§4.1), `PivotAlignment`, the `CallBase` /
//!   `AssembleSequence` aggregates of Query 3, the optimized
//!   sliding-window `AssembleConsensus` UDA (§4.2.3), and the in-database
//!   `AlignReads` TVF the paper lists as future work (§6.1);
//! * [`dataset`] — synthetic lanes for the two scenarios (digital gene
//!   expression, 1000 Genomes re-sequencing);
//! * [`import`] — loaders for every physical design of §3.3/§5.1;
//! * [`queries`] — Queries 1–3 (§4.2) as SQL plus the hand-built
//!   sliding-window consensus plan of §5.3.3;
//! * [`baseline`] — the sequential "Perl-script" style programs the
//!   paper compares against (§5.3.2, Figure 7) and the interpreted
//!   row-at-a-time procedure of §5.2;
//! * [`sizing`] — storage-efficiency accounting for Tables 1 and 2;
//! * [`workflow`] — end-to-end drivers tying the phases together,
//!   including workflow provenance rows.

pub mod baseline;
pub mod dataset;
pub mod import;
pub mod queries;
pub mod schema;
pub mod sizing;
pub mod udx;
pub mod workflow;

pub use dataset::{DgeDataset, ResequencingDataset};
pub use schema::create_normalized_schema;
pub use udx::register_udx;

//! End-to-end workflow drivers: load every physical design, run the
//! analysis queries, and produce the storage reports behind Tables 1–2.

use std::sync::Arc;

use seqdb_engine::Database;
use seqdb_storage::rowfmt::Compression;
use seqdb_types::{DbError, Result};

use crate::dataset::{DgeDataset, ResequencingDataset};
use crate::import;
use crate::queries;
use crate::sizing::StorageReport;
use crate::udx;

/// Storage-counter deltas across one workflow step: the I/O half of the
/// paper's resource accounting (Figure 7 tracks CPU; WAL, buffer-pool
/// and tempspace traffic tell the rest of the story). Read from the
/// global counter registries, so it sees every pool and spill file the
/// step touched.
#[derive(Debug, Default, Clone, Copy)]
pub struct StepIo {
    pub wal_records: u64,
    pub wal_fsyncs: u64,
    pub bufpool_misses: u64,
    pub spill_files: u64,
    pub spill_bytes: u64,
}

/// Run one workflow step and report the storage I/O it caused alongside
/// its result. Deltas are process-global: concurrent steps will blend,
/// which is fine for the sequential pipelines these drivers run.
pub fn measure_io<T>(db: &Arc<Database>, f: impl FnOnce() -> Result<T>) -> Result<(T, StepIo)> {
    let snap = |db: &Arc<Database>| -> StepIo {
        let relaxed = std::sync::atomic::Ordering::Relaxed;
        let s = seqdb_storage::storage_counters();
        StepIo {
            wal_records: s.wal_records.load(relaxed),
            wal_fsyncs: s.wal_fsyncs.load(relaxed),
            bufpool_misses: db.pool().stats.misses.load(relaxed),
            spill_files: s.spill_files.load(relaxed),
            spill_bytes: s.spill_bytes.load(relaxed),
        }
    };
    let before = snap(db);
    let value = f()?;
    let after = snap(db);
    Ok((
        value,
        StepIo {
            wal_records: after.wal_records - before.wal_records,
            wal_fsyncs: after.wal_fsyncs - before.wal_fsyncs,
            bufpool_misses: after.bufpool_misses - before.bufpool_misses,
            spill_files: after.spill_files - before.spill_files,
            spill_bytes: after.spill_bytes - before.spill_bytes,
        },
    ))
}

/// Design suffixes used throughout the workflows and benches.
pub const NORM: &str = "";
pub const NORM_ROW: &str = "_rowc";
pub const NORM_PAGE: &str = "_pagec";
pub const RAW: &str = "_raw";

/// Design column labels of Tables 1 and 2.
pub const DESIGNS: [&str; 7] = [
    "Files",
    "FileStream",
    "1:1 import",
    "normalized",
    "norm+row",
    "norm+page",
    "norm+bitpack",
];

/// Load a DGE dataset into every physical design of Table 1 and
/// register the UDX.
pub fn load_dge_designs(db: &Arc<Database>, ds: &DgeDataset) -> Result<()> {
    udx::register_udx(db, None);
    import::import_dge_file_image(db, RAW, Compression::None, ds)?;
    import::import_dge_normalized(db, NORM, Compression::None, ds)?;
    import::import_dge_normalized(db, NORM_ROW, Compression::Row, ds)?;
    import::import_dge_normalized(db, NORM_PAGE, Compression::Page, ds)?;
    import::import_filestream(db, NORM, &ds.fastq_path, 855, 1)?;
    import::import_reads_packed(db, NORM, Compression::Row, ds.reads.iter().cloned())?;
    Ok(())
}

/// Load a re-sequencing dataset into every design of Table 2.
pub fn load_reseq_designs(db: &Arc<Database>, ds: &ResequencingDataset) -> Result<()> {
    udx::register_udx(db, None);
    import::import_reseq_file_image(db, RAW, Compression::None, ds)?;
    import::import_reseq_normalized(db, NORM, Compression::None, ds)?;
    import::import_reseq_normalized(db, NORM_ROW, Compression::Row, ds)?;
    import::import_reseq_normalized(db, NORM_PAGE, Compression::Page, ds)?;
    import::import_filestream(db, NORM, &ds.fastq_path, 855, 1)?;
    import::import_reads_packed(
        db,
        NORM,
        Compression::Row,
        ds.reads.iter().map(|r| r.record.clone()),
    )?;
    Ok(())
}

fn blob_size(db: &Arc<Database>, path: &std::path::Path) -> Result<u64> {
    let guid = db.filestream().insert_from_file(path)?;
    db.filestream().len(guid)
}

/// Table 1: storage efficiency for the DGE scenario. Requires
/// [`load_dge_designs`] to have run on `db`.
pub fn dge_storage_report(db: &Arc<Database>, ds: &DgeDataset) -> Result<StorageReport> {
    let mut r = StorageReport::default();

    r.add_file("short reads", "Files", &ds.fastq_path)?;
    r.add("short reads", "FileStream", blob_size(db, &ds.fastq_path)?);
    r.add_table("short reads", "1:1 import", db, &format!("RawReads{RAW}"))?;
    r.add_table("short reads", "normalized", db, &format!("Read{NORM}"))?;
    r.add_table("short reads", "norm+row", db, &format!("Read{NORM_ROW}"))?;
    r.add_table("short reads", "norm+page", db, &format!("Read{NORM_PAGE}"))?;
    r.add_table(
        "short reads",
        "norm+bitpack",
        db,
        &format!("ReadPacked{NORM}"),
    )?;

    r.add_file("unique tags", "Files", &ds.unique_tags_path)?;
    r.add(
        "unique tags",
        "FileStream",
        blob_size(db, &ds.unique_tags_path)?,
    );
    r.add_table("unique tags", "1:1 import", db, &format!("RawTags{RAW}"))?;
    r.add_table("unique tags", "normalized", db, &format!("Tag{NORM}"))?;
    r.add_table("unique tags", "norm+row", db, &format!("Tag{NORM_ROW}"))?;
    r.add_table("unique tags", "norm+page", db, &format!("Tag{NORM_PAGE}"))?;

    r.add_file("alignments", "Files", &ds.alignments_path)?;
    r.add(
        "alignments",
        "FileStream",
        blob_size(db, &ds.alignments_path)?,
    );
    r.add_table(
        "alignments",
        "1:1 import",
        db,
        &format!("RawAlignments{RAW}"),
    )?;
    r.add_table("alignments", "normalized", db, &format!("Alignment{NORM}"))?;
    r.add_table(
        "alignments",
        "norm+row",
        db,
        &format!("Alignment{NORM_ROW}"),
    )?;
    r.add_table(
        "alignments",
        "norm+page",
        db,
        &format!("Alignment{NORM_PAGE}"),
    )?;

    r.add_file("gene expression", "Files", &ds.gene_expr_path)?;
    r.add(
        "gene expression",
        "FileStream",
        blob_size(db, &ds.gene_expr_path)?,
    );
    r.add_table(
        "gene expression",
        "1:1 import",
        db,
        &format!("RawGeneExpression{RAW}"),
    )?;
    // Populate the normalized GeneExpression tables through Query 2 so
    // the measurement covers real output rows.
    for sfx in [NORM, NORM_ROW, NORM_PAGE] {
        queries::run_query2(db, sfx)?;
    }
    r.add_table(
        "gene expression",
        "normalized",
        db,
        &format!("GeneExpression{NORM}"),
    )?;
    r.add_table(
        "gene expression",
        "norm+row",
        db,
        &format!("GeneExpression{NORM_ROW}"),
    )?;
    r.add_table(
        "gene expression",
        "norm+page",
        db,
        &format!("GeneExpression{NORM_PAGE}"),
    )?;
    Ok(r)
}

/// Table 2: storage efficiency for the re-sequencing scenario.
pub fn reseq_storage_report(db: &Arc<Database>, ds: &ResequencingDataset) -> Result<StorageReport> {
    let mut r = StorageReport::default();
    r.add_file("short reads", "Files", &ds.fastq_path)?;
    r.add("short reads", "FileStream", blob_size(db, &ds.fastq_path)?);
    r.add_table("short reads", "1:1 import", db, &format!("RawReads{RAW}"))?;
    r.add_table("short reads", "normalized", db, &format!("Read{NORM}"))?;
    r.add_table("short reads", "norm+row", db, &format!("Read{NORM_ROW}"))?;
    r.add_table("short reads", "norm+page", db, &format!("Read{NORM_PAGE}"))?;
    r.add_table(
        "short reads",
        "norm+bitpack",
        db,
        &format!("ReadPacked{NORM}"),
    )?;

    r.add_file("alignments", "Files", &ds.alignments_path)?;
    r.add(
        "alignments",
        "FileStream",
        blob_size(db, &ds.alignments_path)?,
    );
    r.add_table(
        "alignments",
        "1:1 import",
        db,
        &format!("RawAlignments{RAW}"),
    )?;
    r.add_table("alignments", "normalized", db, &format!("Alignment{NORM}"))?;
    r.add_table(
        "alignments",
        "norm+row",
        db,
        &format!("Alignment{NORM_ROW}"),
    )?;
    r.add_table(
        "alignments",
        "norm+page",
        db,
        &format!("Alignment{NORM_PAGE}"),
    )?;
    Ok(r)
}

/// Run the full DGE analysis in-database and validate it against the
/// dataset's ground truth. Returns `(unique tags, genes expressed)`.
pub fn run_dge_analysis(db: &Arc<Database>, ds: &DgeDataset) -> Result<(usize, u64)> {
    let q1 = queries::run_query1(db, NORM)?;
    queries::check_query1_against(&q1, &ds.unique_tags)?;
    let inserted = queries::run_query2(db, NORM)?;
    if inserted != ds.gene_expression.len() as u64 {
        return Err(DbError::Execution(format!(
            "Query 2 produced {inserted} genes, dataset has {}",
            ds.gene_expression.len()
        )));
    }
    Ok((q1.rows.len(), inserted))
}

/// Session-scoped [`run_dge_analysis`]: the analysis queries run
/// admitted against the global memory pool, governed by the session's
/// effective limits, and registered where another session's `KILL` can
/// reach them — the shape of a multi-tenant analysis server.
pub fn run_dge_analysis_on(
    session: &seqdb_engine::Session,
    ds: &DgeDataset,
) -> Result<(usize, u64)> {
    let q1 = queries::run_query1_on(session, NORM)?;
    queries::check_query1_against(&q1, &ds.unique_tags)?;
    let inserted = queries::run_query2_on(session, NORM)?;
    if inserted != ds.gene_expression.len() as u64 {
        return Err(DbError::Execution(format!(
            "Query 2 produced {inserted} genes, dataset has {}",
            ds.gene_expression.len()
        )));
    }
    Ok((q1.rows.len(), inserted))
}

/// Run all three consensus plans (hash-grouped pivot, sort-based pivot,
/// sliding window) and check they agree. Returns
/// `(consensus pairs, spill bytes of the sort-based pivot plan)`.
pub fn run_consensus_both_ways(db: &Arc<Database>) -> Result<(Vec<(i64, String)>, u64)> {
    let pivot = queries::run_query3_pivot(db, NORM)?;
    db.temp().reset_counters();
    let pivot_sorted = queries::run_query3_pivot_sorted(db, NORM)?;
    let sorted_spill = db.temp().bytes_written();
    let sliding = queries::run_query3_sliding(db, NORM)?;
    if pivot != sliding {
        return Err(DbError::Execution(
            "pivot and sliding-window consensus disagree".into(),
        ));
    }
    if pivot_sorted != sliding {
        return Err(DbError::Execution(
            "sort-based pivot and sliding-window consensus disagree".into(),
        ));
    }
    Ok((sliding, sorted_spill))
}

/// SNP discovery — the tertiary analysis that closes the 1000 Genomes
/// workflow (§2.1.1: the consensus "looks for variations between
/// individual genomes"). Builds the quality-aware pileup consensus per
/// chromosome, compares it against the reference, and scores the calls
/// against the dataset's planted donor variants.
pub fn discover_snps(
    ds: &ResequencingDataset,
    min_quality: seqdb_bio::quality::Phred,
) -> Result<(Vec<seqdb_bio::snp::SnpCall>, seqdb_bio::snp::SnpAccuracy)> {
    use seqdb_bio::consensus::PileupConsensus;
    use seqdb_bio::snp;

    let nchroms = ds.reference.chromosomes.len();
    let mut pileups: Vec<PileupConsensus> = ds
        .reference
        .chromosomes
        .iter()
        .map(|c| PileupConsensus::new(c.len()))
        .collect();
    let mut covered: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nchroms];

    for da in &ds.alignments {
        let read = &ds.reads[da.subject as usize].record;
        let oriented_seq;
        let oriented_quals: Vec<seqdb_bio::quality::Phred>;
        match da.alignment.strand {
            seqdb_bio::align::Strand::Forward => {
                oriented_seq = read.seq.clone().into_bytes();
                oriented_quals = read.quals.clone();
            }
            seqdb_bio::align::Strand::Reverse => {
                oriented_seq = seqdb_bio::dna::reverse_complement_str(&read.seq)?.into_bytes();
                oriented_quals = read.quals.iter().rev().copied().collect();
            }
        }
        let chrom = da.alignment.chrom as usize;
        let pos = da.alignment.pos as usize;
        pileups[chrom].add(pos, &oriented_seq, &oriented_quals)?;
        covered[chrom].push((pos, pos + oriented_seq.len()));
    }

    let mut calls = Vec::new();
    let mut spans = Vec::new();
    for (ci, pileup) in pileups.into_iter().enumerate() {
        let cons = pileup.finish();
        calls.extend(snp::call_snps(
            &ds.reference,
            ci,
            0,
            &cons.seq,
            &cons.quals,
            min_quality,
        ));
        // Merge the coverage intervals for fair recall accounting.
        let mut iv = std::mem::take(&mut covered[ci]);
        iv.sort_unstable();
        let mut merged: Vec<(usize, usize, usize)> = Vec::new();
        for (s, e) in iv {
            match merged.last_mut() {
                Some((_, _, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((ci, s, e)),
            }
        }
        spans.extend(merged);
    }
    let accuracy = snp::score_calls(&calls, &ds.donor_snps, &spans);
    Ok((calls, accuracy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Scale;

    fn scale() -> Scale {
        Scale {
            genome_bp: 60_000,
            n_chromosomes: 3,
            n_reads: 3_000,
            seed: 17,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("seqdb-wf-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn dge_end_to_end_with_table1_shape() {
        let dir = tmp("dge");
        let ds = DgeDataset::generate(&dir, &scale()).unwrap();
        let db = Database::in_memory();
        load_dge_designs(&db, &ds).unwrap();
        let (tags, genes) = run_dge_analysis(&db, &ds).unwrap();
        assert_eq!(tags, ds.unique_tags.len());
        assert!(genes > 0);

        let report = dge_storage_report(&db, &ds).unwrap();
        // Table 1's qualitative shape:
        // FileStream has no overhead over the files.
        assert_eq!(
            report.get("short reads", "Files"),
            report.get("short reads", "FileStream")
        );
        // The 1:1 import of the alignments repeats the textual keys and
        // sequences, so it is much larger than the normalized schema
        // (the paper's central storage observation).
        let one2one = report.get("alignments", "1:1 import").unwrap();
        let norm_al = report.get("alignments", "normalized").unwrap();
        assert!(one2one > norm_al, "1:1 {one2one} !> normalized {norm_al}");
        // Row compression recovers the fixed-width overhead on reads.
        let norm = report.get("short reads", "normalized").unwrap();
        let rowc = report.get("short reads", "norm+row").unwrap();
        assert!(rowc <= norm, "row {rowc} !<= normalized {norm}");
        // Page compression helps a lot on repetitive DGE tags.
        let page = report.get("short reads", "norm+page").unwrap();
        assert!(page < norm, "page {page} !< normalized {norm}");
        let rendered = report.render(&DESIGNS);
        assert!(rendered.contains("short reads"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workflow_queries_run_under_the_governor() {
        let dir = tmp("governed");
        let ds = DgeDataset::generate(&dir, &scale()).unwrap();
        let db = Database::in_memory();
        load_dge_designs(&db, &ds).unwrap();

        // An impossible deadline fails the analysis query with a typed
        // timeout instead of running away.
        db.set_query_timeout_ms(Some(0));
        let err = queries::run_query1(&db, NORM).unwrap_err();
        assert!(matches!(err, DbError::Timeout(_)), "{err}");

        // A tight memory budget degrades the GROUP BY to spilling but
        // still produces the exact result.
        db.set_query_timeout_ms(None);
        db.set_query_memory_limit_kb(Some(8));
        db.temp().reset_counters();
        let q1 = queries::run_query1(&db, NORM).unwrap();
        queries::check_query1_against(&q1, &ds.unique_tags).unwrap();
        assert!(
            db.temp().spill_count() > 0,
            "an 8 KiB budget must force the aggregate to spill"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn measure_io_attributes_spill_traffic() {
        let dir = tmp("measure-io");
        let ds = DgeDataset::generate(&dir, &scale()).unwrap();
        let db = Database::in_memory();
        load_dge_designs(&db, &ds).unwrap();
        db.set_query_memory_limit_kb(Some(8));
        let (q1, io) = measure_io(&db, || queries::run_query1(&db, NORM)).unwrap();
        queries::check_query1_against(&q1, &ds.unique_tags).unwrap();
        assert!(
            io.spill_files > 0 && io.spill_bytes > 0,
            "the 8 KiB budget must show up as spill I/O: {io:?}"
        );
        // A second, unbudgeted run reports no spill delta.
        db.set_query_memory_limit_kb(None);
        let (_, io2) = measure_io(&db, || queries::run_query1(&db, NORM)).unwrap();
        assert_eq!(io2.spill_files, 0, "{io2:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workflow_analysis_runs_under_a_session() {
        use seqdb_sql::SessionSqlExt;

        let dir = tmp("session");
        let ds = DgeDataset::generate(&dir, &scale()).unwrap();
        let db = Database::in_memory();
        load_dge_designs(&db, &ds).unwrap();

        // Session-scoped limits: a tight budget makes this session's
        // queries spill, while the server defaults other sessions see
        // stay untouched.
        let s = db.create_session();
        s.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
        db.temp().reset_counters();
        let (tags, genes) = run_dge_analysis_on(&s, &ds).unwrap();
        assert_eq!(tags, ds.unique_tags.len());
        assert!(genes > 0);
        assert!(
            db.temp().spill_count() > 0,
            "the session's 8 KiB budget must force spilling"
        );
        assert_eq!(
            db.config().query_mem_limit_kb,
            None,
            "SET in a session must not change the server default"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snp_discovery_recovers_planted_variants() {
        let dir = tmp("snp");
        // Higher coverage so most planted SNPs are recallable: 8000
        // 36-bp reads over 25 kbp ≈ 11x.
        let ds = ResequencingDataset::generate(
            &dir,
            &Scale {
                genome_bp: 25_000,
                n_chromosomes: 2,
                n_reads: 8_000,
                seed: 31,
            },
        )
        .unwrap();
        assert!(!ds.donor_snps.is_empty(), "dataset plants variants");
        let (calls, acc) = discover_snps(&ds, seqdb_bio::quality::Phred(40)).unwrap();
        assert!(!calls.is_empty());
        assert!(
            acc.recall() > 0.6,
            "recall {:.2} (tp {}, fn {})",
            acc.recall(),
            acc.true_positives,
            acc.false_negatives
        );
        assert!(
            acc.precision() > 0.6,
            "precision {:.2} (tp {}, fp {})",
            acc.precision(),
            acc.true_positives,
            acc.false_positives
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reseq_consensus_agrees_between_plans() {
        let dir = tmp("reseq");
        let ds = ResequencingDataset::generate(
            &dir,
            &Scale {
                genome_bp: 20_000,
                n_chromosomes: 2,
                n_reads: 2_000,
                seed: 23,
            },
        )
        .unwrap();
        let db = Database::in_memory();
        udx::register_udx(&db, None);
        import::import_reseq_normalized(&db, NORM, Compression::Row, &ds).unwrap();
        let (consensus, _spill) = run_consensus_both_ways(&db).unwrap();
        assert_eq!(consensus.len(), 2, "one consensus per covered chromosome");
        // The consensus string starts at the first covered position of
        // the chromosome; align it before comparing to the reference.
        let chr_id = consensus[0].0 as u32;
        let start = ds
            .alignments
            .iter()
            .filter(|a| a.alignment.chrom == chr_id)
            .map(|a| a.alignment.pos as usize)
            .min()
            .unwrap();
        let chrom = &ds.reference.chromosomes[chr_id as usize];
        let called: Vec<u8> = consensus[0].1.bytes().collect();
        let span = &chrom.seq[start..(start + called.len()).min(chrom.len())];
        let matches = called
            .iter()
            .zip(span.iter())
            .filter(|(a, b)| a == b)
            .count();
        // ~3.6x coverage: most covered positions reconstruct correctly.
        assert!(
            matches * 10 > called.len() * 8,
            "consensus matches reference on {matches}/{} positions",
            called.len()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

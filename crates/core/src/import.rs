//! Loaders from the generated datasets into each physical design (§3.3).

use std::sync::Arc;

use seqdb_engine::Database;
use seqdb_storage::rowfmt::Compression;
use seqdb_types::{Result, Row, Value};

use crate::dataset::{DgeDataset, ResequencingDataset};
use crate::schema;
use crate::udx::DB_QUAL_ENCODING;

/// Provenance constants used by the workflows: one experiment, one
/// sample group, one sample, one lane.
pub const E_ID: i64 = 1;
pub const SG_ID: i64 = 1;
pub const S_ID: i64 = 1;
pub const L_ID: i64 = 1;

fn quals_text(quals: &[seqdb_bio::quality::Phred]) -> String {
    DB_QUAL_ENCODING.encode(quals)
}

/// Populate the provenance/metadata tables of a normalized design.
fn load_metadata(
    db: &Arc<Database>,
    suffix: &str,
    experiment_type: &str,
    reference: &seqdb_bio::reference::ReferenceGenome,
) -> Result<()> {
    let cat = db.catalog();
    cat.table(&format!("Experiment{suffix}"))?
        .insert(&Row::new(vec![
            Value::Int(E_ID),
            Value::text(format!("{experiment_type}-lane-1")),
            Value::text(experiment_type),
            Value::text("2008-11-03"),
        ]))?;
    cat.table(&format!("SampleGroup{suffix}"))?
        .insert(&Row::new(vec![
            Value::Int(SG_ID),
            Value::Int(E_ID),
            Value::text("group-1"),
        ]))?;
    cat.table(&format!("Sample{suffix}"))?
        .insert(&Row::new(vec![
            Value::Int(S_ID),
            Value::Int(SG_ID),
            Value::text("sample-1"),
        ]))?;
    cat.table(&format!("Lane{suffix}"))?.insert(&Row::new(vec![
        Value::Int(L_ID),
        Value::Int(S_ID),
        Value::text("IL4"),
        Value::Int(855),
        Value::Int(1),
    ]))?;
    let refs = cat.table(&format!("ReferenceSeq{suffix}"))?;
    for (i, c) in reference.chromosomes.iter().enumerate() {
        refs.insert(&Row::new(vec![
            Value::Int(i as i64),
            Value::text(c.name.clone()),
            Value::Int(c.len() as i64),
        ]))?;
    }
    Ok(())
}

/// Import a DGE dataset into a normalized design under `suffix`.
pub fn import_dge_normalized(
    db: &Arc<Database>,
    suffix: &str,
    compression: Compression,
    ds: &DgeDataset,
) -> Result<()> {
    schema::create_normalized_schema(db, suffix, compression)?;
    load_metadata(db, suffix, "dge", &ds.reference)?;
    let cat = db.catalog();

    let genes = cat.table(&format!("Gene{suffix}"))?;
    for g in &ds.genes {
        genes.insert(&Row::new(vec![
            Value::Int(g.gene_id as i64),
            Value::text(format!("GENE{:05}", g.gene_id)),
            Value::Int(g.chrom as i64),
            Value::Int(g.start as i64),
            Value::Int(g.len as i64),
        ]))?;
    }

    let reads = cat.table(&format!("Read{suffix}"))?;
    for (i, r) in ds.reads.iter().enumerate() {
        let name = seqdb_bio::readname::ReadName::parse(&r.name)?;
        reads.insert(&Row::new(vec![
            Value::Int(i as i64 + 1),
            Value::Int(E_ID),
            Value::Int(SG_ID),
            Value::Int(S_ID),
            Value::Int(L_ID),
            Value::Int(name.tile as i64),
            Value::Int(name.x as i64),
            Value::Int(name.y as i64),
            Value::text(r.seq.clone()),
            Value::text(quals_text(&r.quals)),
        ]))?;
    }

    let tags = cat.table(&format!("Tag{suffix}"))?;
    for (i, (tag, freq)) in ds.unique_tags.iter().enumerate() {
        tags.insert(&Row::new(vec![
            Value::Int(i as i64 + 1),
            Value::Int(E_ID),
            Value::Int(SG_ID),
            Value::Int(S_ID),
            Value::text(tag.clone()),
            Value::Int(*freq as i64),
        ]))?;
    }

    let alignments = cat.table(&format!("Alignment{suffix}"))?;
    for (i, da) in ds.alignments.iter().enumerate() {
        alignments.insert(&Row::new(vec![
            Value::Int(i as i64 + 1),
            Value::Int(E_ID),
            Value::Int(SG_ID),
            Value::Int(S_ID),
            Value::Int(da.subject as i64 + 1), // tag id
            da.gene_id
                .map(|g| Value::Int(g as i64))
                .unwrap_or(Value::Null),
            Value::Int(da.alignment.chrom as i64),
            Value::Int(da.alignment.pos as i64),
            Value::text(da.alignment.strand.symbol().to_string()),
            Value::Int(da.alignment.mismatches as i64),
            Value::Int(da.alignment.mapq as i64),
        ]))?;
    }
    Ok(())
}

/// Import a DGE dataset into the naive 1:1 file-image design.
pub fn import_dge_file_image(
    db: &Arc<Database>,
    suffix: &str,
    compression: Compression,
    ds: &DgeDataset,
) -> Result<()> {
    schema::create_file_image_schema(db, suffix, compression)?;
    let cat = db.catalog();

    let raw_reads = cat.table(&format!("RawReads{suffix}"))?;
    for r in &ds.reads {
        raw_reads.insert(&Row::new(vec![
            Value::text(r.name.clone()),
            Value::text(r.seq.clone()),
            Value::text(quals_text(&r.quals)),
        ]))?;
    }

    let raw_tags = cat.table(&format!("RawTags{suffix}"))?;
    for (rank, (tag, freq)) in ds.unique_tags.iter().enumerate() {
        raw_tags.insert(&Row::new(vec![
            Value::Int(rank as i64 + 1),
            Value::Int(*freq as i64),
            Value::text(tag.clone()),
        ]))?;
    }

    let raw_al = cat.table(&format!("RawAlignments{suffix}"))?;
    for da in &ds.alignments {
        let (tag, _) = &ds.unique_tags[da.subject as usize];
        let chrom = &ds.reference.chromosomes[da.alignment.chrom as usize];
        raw_al.insert(&Row::new(vec![
            // The 1:1 design repeats the *textual* identifier (here the
            // tag itself serves as the identifier, like the read name in
            // the FASTQ) — the paper's storage-bloat mechanism.
            Value::text(tag.clone()),
            Value::text(chrom.name.clone()),
            Value::Int(da.alignment.pos as i64 + 1),
            Value::text(da.alignment.strand.symbol().to_string()),
            Value::Int(da.alignment.mapq as i64),
            Value::Int(da.alignment.mismatches as i64),
            Value::text(tag.clone()),
        ]))?;
    }

    let raw_expr = cat.table(&format!("RawGeneExpression{suffix}"))?;
    for (g, f, c) in &ds.gene_expression {
        raw_expr.insert(&Row::new(vec![
            Value::text(format!("GENE{g:05}")),
            Value::Int(*f as i64),
            Value::Int(*c as i64),
        ]))?;
    }
    Ok(())
}

/// Import a re-sequencing dataset into a normalized design.
pub fn import_reseq_normalized(
    db: &Arc<Database>,
    suffix: &str,
    compression: Compression,
    ds: &ResequencingDataset,
) -> Result<()> {
    schema::create_normalized_schema(db, suffix, compression)?;
    load_metadata(db, suffix, "resequencing", &ds.reference)?;
    let cat = db.catalog();

    let reads = cat.table(&format!("Read{suffix}"))?;
    for (i, r) in ds.reads.iter().enumerate() {
        let name = seqdb_bio::readname::ReadName::parse(&r.record.name)?;
        reads.insert(&Row::new(vec![
            Value::Int(i as i64 + 1),
            Value::Int(E_ID),
            Value::Int(SG_ID),
            Value::Int(S_ID),
            Value::Int(L_ID),
            Value::Int(name.tile as i64),
            Value::Int(name.x as i64),
            Value::Int(name.y as i64),
            Value::text(r.record.seq.clone()),
            Value::text(quals_text(&r.record.quals)),
        ]))?;
    }

    let alignments = cat.table(&format!("Alignment{suffix}"))?;
    for (i, da) in ds.alignments.iter().enumerate() {
        alignments.insert(&Row::new(vec![
            Value::Int(i as i64 + 1),
            Value::Int(E_ID),
            Value::Int(SG_ID),
            Value::Int(S_ID),
            Value::Int(da.subject as i64 + 1), // read id
            Value::Null,
            Value::Int(da.alignment.chrom as i64),
            Value::Int(da.alignment.pos as i64),
            Value::text(da.alignment.strand.symbol().to_string()),
            Value::Int(da.alignment.mismatches as i64),
            Value::Int(da.alignment.mapq as i64),
        ]))?;
    }
    Ok(())
}

/// Import a re-sequencing dataset into the 1:1 file-image design.
pub fn import_reseq_file_image(
    db: &Arc<Database>,
    suffix: &str,
    compression: Compression,
    ds: &ResequencingDataset,
) -> Result<()> {
    schema::create_file_image_schema(db, suffix, compression)?;
    let cat = db.catalog();
    let raw_reads = cat.table(&format!("RawReads{suffix}"))?;
    for r in &ds.reads {
        raw_reads.insert(&Row::new(vec![
            Value::text(r.record.name.clone()),
            Value::text(r.record.seq.clone()),
            Value::text(quals_text(&r.record.quals)),
        ]))?;
    }
    let raw_al = cat.table(&format!("RawAlignments{suffix}"))?;
    for da in &ds.alignments {
        let read = &ds.reads[da.subject as usize].record;
        let chrom = &ds.reference.chromosomes[da.alignment.chrom as usize];
        // Mirror the text export: '-'-strand reads stored in reference
        // orientation.
        let oriented = match da.alignment.strand {
            seqdb_bio::align::Strand::Forward => read.seq.clone(),
            seqdb_bio::align::Strand::Reverse => seqdb_bio::dna::reverse_complement_str(&read.seq)?,
        };
        raw_al.insert(&Row::new(vec![
            Value::text(read.name.clone()),
            Value::text(chrom.name.clone()),
            Value::Int(da.alignment.pos as i64 + 1),
            Value::text(da.alignment.strand.symbol().to_string()),
            Value::Int(da.alignment.mapq as i64),
            Value::Int(da.alignment.mismatches as i64),
            Value::text(oriented),
        ]))?;
    }
    Ok(())
}

/// Import reads into a *bit-packed* Read table — the §6.1 extension: a
/// domain-specific sequence type with internal compression. The table
/// mirrors `Read<suffix>` but stores `short_read_seq` as a packed
/// VARBINARY (2 bits/base when N-free) and the Phred scores as raw
/// bytes; `UNPACK_SEQ(...)` restores the text in queries.
pub fn import_reads_packed(
    db: &Arc<Database>,
    suffix: &str,
    compression: Compression,
    reads: impl Iterator<Item = seqdb_bio::fastq::FastqRecord>,
) -> Result<()> {
    use seqdb_sql::DatabaseSqlExt;
    let c = match compression {
        Compression::None => String::new(),
        other => format!(" WITH (DATA_COMPRESSION = {})", other.sql_name()),
    };
    db.execute_sql(&format!(
        "CREATE TABLE ReadPacked{suffix} (
            r_id INT NOT NULL PRIMARY KEY,
            r_e_id INT NOT NULL,
            r_sg_id INT NOT NULL,
            r_s_id INT NOT NULL,
            r_l_id INT NOT NULL,
            tile INT NOT NULL,
            x INT NOT NULL,
            y INT NOT NULL,
            short_read_seq VARBINARY(512) NOT NULL,
            quals VARBINARY(512) NOT NULL
        ){c}"
    ))?;
    let table = db.catalog().table(&format!("ReadPacked{suffix}"))?;
    for (i, r) in reads.enumerate() {
        let name = seqdb_bio::readname::ReadName::parse(&r.name)?;
        let packed = seqdb_bio::dna::PackedSeq::from_str(&r.seq)?;
        let qual_bytes: Vec<u8> = r.quals.iter().map(|q| q.0).collect();
        table.insert(&Row::new(vec![
            Value::Int(i as i64 + 1),
            Value::Int(E_ID),
            Value::Int(SG_ID),
            Value::Int(S_ID),
            Value::Int(L_ID),
            Value::Int(name.tile as i64),
            Value::Int(name.x as i64),
            Value::Int(name.y as i64),
            Value::bytes(packed.to_bytes()),
            Value::bytes(qual_bytes),
        ]))?;
    }
    Ok(())
}

/// Import the level-1 FASTQ into the hybrid FileStream design (the
/// `OPENROWSET ... SINGLE_BLOB` path, streamed from the file).
pub fn import_filestream(
    db: &Arc<Database>,
    suffix: &str,
    fastq_path: &std::path::Path,
    sample: i64,
    lane: i64,
) -> Result<()> {
    if !db.catalog().has_table(&format!("ShortReadFiles{suffix}")) {
        schema::create_filestream_schema(db, suffix)?;
    }
    let guid = db.filestream().insert_from_file(fastq_path)?;
    let inserted = db
        .catalog()
        .table(&format!("ShortReadFiles{suffix}"))
        .and_then(|t| {
            t.insert(&Row::new(vec![
                Value::Guid(guid),
                Value::Int(sample),
                Value::Int(lane),
                Value::Guid(guid),
            ]))
        });
    if let Err(e) = inserted {
        // The blob landed but its catalog row did not: without the row the
        // GUID is unreachable, so reclaim it rather than orphan it.
        let _ = db.filestream().delete(guid);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Scale;
    use seqdb_sql::DatabaseSqlExt;

    fn small_dge() -> DgeDataset {
        let d = std::env::temp_dir().join(format!("seqdb-imp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        DgeDataset::generate(
            &d,
            &Scale {
                genome_bp: 50_000,
                n_chromosomes: 3,
                n_reads: 1500,
                seed: 3,
            },
        )
        .unwrap()
    }

    #[test]
    fn normalized_import_row_counts_match_dataset() {
        let ds = small_dge();
        let db = Database::in_memory();
        import_dge_normalized(&db, "", Compression::Row, &ds).unwrap();
        assert_eq!(
            db.catalog().table("Read").unwrap().row_count(),
            ds.reads.len() as u64
        );
        assert_eq!(
            db.catalog().table("Tag").unwrap().row_count(),
            ds.unique_tags.len() as u64
        );
        assert_eq!(
            db.catalog().table("Alignment").unwrap().row_count(),
            ds.alignments.len() as u64
        );
        // Provenance query: which machine sequenced sample 1?
        let r = db
            .query_sql(
                "SELECT machine, flowcell FROM Lane JOIN Sample ON l_s_id = s_id WHERE s_id = 1",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::text("IL4"));
        std::fs::remove_dir_all(&ds.dir).unwrap();
    }

    #[test]
    fn file_image_and_filestream_imports() {
        let ds = small_dge();
        let db = Database::in_memory();
        import_dge_file_image(&db, "", Compression::None, &ds).unwrap();
        import_filestream(&db, "", &ds.fastq_path, 855, 1).unwrap();
        assert_eq!(
            db.catalog().table("RawReads").unwrap().row_count(),
            ds.reads.len() as u64
        );
        // FileStream blob size == original file size (zero overhead).
        let file_len = std::fs::metadata(&ds.fastq_path).unwrap().len();
        assert_eq!(db.filestream().total_bytes().unwrap(), file_len);
        std::fs::remove_dir_all(&ds.dir).unwrap();
    }
}

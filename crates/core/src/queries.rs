//! The paper's analysis queries (§4.2), parameterized by design suffix.

use std::sync::Arc;

use seqdb_engine::exec::agg::AggSpec;
use seqdb_engine::plan::aggregate_schema;
use seqdb_engine::{Database, Expr, Plan, QueryResult};
use seqdb_sql::DatabaseSqlExt;
use seqdb_types::{Result, Value};

use crate::import::{E_ID, SG_ID, S_ID};

/// Query 1 — binning unique short reads (§4.2.1), verbatim shape.
pub fn query1_sql(suffix: &str) -> String {
    format!(
        "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC),
                COUNT(*),
                short_read_seq
         FROM Read{suffix}
         WHERE r_e_id={E_ID} AND r_sg_id={SG_ID} AND r_s_id={S_ID}
               AND CHARINDEX('N', short_read_seq) = 0
         GROUP BY short_read_seq"
    )
}

/// Query 2 — digital gene expression analysis (§4.2.2).
pub fn query2_sql(suffix: &str) -> String {
    format!(
        "INSERT INTO GeneExpression{suffix}
         SELECT a_g_id, a_e_id, a_sg_id, a_s_id,
                SUM(t_frequency), COUNT(a_t_id)
         FROM Alignment{suffix} JOIN Tag{suffix} ON (a_t_id = t_id)
         WHERE a_e_id={E_ID} AND a_sg_id={SG_ID} AND a_s_id={S_ID}
               AND a_g_id IS NOT NULL
         GROUP BY a_g_id, a_e_id, a_sg_id, a_s_id"
    )
}

/// Query 3 (pivot variant, §4.2.3): conceptually clean, blocking —
/// pivots every alignment into per-base rows, groups by position, calls
/// bases, and reassembles. The "huge intermediate result" plan.
pub fn query3_pivot_sql(suffix: &str) -> String {
    format!(
        "SELECT a_chr_id, AssembleSequence(position, b)
         FROM (SELECT a_chr_id, position, CallBase(base, qual) b
               FROM Alignment{suffix} JOIN Read{suffix} ON (a_t_id = r_id)
               CROSS APPLY PivotAlignment(a_pos, short_read_seq, quals, a_strand)
               WHERE a_e_id={E_ID}
               GROUP BY a_chr_id, position) x
         GROUP BY a_chr_id
         ORDER BY a_chr_id"
    )
}

/// The §5.3.3 merge-join measurement: join every alignment with its read
/// through the clustered indexes ("about 1.6 million alignments per
/// second ... using a parallel merge join").
pub fn merge_join_sql(suffix: &str) -> String {
    format!(
        "SELECT COUNT(*)
         FROM Read{suffix} JOIN Alignment{suffix} ON (a_t_id = r_id)"
    )
}

/// Query 3 (sliding-window variant): the optimized plan the paper
/// proposes — scan alignments in `(chromosome, position)` order through
/// the clustered index, join reads, and fold the ordered stream through
/// the non-mergeable `AssembleConsensus` UDA with a stream aggregate.
/// No pivoted intermediate, no blocking sort.
///
/// Built programmatically: the plan shape (ordered index scan feeding a
/// streaming aggregate) is exactly what §5.3.3 says the optimizer must
/// be coaxed into producing.
pub fn query3_sliding_plan(db: &Arc<Database>, suffix: &str) -> Result<Plan> {
    let read = db.catalog().table(&format!("Read{suffix}"))?;
    let alignment = db.catalog().table(&format!("Alignment{suffix}"))?;
    let ix = alignment
        .index_named(&format!("ix_Alignment{suffix}_pos"))
        .ok_or_else(|| {
            seqdb_types::DbError::Plan(format!("missing clustered index ix_Alignment{suffix}_pos"))
        })?;

    let rs = &read.schema;
    let r_id = rs.resolve("r_id")?;
    let r_seq = rs.resolve("short_read_seq")?;
    let r_quals = rs.resolve("quals")?;
    let als = &alignment.schema;
    let a_t_id = als.resolve("a_t_id")?;
    let a_chr = als.resolve("a_chr_id")?;
    let a_pos = als.resolve("a_pos")?;
    let a_strand = als.resolve("a_strand")?;

    // Build side: the Read table (hashed on r_id).
    let build = Plan::TableScan {
        table: read.clone(),
        filter: None,
        projection: None,
        schema: rs.clone(),
    };
    // Probe side: alignments in (chr, pos) order via the index.
    let probe = Plan::IndexScan {
        table: alignment.clone(),
        index: ix,
        prefix: Vec::new(),
        filter: None,
        projection: None,
        schema: als.clone(),
    };
    let joint = Arc::new(rs.concat(als));
    let rlen = rs.len();
    let join = Plan::HashJoin {
        build: Box::new(build),
        probe: Box::new(probe),
        build_keys: vec![Expr::col(r_id, "r_id")],
        probe_keys: vec![Expr::col(a_t_id, "a_t_id")],
        probe_first: false,
        dop: 1,
        schema: joint.clone(),
    };
    // A resident hash join preserves probe order, so the joined stream is
    // still in (chr, pos) order; stream-aggregate per chromosome. (This
    // hand-built plan runs without a memory budget, so the join never
    // degrades to the order-breaking spill path.)
    let group_exprs = vec![Expr::col(rlen + a_chr, "a_chr_id")];
    let agg = AggSpec::new(
        db.catalog()
            .aggregate("AssembleConsensus")
            .ok_or_else(|| seqdb_types::DbError::NotFound("AssembleConsensus".into()))?,
        vec![
            Expr::col(rlen + a_pos, "a_pos"),
            Expr::col(r_seq, "short_read_seq"),
            Expr::col(r_quals, "quals"),
            Expr::col(rlen + a_strand, "a_strand"),
        ],
        "consensus",
    );
    let schema = aggregate_schema(
        &joint,
        &group_exprs,
        &["a_chr_id".to_string()],
        std::slice::from_ref(&agg),
    )?;
    Ok(Plan::StreamAggregate {
        input: Box::new(join),
        group_exprs,
        aggs: vec![agg],
        schema,
    })
}

/// Query 3 (pivot variant, *sort-based grouping*): the plan SQL Server
/// would use when the pivoted intermediate exceeds memory — CROSS APPLY
/// pivots every alignment, an **external sort** orders the pivoted rows
/// by (chromosome, position) — writing the whole intermediate through
/// the temporary tablespace — and two stream aggregates call and
/// assemble. This is the plan §5.3.3 declares "not practical"; the
/// consensus benchmark measures its spill volume via
/// [`seqdb_storage::TempSpace`].
pub fn query3_pivot_sorted_plan(db: &Arc<Database>, suffix: &str) -> Result<Plan> {
    use seqdb_engine::exec::sort::SortKey;
    let read = db.catalog().table(&format!("Read{suffix}"))?;
    let alignment = db.catalog().table(&format!("Alignment{suffix}"))?;
    let rs = &read.schema;
    let als = &alignment.schema;
    let rlen = rs.len();

    let join = Plan::HashJoin {
        build: Box::new(Plan::TableScan {
            table: read.clone(),
            filter: None,
            projection: None,
            schema: rs.clone(),
        }),
        probe: Box::new(Plan::TableScan {
            table: alignment.clone(),
            filter: None,
            projection: None,
            schema: als.clone(),
        }),
        build_keys: vec![Expr::col(rs.resolve("r_id")?, "r_id")],
        probe_keys: vec![Expr::col(als.resolve("a_t_id")?, "a_t_id")],
        probe_first: false,
        dop: 1,
        schema: Arc::new(rs.concat(als)),
    };
    let joint = join.schema();

    let pivot_tvf = db
        .catalog()
        .table_fn("PivotAlignment")
        .ok_or_else(|| seqdb_types::DbError::NotFound("PivotAlignment".into()))?;
    let apply_schema = Arc::new(joint.concat(&pivot_tvf.schema()));
    let a_chr = rlen + als.resolve("a_chr_id")?;
    let position = joint.len(); // first TVF output column
    let base_col = joint.len() + 1;
    let qual_col = joint.len() + 2;
    let apply = Plan::CrossApply {
        input: Box::new(join),
        tvf: pivot_tvf,
        args: vec![
            Expr::col(rlen + als.resolve("a_pos")?, "a_pos"),
            Expr::col(rs.resolve("short_read_seq")?, "short_read_seq"),
            Expr::col(rs.resolve("quals")?, "quals"),
            Expr::col(rlen + als.resolve("a_strand")?, "a_strand"),
        ],
        schema: apply_schema.clone(),
    };

    // The blocking external sort of the full pivoted intermediate.
    let sort = Plan::Sort {
        input: Box::new(apply),
        keys: vec![
            SortKey::asc(Expr::col(a_chr, "a_chr_id")),
            SortKey::asc(Expr::col(position, "position")),
        ],
    };

    // Stream-aggregate pass 1: per-position base calling.
    let g1 = vec![
        Expr::col(a_chr, "a_chr_id"),
        Expr::col(position, "position"),
    ];
    let call = AggSpec::new(
        db.catalog()
            .aggregate("CallBase")
            .ok_or_else(|| seqdb_types::DbError::NotFound("CallBase".into()))?,
        vec![Expr::col(base_col, "base"), Expr::col(qual_col, "qual")],
        "b",
    );
    let s1_schema = aggregate_schema(
        &apply_schema,
        &g1,
        &["a_chr_id".to_string(), "position".to_string()],
        std::slice::from_ref(&call),
    )?;
    let s1 = Plan::StreamAggregate {
        input: Box::new(sort),
        group_exprs: g1,
        aggs: vec![call],
        schema: s1_schema.clone(),
    };

    // Stream-aggregate pass 2: per-chromosome assembly.
    let g2 = vec![Expr::col(0, "a_chr_id")];
    let assemble = AggSpec::new(
        db.catalog()
            .aggregate("AssembleSequence")
            .ok_or_else(|| seqdb_types::DbError::NotFound("AssembleSequence".into()))?,
        vec![Expr::col(1, "position"), Expr::col(2, "b")],
        "consensus",
    );
    let s2_schema = aggregate_schema(
        &s1_schema,
        &g2,
        &["a_chr_id".to_string()],
        std::slice::from_ref(&assemble),
    )?;
    Ok(Plan::StreamAggregate {
        input: Box::new(s1),
        group_exprs: g2,
        aggs: vec![assemble],
        schema: s2_schema,
    })
}

/// Run the sort-based pivot plan; returns `(chr_id, consensus)` pairs.
pub fn run_query3_pivot_sorted(db: &Arc<Database>, suffix: &str) -> Result<Vec<(i64, String)>> {
    let plan = query3_pivot_sorted_plan(db, suffix)?;
    let r = db.run_plan(&plan)?;
    let mut out: Vec<(i64, String)> = r
        .rows
        .iter()
        .map(|row| Ok((row[0].as_int()?, row[1].as_text()?.to_string())))
        .collect::<Result<_>>()?;
    out.sort_by_key(|(c, _)| *c);
    Ok(out)
}

/// Run Query 1 and return its rows.
pub fn run_query1(db: &Arc<Database>, suffix: &str) -> Result<QueryResult> {
    db.query_sql(&query1_sql(suffix))
}

/// Session-scoped Query 1: runs admitted against the global pool,
/// governed by the session's effective limits, and registered in
/// `sys.dm_exec_requests` where `KILL` can reach it.
pub fn run_query1_on(session: &seqdb_engine::Session, suffix: &str) -> Result<QueryResult> {
    use seqdb_sql::SessionSqlExt;
    session.query_sql(&query1_sql(suffix))
}

/// Run Query 2 (populates `GeneExpression<suffix>`); returns rows inserted.
pub fn run_query2(db: &Arc<Database>, suffix: &str) -> Result<u64> {
    Ok(db.execute_sql(&query2_sql(suffix))?.affected)
}

/// Session-scoped Query 2 (see [`run_query1_on`]).
pub fn run_query2_on(session: &seqdb_engine::Session, suffix: &str) -> Result<u64> {
    use seqdb_sql::SessionSqlExt;
    Ok(session.execute_sql(&query2_sql(suffix))?.affected)
}

/// Run the pivot consensus; returns `(chr_id, consensus)` pairs.
pub fn run_query3_pivot(db: &Arc<Database>, suffix: &str) -> Result<Vec<(i64, String)>> {
    let r = db.query_sql(&query3_pivot_sql(suffix))?;
    r.rows
        .iter()
        .map(|row| Ok((row[0].as_int()?, row[1].as_text()?.to_string())))
        .collect()
}

/// Run the sliding-window consensus; returns `(chr_id, consensus)` pairs
/// sorted by chromosome.
pub fn run_query3_sliding(db: &Arc<Database>, suffix: &str) -> Result<Vec<(i64, String)>> {
    let plan = query3_sliding_plan(db, suffix)?;
    let r = db.run_plan(&plan)?;
    let mut out: Vec<(i64, String)> = r
        .rows
        .iter()
        .map(|row| Ok((row[0].as_int()?, row[1].as_text()?.to_string())))
        .collect::<Result<_>>()?;
    out.sort_by_key(|(c, _)| *c);
    Ok(out)
}

/// Convenience for benches: result rows of the merge-join count.
pub fn run_merge_join(db: &Arc<Database>, suffix: &str) -> Result<i64> {
    let r = db.query_sql(&merge_join_sql(suffix))?;
    r.rows[0][0].as_int()
}

/// Assert a value-level invariant used in tests and the report: Query 1
/// output matches the dataset's binning ground truth.
pub fn check_query1_against(result: &QueryResult, expected: &[(String, u64)]) -> Result<()> {
    if result.rows.len() != expected.len() {
        return Err(seqdb_types::DbError::Execution(format!(
            "Query 1 produced {} tags, dataset has {}",
            result.rows.len(),
            expected.len()
        )));
    }
    // Frequencies must be descending and the multiset of (count) equal.
    let mut counts: Vec<i64> = result
        .rows
        .iter()
        .map(|r| r[1].as_int())
        .collect::<Result<_>>()?;
    let mut exp: Vec<i64> = expected.iter().map(|(_, c)| *c as i64).collect();
    counts.sort_unstable();
    exp.sort_unstable();
    if counts != exp {
        return Err(seqdb_types::DbError::Execution(
            "Query 1 frequency histogram does not match the dataset".into(),
        ));
    }
    for w in result.rows.windows(2) {
        if w[0][1].as_int()? < w[1][1].as_int()? {
            return Err(seqdb_types::DbError::Execution(
                "Query 1 output not ordered by frequency".into(),
            ));
        }
    }
    // Row numbers are 1..n.
    for (i, row) in result.rows.iter().enumerate() {
        if row[0] != Value::Int(i as i64 + 1) {
            return Err(seqdb_types::DbError::Execution(
                "Query 1 ROW_NUMBER not dense".into(),
            ));
        }
    }
    Ok(())
}

//! Storage-efficiency accounting (Tables 1 and 2).
//!
//! For each data artifact (short reads, unique tags, alignments, gene
//! expression) the report compares: the original files, FileStream
//! blobs, the 1:1 file-image import, the normalized schema, and the
//! normalized schema with row/page compression. Table sizes are
//! allocated pages × 8 KiB, which is what `sp_spaceused` reports.

use std::path::Path;
use std::sync::Arc;

use seqdb_engine::Database;
use seqdb_types::Result;

/// One measured cell of a storage table.
#[derive(Debug, Clone)]
pub struct SizeCell {
    pub artifact: String,
    pub design: String,
    pub bytes: u64,
}

/// A storage-efficiency table in the making.
#[derive(Debug, Default, Clone)]
pub struct StorageReport {
    pub cells: Vec<SizeCell>,
}

impl StorageReport {
    pub fn add(&mut self, artifact: &str, design: &str, bytes: u64) {
        self.cells.push(SizeCell {
            artifact: artifact.to_string(),
            design: design.to_string(),
            bytes,
        });
    }

    pub fn add_file(&mut self, artifact: &str, design: &str, path: &Path) -> Result<()> {
        self.add(artifact, design, std::fs::metadata(path)?.len());
        Ok(())
    }

    pub fn add_table(
        &mut self,
        artifact: &str,
        design: &str,
        db: &Arc<Database>,
        table: &str,
    ) -> Result<()> {
        let t = db.catalog().table(table)?;
        self.add(artifact, design, t.heap.allocated_bytes());
        Ok(())
    }

    pub fn get(&self, artifact: &str, design: &str) -> Option<u64> {
        self.cells
            .iter()
            .find(|c| c.artifact == artifact && c.design == design)
            .map(|c| c.bytes)
    }

    /// Ratio of a design's size to the file baseline for an artifact.
    pub fn ratio_to_files(&self, artifact: &str, design: &str) -> Option<f64> {
        let files = self.get(artifact, "Files")? as f64;
        let d = self.get(artifact, design)? as f64;
        if files == 0.0 {
            None
        } else {
            Some(d / files)
        }
    }

    /// Render as an aligned text table: artifacts down, designs across.
    pub fn render(&self, designs: &[&str]) -> String {
        let mut artifacts: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !artifacts.contains(&c.artifact.as_str()) {
                artifacts.push(&c.artifact);
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{:<24}", "artifact"));
        for d in designs {
            out.push_str(&format!("{d:>16}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(24 + 16 * designs.len()));
        out.push('\n');
        for a in artifacts {
            out.push_str(&format!("{a:<24}"));
            for d in designs {
                match self.get(a, d) {
                    Some(b) => out.push_str(&format!("{:>14.2}kB", b as f64 / 1024.0)),
                    None => out.push_str(&format!("{:>16}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_renders() {
        let mut r = StorageReport::default();
        r.add("short reads", "Files", 1000);
        r.add("short reads", "FileStream", 1000);
        r.add("short reads", "1:1 import", 1900);
        r.add("alignments", "Files", 500);
        assert_eq!(r.get("short reads", "1:1 import"), Some(1900));
        assert_eq!(r.ratio_to_files("short reads", "1:1 import"), Some(1.9));
        let text = r.render(&["Files", "FileStream", "1:1 import"]);
        assert!(text.contains("short reads"));
        assert!(text.contains("alignments"));
        assert!(text.lines().count() >= 4);
    }
}

//! The file-centric baselines the paper measures against.
//!
//! * [`binning_script`] — the "26-line Perl script" of §4.2.1/§5.3.2,
//!   transcribed as the same *execution shape* in Rust: read the whole
//!   file into per-record allocations, then process, then write — three
//!   strictly sequential phases on one core (Figure 7's profile);
//! * [`gene_expression_script`] and [`consensus_script`] — the tertiary
//!   analyses as scripts over the text exports;
//! * [`interpreted_count`] — the "T-SQL stored procedure" rung of §5.2:
//!   a row-at-a-time interpreter that walks the file through boxed
//!   opcodes with dynamic dispatch per character, which is why the paper
//!   measures it in "several minutes" against seconds for compiled code.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use seqdb_types::{DbError, Result};

/// Timing of a script's sequential phases (the Figure 7 shape).
#[derive(Debug, Clone, Default)]
pub struct ScriptTrace {
    pub phases: Vec<(String, Duration)>,
    pub records: u64,
    /// Cores used — always 1 for scripts; the engine reports its DOP.
    pub cores_used: usize,
}

impl ScriptTrace {
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    fn phase(&mut self, name: &str, start: Instant) {
        self.phases.push((name.to_string(), start.elapsed()));
    }
}

/// The §4.2.1 binning Perl script: unique N-free reads ranked by
/// frequency. Returns `(ranked tags, trace)` and writes the result file.
pub fn binning_script(fastq: &Path, out: &Path) -> Result<(Vec<(String, u64)>, ScriptTrace)> {
    let mut trace = ScriptTrace {
        cores_used: 1,
        ..ScriptTrace::default()
    };

    // Phase 1: slurp — the script reads *everything* into memory first
    // (Figure 7's long read phase), one freshly allocated String per line.
    let t = Instant::now();
    let reader = BufReader::new(File::open(fastq)?);
    let mut seqs: Vec<String> = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        if line_no % 4 == 1 {
            seqs.push(line.to_string());
        }
    }
    trace.records = seqs.len() as u64;
    trace.phase("read", t);

    // Phase 2: process — hash-count, filter Ns, sort by count.
    let t = Instant::now();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for s in &seqs {
        if !s.contains('N') {
            // The script keys its hash with a fresh copy per record.
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    trace.phase("process", t);

    // Phase 3: write.
    let t = Instant::now();
    let mut w = BufWriter::new(File::create(out)?);
    for (rank, (tag, count)) in ranked.iter().enumerate() {
        writeln!(w, "{}\t{}\t{}", rank + 1, count, tag)?;
    }
    w.flush()?;
    trace.phase("write", t);

    Ok((ranked, trace))
}

/// Script flavour of the gene expression analysis (§4.2.2): join the
/// alignment text with the gene annotation by position, aggregate per
/// gene. Inputs are the dataset's text artifacts.
/// One output row of the gene-expression script: gene name, tag count,
/// distinct-position count.
pub type GeneExpressionRow = (String, u64, u64);

pub fn gene_expression_script(
    alignments_txt: &Path,
    genes_txt: &Path,
    out: &Path,
) -> Result<(Vec<GeneExpressionRow>, ScriptTrace)> {
    let mut trace = ScriptTrace {
        cores_used: 1,
        ..ScriptTrace::default()
    };

    // Phase 1: load both inputs fully.
    let t = Instant::now();
    // gene anchor position -> gene name (tag anchored at gene end).
    let mut anchor_to_gene: HashMap<(String, u64), String> = HashMap::new();
    for line in BufReader::new(File::open(genes_txt)?).lines() {
        let line = line?;
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 4 {
            return Err(DbError::InvalidData(format!("bad gene line: {line}")));
        }
        let start: u64 = f[2].parse().map_err(|_| bad(&line))?;
        let len: u64 = f[3].parse().map_err(|_| bad(&line))?;
        anchor_to_gene.insert((f[1].to_string(), start + len), f[0].to_string());
    }
    let mut alignments: Vec<(String, u64, String, u64)> = Vec::new(); // tag, freq, chrom, pos1
    for line in BufReader::new(File::open(alignments_txt)?).lines() {
        let line = line?;
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() < 4 {
            return Err(DbError::InvalidData(format!("bad alignment line: {line}")));
        }
        alignments.push((
            f[0].to_string(),
            f[1].parse().map_err(|_| bad(&line))?,
            f[2].to_string(),
            f[3].parse().map_err(|_| bad(&line))?,
        ));
    }
    trace.records = alignments.len() as u64;
    trace.phase("read", t);

    // Phase 2: join + aggregate.
    let t = Instant::now();
    let mut per_gene: HashMap<String, (u64, u64)> = HashMap::new();
    for (tag, freq, chrom, pos1) in &alignments {
        let anchor = pos1 - 1 + tag.len() as u64;
        if let Some(g) = anchor_to_gene.get(&(chrom.clone(), anchor)) {
            let e = per_gene.entry(g.clone()).or_default();
            e.0 += freq;
            e.1 += 1;
        }
    }
    let mut result: Vec<(String, u64, u64)> =
        per_gene.into_iter().map(|(g, (f, c))| (g, f, c)).collect();
    result.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    trace.phase("process", t);

    // Phase 3: write.
    let t = Instant::now();
    let mut w = BufWriter::new(File::create(out)?);
    for (g, f, c) in &result {
        writeln!(w, "{g}\t{f}\t{c}")?;
    }
    w.flush()?;
    trace.phase("write", t);
    Ok((result, trace))
}

fn bad(line: &str) -> DbError {
    DbError::InvalidData(format!("unparseable field in: {line}"))
}

/// Script flavour of consensus calling: slurp the alignment text, build
/// the full per-chromosome pileup in memory (the blocking shape), call
/// and write FASTA. `chrom_lens` comes from the reference.
pub fn consensus_script(
    alignments_txt: &Path,
    chrom_lens: &[(String, usize)],
    out: &Path,
) -> Result<(Vec<(String, String)>, ScriptTrace)> {
    use seqdb_bio::consensus::PileupConsensus;
    use seqdb_bio::quality::Phred;

    let mut trace = ScriptTrace {
        cores_used: 1,
        ..ScriptTrace::default()
    };

    let t = Instant::now();
    let mut rows: Vec<(String, u64, String)> = Vec::new(); // chrom, pos1, seq
    for line in BufReader::new(File::open(alignments_txt)?).lines() {
        let line = line?;
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() < 7 {
            return Err(DbError::InvalidData(format!("bad alignment line: {line}")));
        }
        rows.push((
            f[1].to_string(),
            f[2].parse().map_err(|_| bad(&line))?,
            f[6].to_string(),
        ));
    }
    trace.records = rows.len() as u64;
    trace.phase("read", t);

    let t = Instant::now();
    let mut pileups: HashMap<String, PileupConsensus> = chrom_lens
        .iter()
        .map(|(name, len)| (name.clone(), PileupConsensus::new(*len)))
        .collect();
    for (chrom, pos1, seq) in &rows {
        let p = pileups
            .get_mut(chrom)
            .ok_or_else(|| DbError::InvalidData(format!("unknown chromosome {chrom}")))?;
        // The text export carries no qualities; scripts typically ignore
        // them (the paper: "many algorithms simply ignore those quality
        // values") — weight every base equally.
        let quals = vec![Phred(30); seq.len()];
        p.add((*pos1 as usize) - 1, seq.as_bytes(), &quals)?;
    }
    let mut result: Vec<(String, String)> = Vec::new();
    for (name, _) in chrom_lens {
        let pileup = pileups.remove(name).expect("inserted above");
        let c = pileup.finish();
        result.push((name.clone(), String::from_utf8_lossy(&c.seq).into_owned()));
    }
    trace.phase("process", t);

    let t = Instant::now();
    let mut w = BufWriter::new(File::create(out)?);
    for (name, seq) in &result {
        writeln!(w, ">{name}")?;
        for chunk in seq.as_bytes().chunks(60) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    w.flush()?;
    trace.phase("write", t);
    Ok((result, trace))
}

// ----------------------------------------------------------------------
// The interpreted row-at-a-time procedure (§5.2's slowest rung).
// ----------------------------------------------------------------------

/// Interpreter state: a couple of registers driven by per-byte opcodes.
struct InterpState {
    line_start: bool,
    line_index: u64,
    count: u64,
}

type Op = Box<dyn Fn(&mut InterpState, u8)>;

/// Count FASTQ records through a deliberately interpreted evaluator:
/// every input byte passes through a chain of boxed closures (dynamic
/// dispatch, no inlining) — the analogue of an interpreted T-SQL
/// procedure fetching one value at a time.
pub fn interpreted_count(path: &Path) -> Result<u64> {
    let mut ops: Vec<Op> = Vec::new();
    ops.push(Box::new(|st: &mut InterpState, b: u8| {
        if st.line_start && st.line_index.is_multiple_of(4) && b == b'@' {
            st.count += 1;
        }
    }));
    ops.push(Box::new(|st: &mut InterpState, b: u8| {
        if b == b'\n' {
            st.line_index += 1;
        }
    }));
    ops.push(Box::new(|st: &mut InterpState, b: u8| {
        st.line_start = b == b'\n';
    }));

    let mut st = InterpState {
        line_start: true,
        line_index: 0,
        count: 0,
    };
    let mut reader = BufReader::new(File::open(path)?);
    let mut buf = [0u8; 4096];
    loop {
        use std::io::Read;
        let n = reader.read(&mut buf)?;
        if n == 0 {
            break;
        }
        for &b in &buf[..n] {
            for op in &ops {
                op(&mut st, b);
            }
        }
    }
    Ok(st.count)
}

/// Binning through the interpreter — the closest analogue of the actual
/// *Perl* script of §5.3.2. Perl pays interpreter dispatch on every
/// operation; this implementation routes every character of the input
/// and every hash-key operation through boxed closures the same way
/// [`interpreted_count`] does, restoring the constant factor the paper's
/// comparison rests on. Produces byte-identical output to
/// [`binning_script`].
pub fn interpreted_binning_script(
    fastq: &Path,
    out: &Path,
) -> Result<(Vec<(String, u64)>, ScriptTrace)> {
    let mut trace = ScriptTrace {
        cores_used: 1,
        ..ScriptTrace::default()
    };

    // "Opcodes" of the interpreted record loop.
    struct St {
        line: Vec<u8>,
        line_index: u64,
        seqs: Vec<String>,
    }
    type StOp = Box<dyn Fn(&mut St, u8)>;
    let ops: Vec<StOp> = vec![
        Box::new(|st, b| {
            if b != b'\n' {
                st.line.push(b);
            }
        }),
        Box::new(|st, b| {
            if b == b'\n' {
                if st.line_index % 4 == 1 {
                    st.seqs.push(String::from_utf8_lossy(&st.line).into_owned());
                }
                st.line.clear();
                st.line_index += 1;
            }
        }),
    ];

    // Phase 1: read everything through the interpreter loop.
    let t = Instant::now();
    let mut st = St {
        line: Vec::new(),
        line_index: 0,
        seqs: Vec::new(),
    };
    {
        use std::io::Read;
        let mut reader = BufReader::new(File::open(fastq)?);
        let mut buf = [0u8; 4096];
        loop {
            let n = reader.read(&mut buf)?;
            if n == 0 {
                break;
            }
            for &b in &buf[..n] {
                for op in &ops {
                    op(&mut st, b);
                }
            }
        }
    }
    trace.records = st.seqs.len() as u64;
    trace.phase("read", t);

    // Phase 2: filter + count, with the N-check and the hash updates
    // also going through boxed per-character predicates.
    let t = Instant::now();
    let has_n: Box<dyn Fn(&str) -> bool> = Box::new(|s| {
        let pred: Box<dyn Fn(char) -> bool> = Box::new(|c| c == 'N');
        s.chars().any(&*pred)
    });
    let mut counts: HashMap<String, u64> = HashMap::new();
    for s in &st.seqs {
        if !has_n(s) {
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
    type RankCmp = Box<dyn Fn(&(String, u64), &(String, u64)) -> std::cmp::Ordering>;
    let cmp: RankCmp = Box::new(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.sort_by(|a, b| cmp(a, b));
    trace.phase("process", t);

    // Phase 3: write.
    let t = Instant::now();
    let mut w = BufWriter::new(File::create(out)?);
    for (rank, (tag, count)) in ranked.iter().enumerate() {
        writeln!(w, "{}\t{}\t{}", rank + 1, count, tag)?;
    }
    w.flush()?;
    trace.phase("write", t);
    Ok((ranked, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{bin_unique_tags, DgeDataset, Scale};

    fn dataset() -> DgeDataset {
        let d = std::env::temp_dir().join(format!("seqdb-base-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        DgeDataset::generate(
            &d,
            &Scale {
                genome_bp: 50_000,
                n_chromosomes: 3,
                n_reads: 1200,
                seed: 13,
            },
        )
        .unwrap()
    }

    #[test]
    fn binning_script_matches_ground_truth() {
        let ds = dataset();
        let out = ds.dir.join("script_tags.txt");
        let (ranked, trace) = binning_script(&ds.fastq_path, &out).unwrap();
        let expected = bin_unique_tags(&ds.reads);
        assert_eq!(ranked.len(), expected.len());
        // Same histogram (order among ties may differ only by our
        // deterministic tiebreak, which both sides share).
        assert_eq!(ranked, expected);
        assert_eq!(trace.records, 1200);
        assert_eq!(trace.phases.len(), 3);
        assert_eq!(trace.cores_used, 1);
        assert!(out.exists());
        std::fs::remove_dir_all(&ds.dir).unwrap();
    }

    #[test]
    fn gene_expression_script_matches_dataset() {
        let ds = dataset();
        let out = ds.dir.join("script_expr.txt");
        let (result, _) =
            gene_expression_script(&ds.alignments_path, &ds.genes_path, &out).unwrap();
        let expected: Vec<(String, u64, u64)> = ds
            .gene_expression
            .iter()
            .map(|(g, f, c)| (format!("GENE{g:05}"), *f, *c))
            .collect();
        assert_eq!(result, expected);
        std::fs::remove_dir_all(&ds.dir).unwrap();
    }

    #[test]
    fn interpreted_binning_matches_compiled_script() {
        let ds = dataset();
        let out_a = ds.dir.join("a.txt");
        let out_b = ds.dir.join("b.txt");
        let (a, _) = binning_script(&ds.fastq_path, &out_a).unwrap();
        let (b, tr) = interpreted_binning_script(&ds.fastq_path, &out_b).unwrap();
        assert_eq!(a, b);
        assert_eq!(tr.records, 1200);
        assert_eq!(
            std::fs::read(&out_a).unwrap(),
            std::fs::read(&out_b).unwrap()
        );
        std::fs::remove_dir_all(&ds.dir).unwrap();
    }

    #[test]
    fn interpreted_count_agrees_with_parser() {
        let ds = dataset();
        let n = interpreted_count(&ds.fastq_path).unwrap();
        assert_eq!(n, 1200);
        std::fs::remove_dir_all(&ds.dir).unwrap();
    }

    #[test]
    fn consensus_script_produces_chromosome_sequences() {
        use crate::dataset::ResequencingDataset;
        let d = std::env::temp_dir().join(format!("seqdb-base-cons-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        let ds = ResequencingDataset::generate(
            &d,
            &Scale {
                genome_bp: 30_000,
                n_chromosomes: 2,
                n_reads: 3000,
                seed: 5,
            },
        )
        .unwrap();
        let lens: Vec<(String, usize)> = ds
            .reference
            .chromosomes
            .iter()
            .map(|c| (c.name.clone(), c.len()))
            .collect();
        let out = d.join("consensus.fa");
        let (result, trace) = consensus_script(&ds.alignments_path, &lens, &out).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].1.len(), lens[0].1);
        // With ~3000 36bp reads over 30kbp (3.6x coverage) most positions
        // are called.
        let called = result[0].1.bytes().filter(|&b| b != b'N').count();
        assert!(
            called * 10 > result[0].1.len() * 8,
            "{called}/{}",
            result[0].1.len()
        );
        assert!(trace.total() > Duration::ZERO);
        std::fs::remove_dir_all(&d).unwrap();
    }
}

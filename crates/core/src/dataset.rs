//! Synthetic datasets for the paper's two scenarios.
//!
//! Each generator produces both the *file-centric* artifacts (the level-1
//! FASTQ, level-2 alignment text and level-3 analysis text that the
//! "Files" column of Tables 1–2 measures) and in-memory structures the
//! importers load into the database designs.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use seqdb_bio::align::{Aligner, AlignerConfig, Alignment};
use seqdb_bio::fastq::{write_fastq_record, FastqRecord};
use seqdb_bio::reference::ReferenceGenome;
use seqdb_bio::simulate::{DgeSimulator, LaneConfig, ReadSimulator, SimGene, SimulatedRead};
use seqdb_types::Result;

use crate::udx::DB_QUAL_ENCODING;

/// Scale knobs shared by both scenarios.
#[derive(Debug, Clone)]
pub struct Scale {
    pub genome_bp: usize,
    pub n_chromosomes: usize,
    pub n_reads: usize,
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Scale {
        Scale {
            genome_bp: 400_000,
            n_chromosomes: 5,
            n_reads: 20_000,
            seed: 2009,
        }
    }
}

/// One alignment of a unique tag (DGE) or read (re-sequencing), plus the
/// id of what it aligns.
#[derive(Debug, Clone)]
pub struct DatasetAlignment {
    /// Index into the unique-tag list (DGE) or read list (re-sequencing).
    pub subject: u32,
    pub alignment: Alignment,
    /// Gene hit (DGE only).
    pub gene_id: Option<u32>,
}

/// The digital gene expression dataset (paper §2.1.2 / Table 1).
pub struct DgeDataset {
    pub dir: PathBuf,
    pub fastq_path: PathBuf,
    pub unique_tags_path: PathBuf,
    pub alignments_path: PathBuf,
    pub gene_expr_path: PathBuf,
    pub genes_path: PathBuf,
    pub reference: Arc<ReferenceGenome>,
    pub genes: Vec<SimGene>,
    /// The raw tag reads (level-1 data).
    pub reads: Vec<FastqRecord>,
    /// Unique tags with frequencies, descending (the §4.2.1 binning
    /// output).
    pub unique_tags: Vec<(String, u64)>,
    /// Alignments of the unique tags.
    pub alignments: Vec<DatasetAlignment>,
    /// Gene expression result: (gene_id, total_frequency, tag_count).
    pub gene_expression: Vec<(u32, u64, u64)>,
}

/// Bin reads into unique N-free tags with frequencies, descending (the
/// §4.2.1 analysis, used both by the dataset generator and tests).
pub fn bin_unique_tags(reads: &[FastqRecord]) -> Vec<(String, u64)> {
    let mut counts: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for r in reads {
        if !r.seq.contains('N') {
            *counts.entry(r.seq.as_str()).or_default() += 1;
        }
    }
    let mut out: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(s, c)| (s.to_string(), c))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

impl DgeDataset {
    /// Generate the full DGE lane: simulate tags, write the level-1
    /// FASTQ, bin unique tags, align them, map to genes and aggregate
    /// expression — writing each phase's file artifact.
    pub fn generate(dir: &Path, scale: &Scale) -> Result<DgeDataset> {
        std::fs::create_dir_all(dir)?;
        let reference = Arc::new(ReferenceGenome::synthetic(
            scale.seed,
            scale.n_chromosomes,
            scale.genome_bp,
        ));
        let n_genes = (scale.n_reads / 100).clamp(20, 2000);
        let mut sim = DgeSimulator::new(
            LaneConfig::default(),
            &reference,
            n_genes,
            1.05,
            scale.seed ^ 0xD6E,
        );
        let reads = sim.lane(scale.n_reads);
        let genes = sim.genes.clone();

        // Level-1 artifact: the FASTQ file.
        let fastq_path = dir.join("lane_s_1.fastq");
        {
            let mut w = BufWriter::new(File::create(&fastq_path)?);
            for r in &reads {
                write_fastq_record(&mut w, r, DB_QUAL_ENCODING)?;
            }
            w.flush()?;
        }

        // Binning (the Perl-script step of §4.2.1).
        let unique_tags = bin_unique_tags(&reads);
        let unique_tags_path = dir.join("unique_tags.txt");
        {
            let mut w = BufWriter::new(File::create(&unique_tags_path)?);
            for (rank, (tag, count)) in unique_tags.iter().enumerate() {
                writeln!(w, "{}\t{}\t{}", rank + 1, count, tag)?;
            }
            w.flush()?;
        }

        // Align unique tags (phase-2, MAQ-equivalent).
        let aligner = Aligner::new(reference.clone(), AlignerConfig::default());
        // Gene lookup: exact tag anchor position -> gene.
        let mut tag_pos_to_gene: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        for g in &genes {
            let anchor = (g.start + g.len - g.tag.len()) as u32;
            tag_pos_to_gene.insert((g.chrom as u32, anchor), g.gene_id);
        }
        let mut alignments = Vec::new();
        for (i, (tag, _freq)) in unique_tags.iter().enumerate() {
            let quals = vec![seqdb_bio::quality::Phred(30); tag.len()];
            if let Some(a) = aligner.align(tag, &quals) {
                let gene_id = tag_pos_to_gene.get(&(a.chrom, a.pos)).copied();
                alignments.push(DatasetAlignment {
                    subject: i as u32,
                    alignment: a,
                    gene_id,
                });
            }
        }

        // Level-2 artifact: the alignment text export.
        let alignments_path = dir.join("alignments.txt");
        {
            let mut w = BufWriter::new(File::create(&alignments_path)?);
            for da in &alignments {
                let (tag, freq) = &unique_tags[da.subject as usize];
                let chrom = &reference.chromosomes[da.alignment.chrom as usize];
                writeln!(
                    w,
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    tag,
                    freq,
                    chrom.name,
                    da.alignment.pos + 1,
                    da.alignment.strand.symbol(),
                    da.alignment.mapq,
                    da.alignment.mismatches,
                )?;
            }
            w.flush()?;
        }

        // Gene table artifact (reference annotation used by scripts).
        let genes_path = dir.join("genes.txt");
        {
            let mut w = BufWriter::new(File::create(&genes_path)?);
            for g in &genes {
                writeln!(
                    w,
                    "GENE{:05}\t{}\t{}\t{}",
                    g.gene_id, reference.chromosomes[g.chrom].name, g.start, g.len
                )?;
            }
            w.flush()?;
        }

        // Level-3: gene expression (the Query 2 result).
        let mut per_gene: std::collections::HashMap<u32, (u64, u64)> =
            std::collections::HashMap::new();
        for da in &alignments {
            if let Some(g) = da.gene_id {
                let freq = unique_tags[da.subject as usize].1;
                let e = per_gene.entry(g).or_default();
                e.0 += freq;
                e.1 += 1;
            }
        }
        let mut gene_expression: Vec<(u32, u64, u64)> =
            per_gene.into_iter().map(|(g, (f, c))| (g, f, c)).collect();
        gene_expression.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let gene_expr_path = dir.join("gene_expression.txt");
        {
            let mut w = BufWriter::new(File::create(&gene_expr_path)?);
            for (g, f, c) in &gene_expression {
                writeln!(w, "GENE{g:05}\t{f}\t{c}")?;
            }
            w.flush()?;
        }

        Ok(DgeDataset {
            dir: dir.to_path_buf(),
            fastq_path,
            unique_tags_path,
            alignments_path,
            gene_expr_path,
            genes_path,
            reference,
            genes,
            reads,
            unique_tags,
            alignments,
            gene_expression,
        })
    }
}

/// The re-sequencing dataset (1000 Genomes, §2.1.1 / Table 2).
///
/// Reads are sequenced from a *donor individual* — the reference genome
/// with SNPs planted at ~1/2000 bp — and aligned back against the
/// original reference, so the tertiary analysis (consensus + SNP
/// discovery, §2.1.1) has real variants to find.
pub struct ResequencingDataset {
    pub dir: PathBuf,
    pub fastq_path: PathBuf,
    pub alignments_path: PathBuf,
    pub reference_path: PathBuf,
    pub reference: Arc<ReferenceGenome>,
    /// Ground-truth variants of the donor genome the reads came from.
    pub donor_snps: Vec<seqdb_bio::snp::PlantedSnp>,
    pub reads: Vec<SimulatedRead>,
    pub alignments: Vec<DatasetAlignment>,
}

impl ResequencingDataset {
    pub fn generate(dir: &Path, scale: &Scale) -> Result<ResequencingDataset> {
        std::fs::create_dir_all(dir)?;
        let reference = Arc::new(ReferenceGenome::synthetic(
            scale.seed ^ 0x1000,
            scale.n_chromosomes,
            scale.genome_bp,
        ));
        let reference_path = dir.join("reference.fa");
        {
            let mut w = BufWriter::new(File::create(&reference_path)?);
            reference.to_fasta(&mut w)?;
            w.flush()?;
        }
        // The individual being sequenced differs from the reference.
        let (donor, donor_snps) =
            seqdb_bio::snp::plant_snps(&reference, 0.0005, scale.seed ^ 0x5A9);
        let mut sim = ReadSimulator::new(LaneConfig::default(), scale.seed ^ 0x2000);
        let reads = sim.lane(&donor, scale.n_reads);
        let fastq_path = dir.join("lane_s_1.fastq");
        {
            let mut w = BufWriter::new(File::create(&fastq_path)?);
            for r in &reads {
                write_fastq_record(&mut w, &r.record, DB_QUAL_ENCODING)?;
            }
            w.flush()?;
        }
        let aligner = Aligner::new(reference.clone(), AlignerConfig::default());
        let mut alignments = Vec::new();
        for (i, r) in reads.iter().enumerate() {
            if let Some(a) = aligner.align(&r.record.seq, &r.record.quals) {
                alignments.push(DatasetAlignment {
                    subject: i as u32,
                    alignment: a,
                    gene_id: None,
                });
            }
        }
        let alignments_path = dir.join("alignments.txt");
        {
            let mut w = BufWriter::new(File::create(&alignments_path)?);
            for da in &alignments {
                let read = &reads[da.subject as usize].record;
                let chrom = &reference.chromosomes[da.alignment.chrom as usize];
                // mapview convention: '-'-strand reads are printed in
                // reference (forward) orientation.
                let oriented = match da.alignment.strand {
                    seqdb_bio::align::Strand::Forward => read.seq.clone(),
                    seqdb_bio::align::Strand::Reverse => {
                        seqdb_bio::dna::reverse_complement_str(&read.seq)?
                    }
                };
                writeln!(
                    w,
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    read.name,
                    chrom.name,
                    da.alignment.pos + 1,
                    da.alignment.strand.symbol(),
                    da.alignment.mapq,
                    da.alignment.mismatches,
                    oriented,
                )?;
            }
            w.flush()?;
        }
        Ok(ResequencingDataset {
            dir: dir.to_path_buf(),
            fastq_path,
            alignments_path,
            reference_path,
            reference,
            donor_snps,
            reads,
            alignments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seqdb-ds-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small() -> Scale {
        Scale {
            genome_bp: 60_000,
            n_chromosomes: 3,
            n_reads: 2_000,
            seed: 7,
        }
    }

    #[test]
    fn dge_dataset_is_consistent() {
        let d = dir("dge");
        let ds = DgeDataset::generate(&d, &small()).unwrap();
        assert_eq!(ds.reads.len(), 2000);
        // Tags repeat: far fewer unique tags than reads.
        assert!(ds.unique_tags.len() < 1500, "{}", ds.unique_tags.len());
        // Frequencies descending and sum <= reads (N-containing dropped).
        assert!(ds.unique_tags.windows(2).all(|w| w[0].1 >= w[1].1));
        let total: u64 = ds.unique_tags.iter().map(|(_, c)| c).sum();
        assert!(total <= 2000);
        // Most frequent tags align to a gene.
        let with_gene = ds.alignments.iter().filter(|a| a.gene_id.is_some()).count();
        assert!(
            with_gene * 2 > ds.alignments.len(),
            "{with_gene}/{}",
            ds.alignments.len()
        );
        // Expression totals match alignment bookkeeping.
        let expr_total: u64 = ds.gene_expression.iter().map(|(_, f, _)| f).sum();
        let align_total: u64 = ds
            .alignments
            .iter()
            .filter(|a| a.gene_id.is_some())
            .map(|a| ds.unique_tags[a.subject as usize].1)
            .sum();
        assert_eq!(expr_total, align_total);
        // All four artifacts exist and are non-empty.
        for p in [
            &ds.fastq_path,
            &ds.unique_tags_path,
            &ds.alignments_path,
            &ds.gene_expr_path,
        ] {
            assert!(std::fs::metadata(p).unwrap().len() > 0);
        }
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn resequencing_dataset_aligns_most_reads() {
        let d = dir("reseq");
        let ds = ResequencingDataset::generate(&d, &small()).unwrap();
        assert_eq!(ds.reads.len(), 2000);
        // Re-sequencing: alignments ≈ reads (paper: "order of magnitude
        // larger number of alignments" vs. DGE's unique tags).
        assert!(ds.alignments.len() > 1600, "{}", ds.alignments.len());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn bin_unique_tags_drops_n_and_sorts() {
        let mk = |s: &str| FastqRecord {
            name: "r".into(),
            seq: s.into(),
            quals: vec![seqdb_bio::quality::Phred(30); s.len()],
        };
        let reads = vec![mk("AAA"), mk("CCC"), mk("AAA"), mk("ANA"), mk("AAA")];
        let tags = bin_unique_tags(&reads);
        assert_eq!(tags, vec![("AAA".to_string(), 3), ("CCC".to_string(), 1)]);
    }
}

//! The paper's user-defined extensions (§3.3, §4.1, §4.2).
//!
//! * [`ListShortReadsTvf`] — the FileStream wrapper TVF of §3.3/§4.1:
//!   streams a FASTQ blob through the chunked buffer-paging parser and
//!   converts entries to rows in its `fill_row` step;
//! * [`PivotAlignmentTvf`] — Query 3's pivot: one aligned read →
//!   (position, base, qual) rows;
//! * [`CallBaseAgg`] — quality-weighted per-position base calling UDA;
//! * [`AssembleSequenceAgg`] — concatenates called bases back into a
//!   consensus string;
//! * [`AssembleConsensusAgg`] — the optimized sliding-window UDA of
//!   §4.2.3/§5.3.3: consumes `(pos, seq, quals)` in ascending position
//!   order and never materializes the pivoted intermediate. Deliberately
//!   `mergeable() == false`: the paper notes the optimizer must respect
//!   the ordered stream, so parallel plans are rejected for it;
//! * [`AlignReadsTvf`] — in-database alignment (the §6.1 future-work
//!   item), wrapping the seqdb-bio aligner.
//!
//! In-database sequences are stored as ASCII text with Sanger-encoded
//! quality strings (offset 33), like the FASTQ they came from.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use seqdb_bio::align::Aligner;
use seqdb_bio::fastq::{ChunkSource, ChunkedFastqParser, FastqEntryRef};
use seqdb_bio::quality::{Phred, QualityEncoding};
use seqdb_engine::udx::downcast_state;
use seqdb_engine::{AggState, Aggregate, Database, ExecContext, TableFunction, TvfCursor};
use seqdb_storage::FileStreamReader;
use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

/// The quality-string encoding used inside the database.
pub const DB_QUAL_ENCODING: QualityEncoding = QualityEncoding::Sanger;

fn base_index(b: u8) -> Option<usize> {
    match b.to_ascii_uppercase() {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

const BASE_CHARS: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Orient a read for pileup: reads aligned to the reverse strand must be
/// reverse-complemented (with their qualities reversed) before their
/// bases can vote at forward-strand positions. `strand` follows the
/// mapview convention: `"+"` or `"-"`.
fn orient(seq: Vec<u8>, quals: Vec<Phred>, strand: &str) -> Result<(Vec<u8>, Vec<Phred>)> {
    match strand {
        "+" | "" => Ok((seq, quals)),
        "-" => {
            let seq = seq
                .into_iter()
                .rev()
                .map(|b| match b.to_ascii_uppercase() {
                    b'A' => b'T',
                    b'T' => b'A',
                    b'C' => b'G',
                    b'G' => b'C',
                    other => other,
                })
                .collect();
            Ok((seq, quals.into_iter().rev().collect()))
        }
        other => Err(DbError::Execution(format!(
            "strand must be '+' or '-', got '{other}'"
        ))),
    }
}

fn call(sums: &[u32; 4]) -> u8 {
    let mut best = 0usize;
    for i in 1..4 {
        if sums[i] > sums[best] {
            best = i;
        }
    }
    if sums[best] == 0 {
        b'N'
    } else {
        BASE_CHARS[best]
    }
}

// ----------------------------------------------------------------------
// ListShortReads
// ----------------------------------------------------------------------

/// `ListShortReads(sample, lane, 'FastQ')`: the relational wrapper over a
/// FileStream FASTQ blob.
pub struct ListShortReadsTvf {
    /// Name of the hybrid table holding `(sample, lane, reads FILESTREAM)`.
    pub table: String,
}

impl ListShortReadsTvf {
    pub fn new(table: impl Into<String>) -> ListShortReadsTvf {
        ListShortReadsTvf {
            table: table.into(),
        }
    }
}

/// Chunk source over a FileStream reader (the `GetBytes` +
/// `SequentialAccess` path of §4.1).
struct FileStreamChunks {
    reader: FileStreamReader,
    offset: u64,
}

impl ChunkSource for FileStreamChunks {
    fn read_chunk(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.reader.get_bytes(self.offset, buf)?;
        self.offset += n as u64;
        Ok(n)
    }
}

struct ListShortReadsCursor {
    parser: ChunkedFastqParser<FileStreamChunks>,
    current: Option<(String, String, String)>,
}

impl TvfCursor for ListShortReadsCursor {
    fn move_next(&mut self) -> Result<bool> {
        // MoveNext advances the parse cursor; the String conversions stay
        // in fill_row (split per Figure 5). We must stash owned copies of
        // the entry bounds because the parser's buffer mutates on the
        // next advance.
        match self.parser.next_ref()? {
            None => {
                self.current = None;
                Ok(false)
            }
            Some(FastqEntryRef { name, seq, qual }) => {
                self.current = Some((
                    String::from_utf8_lossy(name).into_owned(),
                    String::from_utf8_lossy(seq).into_owned(),
                    String::from_utf8_lossy(qual).into_owned(),
                ));
                Ok(true)
            }
        }
    }

    fn fill_row(&mut self) -> Result<Row> {
        let (name, seq, qual) = self
            .current
            .take()
            .ok_or_else(|| DbError::Execution("fill_row before move_next".into()))?;
        let len = seq.len() as i64;
        Ok(Row::new(vec![
            Value::text(name),
            Value::text(seq),
            Value::text(qual),
            Value::Int(len),
        ]))
    }
}

impl TableFunction for ListShortReadsTvf {
    fn name(&self) -> &str {
        "ListShortReads"
    }

    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("read_name", DataType::Text).not_null(),
            Column::new("short_read_seq", DataType::Text).not_null(),
            Column::new("quals", DataType::Text).not_null(),
            Column::new("read_len", DataType::Int).not_null(),
        ]))
    }

    fn open(&self, args: &[Value], ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        let [sample, lane, format] = args else {
            return Err(DbError::Execution(
                "ListShortReads(sample, lane, format) expects three arguments".into(),
            ));
        };
        if !format.as_text()?.eq_ignore_ascii_case("fastq") {
            return Err(DbError::Unsupported(format!(
                "ListShortReads format '{}' (only FastQ)",
                format.as_text()?
            )));
        }
        let sample = sample.as_int()?;
        let lane = lane.as_int()?;
        // Locate the blob row.
        let table = ctx.catalog.table(&self.table)?;
        let s_idx = table.schema.resolve("sample")?;
        let l_idx = table.schema.resolve("lane")?;
        let r_idx = table.schema.resolve("reads")?;
        let mut guid = None;
        for item in table.heap.scan() {
            let (_, row) = item?;
            if row[s_idx] == Value::Int(sample) && row[l_idx] == Value::Int(lane) {
                guid = Some(row[r_idx].as_guid()?);
                break;
            }
        }
        let guid = guid.ok_or_else(|| {
            DbError::NotFound(format!(
                "no FileStream row for sample {sample}, lane {lane} in {}",
                self.table
            ))
        })?;
        let reader = ctx.filestream.open_reader(guid, true)?;
        Ok(Box::new(ListShortReadsCursor {
            parser: ChunkedFastqParser::new(FileStreamChunks { reader, offset: 0 }),
            current: None,
        }))
    }
}

// ----------------------------------------------------------------------
// PivotAlignment
// ----------------------------------------------------------------------

/// `PivotAlignment(pos, seq, quals)`: one row per aligned base.
pub struct PivotAlignmentTvf;

struct PivotCursor {
    pos: i64,
    seq: Vec<u8>,
    quals: Vec<Phred>,
    idx: usize,
    started: bool,
}

impl TvfCursor for PivotCursor {
    fn move_next(&mut self) -> Result<bool> {
        if self.started {
            self.idx += 1;
        } else {
            self.started = true;
        }
        Ok(self.idx < self.seq.len())
    }

    fn fill_row(&mut self) -> Result<Row> {
        let i = self.idx;
        Ok(Row::new(vec![
            Value::Int(self.pos + i as i64),
            Value::text((self.seq[i] as char).to_string()),
            Value::Int(self.quals[i].0 as i64),
        ]))
    }
}

impl TableFunction for PivotAlignmentTvf {
    fn name(&self) -> &str {
        "PivotAlignment"
    }

    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("position", DataType::Int).not_null(),
            Column::new("base", DataType::Text).not_null(),
            Column::new("qual", DataType::Int).not_null(),
        ]))
    }

    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        let (pos, seq, quals, strand) = match args {
            [pos, seq, quals] => (pos, seq, quals, "+"),
            [pos, seq, quals, strand] => (pos, seq, quals, strand.as_text()?),
            _ => {
                return Err(DbError::Execution(
                    "PivotAlignment(pos, seq, quals[, strand]) expects 3 or 4 arguments".into(),
                ))
            }
        };
        let seq = seq.as_text()?.as_bytes().to_vec();
        let quals = DB_QUAL_ENCODING.decode(quals.as_text()?)?;
        if quals.len() != seq.len() {
            return Err(DbError::InvalidData(format!(
                "PivotAlignment: {} bases but {} qualities",
                seq.len(),
                quals.len()
            )));
        }
        let (seq, quals) = orient(seq, quals, strand)?;
        Ok(Box::new(PivotCursor {
            pos: pos.as_int()?,
            seq,
            quals,
            idx: 0,
            started: false,
        }))
    }
}

// ----------------------------------------------------------------------
// CallBase
// ----------------------------------------------------------------------

/// `CallBase(base, qual)`: quality-weighted consensus base for one
/// position's pivoted pileup.
pub struct CallBaseAgg;

#[derive(Default)]
pub struct CallBaseState {
    sums: [u32; 4],
}

impl AggState for CallBaseState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        let [base, qual] = args else {
            return Err(DbError::Execution("CallBase(base, qual)".into()));
        };
        if base.is_null() {
            return Ok(());
        }
        let b = base.as_text()?.as_bytes();
        if b.len() != 1 {
            return Err(DbError::Execution(format!(
                "CallBase expects single-character bases, got '{}'",
                base.as_text()?
            )));
        }
        if let Some(i) = base_index(b[0]) {
            self.sums[i] += qual.as_int()?.max(0) as u32;
        }
        Ok(())
    }

    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        let o = downcast_state::<CallBaseState>(other, "CallBase")?;
        for i in 0..4 {
            self.sums[i] += o.sums[i];
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<Value> {
        Ok(Value::text((call(&self.sums) as char).to_string()))
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl Aggregate for CallBaseAgg {
    fn name(&self) -> &str {
        "CallBase"
    }
    fn create(&self) -> Box<dyn AggState> {
        Box::new(CallBaseState::default())
    }
}

// ----------------------------------------------------------------------
// AssembleSequence
// ----------------------------------------------------------------------

/// `AssembleSequence(position, base)`: concatenate called bases into the
/// consensus string, filling uncovered interior positions with `N`.
pub struct AssembleSequenceAgg;

#[derive(Default)]
pub struct AssembleSequenceState {
    parts: Vec<(i64, u8)>,
}

impl AggState for AssembleSequenceState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        let [pos, base] = args else {
            return Err(DbError::Execution(
                "AssembleSequence(position, base)".into(),
            ));
        };
        let b = base.as_text()?.as_bytes();
        if b.len() != 1 {
            return Err(DbError::Execution(
                "AssembleSequence expects single-character bases".into(),
            ));
        }
        self.parts.push((pos.as_int()?, b[0]));
        Ok(())
    }

    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        let o = downcast_state::<AssembleSequenceState>(other, "AssembleSequence")?;
        self.parts.extend(o.parts);
        Ok(())
    }

    fn finish(&mut self) -> Result<Value> {
        if self.parts.is_empty() {
            return Ok(Value::text(""));
        }
        self.parts.sort_by_key(|(p, _)| *p);
        let start = self.parts[0].0;
        let end = self.parts.last().expect("non-empty").0;
        let mut out = vec![b'N'; (end - start + 1) as usize];
        for &(p, b) in &self.parts {
            out[(p - start) as usize] = b;
        }
        Ok(Value::text(String::from_utf8_lossy(&out)))
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl Aggregate for AssembleSequenceAgg {
    fn name(&self) -> &str {
        "AssembleSequence"
    }
    fn create(&self) -> Box<dyn AggState> {
        Box::new(AssembleSequenceState::default())
    }
}

// ----------------------------------------------------------------------
// AssembleConsensus (sliding window)
// ----------------------------------------------------------------------

/// `AssembleConsensus(pos, seq, quals)`: the optimized one-pass UDA.
/// Input must arrive in ascending `pos` order (the plan scans the
/// `(a_chr_id, a_pos)` clustered index); holds a read-length-sized
/// window instead of the chromosome-sized pivot.
pub struct AssembleConsensusAgg;

#[derive(Default)]
pub struct AssembleConsensusState {
    window: VecDeque<[u32; 4]>,
    window_start: i64,
    out: Vec<u8>,
    first_pos: Option<i64>,
    last_pos: i64,
    /// High-water mark of the window (memory accounting for §5.3.3).
    pub max_window: usize,
}

impl AssembleConsensusState {
    fn flush_below(&mut self, pos: i64) {
        while self.window_start < pos {
            match self.window.pop_front() {
                Some(sums) => self.out.push(call(&sums)),
                None => self.out.push(b'N'),
            }
            self.window_start += 1;
        }
    }
}

impl AggState for AssembleConsensusState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        let (pos, seq, quals, strand) = match args {
            [pos, seq, quals] => (pos, seq, quals, "+"),
            [pos, seq, quals, strand] => (pos, seq, quals, strand.as_text()?),
            _ => {
                return Err(DbError::Execution(
                    "AssembleConsensus(pos, seq, quals[, strand])".into(),
                ))
            }
        };
        let pos = pos.as_int()?;
        let quals_v = DB_QUAL_ENCODING.decode(quals.as_text()?)?;
        let seq_v = seq.as_text()?.as_bytes().to_vec();
        if quals_v.len() != seq_v.len() {
            return Err(DbError::InvalidData(
                "AssembleConsensus: sequence/quality length mismatch".into(),
            ));
        }
        let (seq_v, quals_v) = orient(seq_v, quals_v, strand)?;
        let seq = &seq_v[..];
        let quals = quals_v;
        if pos < self.last_pos {
            return Err(DbError::Execution(format!(
                "AssembleConsensus requires input ordered by position ({pos} after {})",
                self.last_pos
            )));
        }
        if self.first_pos.is_none() {
            self.first_pos = Some(pos);
            self.window_start = pos;
        }
        self.last_pos = pos;
        self.flush_below(pos);
        let need = pos + seq.len() as i64 - self.window_start;
        while (self.window.len() as i64) < need {
            self.window.push_back([0; 4]);
        }
        self.max_window = self.max_window.max(self.window.len());
        for (i, &b) in seq.iter().enumerate() {
            if let Some(bi) = base_index(b) {
                let cell = &mut self.window[(pos - self.window_start) as usize + i];
                cell[bi] += quals[i].0 as u32;
            }
        }
        Ok(())
    }

    fn merge(&mut self, _other: Box<dyn AggState>) -> Result<()> {
        Err(DbError::Execution(
            "AssembleConsensus consumes an ordered stream and cannot merge partial states".into(),
        ))
    }

    fn finish(&mut self) -> Result<Value> {
        while let Some(sums) = self.window.pop_front() {
            self.out.push(call(&sums));
        }
        Ok(Value::text(String::from_utf8_lossy(&self.out)))
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl Aggregate for AssembleConsensusAgg {
    fn name(&self) -> &str {
        "AssembleConsensus"
    }
    fn create(&self) -> Box<dyn AggState> {
        Box::new(AssembleConsensusState::default())
    }
    fn mergeable(&self) -> bool {
        false // ordered-stream aggregate: no parallel partial/final plan
    }
}

// ----------------------------------------------------------------------
// AlignReads (future-work §6.1: alignment inside the database)
// ----------------------------------------------------------------------

/// `AlignReads(seq, quals)`: align one read in-process; zero or one
/// output row. Used via CROSS APPLY from the Read table.
pub struct AlignReadsTvf {
    aligner: Arc<Aligner>,
}

impl AlignReadsTvf {
    pub fn new(aligner: Arc<Aligner>) -> AlignReadsTvf {
        AlignReadsTvf { aligner }
    }
}

struct AlignCursor {
    row: Option<Row>,
    done: bool,
}

impl TvfCursor for AlignCursor {
    fn move_next(&mut self) -> Result<bool> {
        if self.done {
            return Ok(false);
        }
        self.done = true;
        Ok(self.row.is_some())
    }
    fn fill_row(&mut self) -> Result<Row> {
        self.row
            .take()
            .ok_or_else(|| DbError::Execution("fill_row on empty alignment".into()))
    }
}

impl TableFunction for AlignReadsTvf {
    fn name(&self) -> &str {
        "AlignReads"
    }

    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("al_chr_id", DataType::Int).not_null(),
            Column::new("al_chr_name", DataType::Text).not_null(),
            Column::new("al_pos", DataType::Int).not_null(),
            Column::new("al_strand", DataType::Text).not_null(),
            Column::new("al_mismatches", DataType::Int).not_null(),
            Column::new("al_mapq", DataType::Int).not_null(),
        ]))
    }

    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        let [seq, quals] = args else {
            return Err(DbError::Execution("AlignReads(seq, quals)".into()));
        };
        let seq = seq.as_text()?;
        let quals = DB_QUAL_ENCODING.decode(quals.as_text()?)?;
        let row = self.aligner.align(seq, &quals).map(|a| {
            let chrom = &self.aligner.reference().chromosomes[a.chrom as usize];
            Row::new(vec![
                Value::Int(a.chrom as i64),
                Value::text(chrom.name.clone()),
                Value::Int(a.pos as i64),
                Value::text(a.strand.symbol().to_string()),
                Value::Int(a.mismatches as i64),
                Value::Int(a.mapq as i64),
            ])
        });
        Ok(Box::new(AlignCursor { row, done: false }))
    }
}

// ----------------------------------------------------------------------
// PackSeq / UnpackSeq (the §6.1 domain-specific sequence type)
// ----------------------------------------------------------------------

/// `PACK_SEQ(text)`: encode a sequence with the 2-bit/4-bit domain codec
/// the paper proposes ("a bit-encoding of the sequences could reduce the
/// size to just about a quarter", §5.1.2).
pub struct PackSeqFn;

impl seqdb_engine::ScalarUdf for PackSeqFn {
    fn name(&self) -> &str {
        "PACK_SEQ"
    }
    fn invoke(&self, args: &[Value]) -> Result<Value> {
        match args {
            [Value::Null] => Ok(Value::Null),
            [v] => Ok(Value::bytes(
                seqdb_bio::dna::PackedSeq::from_str(v.as_text()?)?.to_bytes(),
            )),
            _ => Err(DbError::Execution("PACK_SEQ(text)".into())),
        }
    }
}

/// `UNPACK_SEQ(bytes)`: decode a packed sequence back to text.
pub struct UnpackSeqFn;

impl seqdb_engine::ScalarUdf for UnpackSeqFn {
    fn name(&self) -> &str {
        "UNPACK_SEQ"
    }
    fn invoke(&self, args: &[Value]) -> Result<Value> {
        match args {
            [Value::Null] => Ok(Value::Null),
            [v] => Ok(Value::text(
                seqdb_bio::dna::PackedSeq::from_bytes(v.as_bytes()?)?.to_string_seq(),
            )),
            _ => Err(DbError::Execution("UNPACK_SEQ(bytes)".into())),
        }
    }
}

/// Register all of the paper's extensions with a database. `aligner` is
/// optional because the DGE scenario registers before a reference is
/// loaded.
pub fn register_udx(db: &Arc<Database>, aligner: Option<Arc<Aligner>>) {
    db.catalog().register_scalar(Arc::new(PackSeqFn));
    db.catalog().register_scalar(Arc::new(UnpackSeqFn));
    db.catalog()
        .register_table_fn(Arc::new(ListShortReadsTvf::new("ShortReadFiles")));
    db.catalog().register_table_fn(Arc::new(PivotAlignmentTvf));
    db.catalog().register_aggregate(Arc::new(CallBaseAgg));
    db.catalog()
        .register_aggregate(Arc::new(AssembleSequenceAgg));
    db.catalog()
        .register_aggregate(Arc::new(AssembleConsensusAgg));
    if let Some(a) = aligner {
        db.catalog()
            .register_table_fn(Arc::new(AlignReadsTvf::new(a)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb_sql::DatabaseSqlExt;

    fn qstr(q: u8, n: usize) -> String {
        DB_QUAL_ENCODING.encode(&vec![Phred(q); n])
    }

    #[test]
    fn pivot_alignment_emits_per_base_rows() {
        let db = Database::in_memory();
        register_udx(&db, None);
        let r = db
            .query_sql(&format!(
                "SELECT position, base, qual FROM PivotAlignment(100, 'ACGT', '{}')",
                qstr(30, 4)
            ))
            .unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(
            r.rows[0].values(),
            &[Value::Int(100), Value::text("A"), Value::Int(30)]
        );
        assert_eq!(
            r.rows[3].values(),
            &[Value::Int(103), Value::text("T"), Value::Int(30)]
        );
    }

    #[test]
    fn callbase_and_assemble_in_sql() {
        let db = Database::in_memory();
        register_udx(&db, None);
        db.execute_sql_script(
            "CREATE TABLE pileup (pos INT, base VARCHAR(1), qual INT);
             INSERT INTO pileup VALUES
               (10,'A',30),(10,'A',20),(10,'T',5),
               (11,'C',40),
               (13,'G',10);",
        )
        .unwrap();
        let r = db
            .query_sql(
                "SELECT AssembleSequence(pos, b) FROM
                   (SELECT pos, CallBase(base, qual) b FROM pileup GROUP BY pos) x",
            )
            .unwrap();
        // Positions 10..13 with a gap at 12.
        assert_eq!(r.rows[0][0], Value::text("ACNG"));
    }

    #[test]
    fn full_query3_pivot_shape() {
        // The paper's Query 3, pivot variant, end to end on a toy table.
        let db = Database::in_memory();
        register_udx(&db, None);
        db.execute_sql_script(&format!(
            "CREATE TABLE al (chrom INT, pos INT, seq VARCHAR(64), quals VARCHAR(64));
             INSERT INTO al VALUES
               (1, 0, 'ACGT', '{q4}'),
               (1, 2, 'GTTT', '{q4}'),
               (2, 5, 'CC',   '{q2}');",
            q4 = qstr(30, 4),
            q2 = qstr(30, 2),
        ))
        .unwrap();
        let r = db
            .query_sql(
                "SELECT chrom, AssembleSequence(position, b)
                 FROM (SELECT chrom, position, CallBase(base, qual) b
                       FROM al
                       CROSS APPLY PivotAlignment(pos, seq, quals)
                       GROUP BY chrom, position) x
                 GROUP BY chrom
                 ORDER BY chrom",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Value::text("ACGTTT"));
        assert_eq!(r.rows[1][1], Value::text("CC"));
    }

    #[test]
    fn sliding_window_consensus_matches_pivot_plan() {
        let db = Database::in_memory();
        register_udx(&db, None);
        db.execute_sql_script(&format!(
            "CREATE TABLE al2 (chrom INT, pos INT, seq VARCHAR(64), quals VARCHAR(64));
             INSERT INTO al2 VALUES
               (1, 0, 'ACGT', '{q}'),
               (1, 2, 'GTTT', '{q}'),
               (1, 9, 'AAAA', '{q}');",
            q = qstr(30, 4),
        ))
        .unwrap();
        // Input already ordered by pos (single chromosome).
        let slide = db
            .query_sql(
                "SELECT chrom, AssembleConsensus(pos, seq, quals)
                 FROM (SELECT chrom, pos, seq, quals FROM al2 ORDER BY pos) x
                 GROUP BY chrom",
            )
            .unwrap();
        let pivot = db
            .query_sql(
                "SELECT chrom, AssembleSequence(position, b)
                 FROM (SELECT chrom, position, CallBase(base, qual) b
                       FROM al2 CROSS APPLY PivotAlignment(pos, seq, quals)
                       GROUP BY chrom, position) x
                 GROUP BY chrom",
            )
            .unwrap();
        assert_eq!(slide.rows[0][1], pivot.rows[0][1]);
        assert_eq!(slide.rows[0][1], Value::text("ACGTTTNNNAAAA"));
    }

    #[test]
    fn assemble_consensus_rejects_unordered_and_parallel() {
        let mut st = AssembleConsensusAgg.create();
        st.update(&[Value::Int(10), Value::text("AC"), Value::text(qstr(30, 2))])
            .unwrap();
        let err = st.update(&[Value::Int(5), Value::text("AC"), Value::text(qstr(30, 2))]);
        assert!(err.is_err());
        // Merge (parallel partials) is refused.
        let other = AssembleConsensusAgg.create();
        assert!(st.merge(other).is_err());
        assert!(!AssembleConsensusAgg.mergeable());
    }

    #[test]
    fn list_short_reads_streams_a_filestream_blob() {
        let db = Database::in_memory();
        register_udx(&db, None);
        crate::schema::create_filestream_schema(&db, "").unwrap();
        // Build a small FASTQ and import it as a blob.
        let mut fq = Vec::new();
        for i in 0..50 {
            let rec = seqdb_bio::fastq::FastqRecord {
                name: format!("IL4_855:1:1:{i}:{i}"),
                seq: "ACGTACGTACGT".into(),
                quals: vec![Phred(30); 12],
            };
            seqdb_bio::fastq::write_fastq_record(&mut fq, &rec, DB_QUAL_ENCODING).unwrap();
        }
        let guid = db.filestream().insert(&fq).unwrap();
        db.catalog()
            .table("ShortReadFiles")
            .unwrap()
            .insert(&Row::new(vec![
                Value::Guid(guid),
                Value::Int(855),
                Value::Int(1),
                Value::Guid(guid),
            ]))
            .unwrap();
        let r = db
            .query_sql("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(50));
        let r = db
            .query_sql(
                "SELECT read_name, short_read_seq, read_len
                 FROM ListShortReads(855, 1, 'FastQ') WHERE read_len = 12",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 50);
        assert_eq!(r.rows[0][1], Value::text("ACGTACGTACGT"));
        // Missing lane errors clearly.
        assert!(db
            .query_sql("SELECT COUNT(*) FROM ListShortReads(855, 2, 'FastQ')")
            .is_err());
    }

    #[test]
    fn align_reads_tvf_via_cross_apply() {
        use seqdb_bio::align::AlignerConfig;
        use seqdb_bio::reference::ReferenceGenome;
        let db = Database::in_memory();
        let genome = Arc::new(ReferenceGenome::synthetic(33, 2, 30_000));
        let aligner = Arc::new(Aligner::new(genome.clone(), AlignerConfig::default()));
        register_udx(&db, Some(aligner));
        // A perfect read from chr2 at position 777.
        let seq = String::from_utf8(genome.chromosomes[1].seq[777..777 + 24].to_vec()).unwrap();
        db.execute_sql("CREATE TABLE reads (r_id INT, seq VARCHAR(64), quals VARCHAR(64))")
            .unwrap();
        db.execute_sql(&format!(
            "INSERT INTO reads VALUES (1, '{seq}', '{}')",
            qstr(30, 24)
        ))
        .unwrap();
        let r = db
            .query_sql(
                "SELECT r_id, al_chr_name, al_pos, al_mismatches
                 FROM reads CROSS APPLY AlignReads(seq, quals)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Value::text("chr2"));
        assert_eq!(r.rows[0][2], Value::Int(777));
        assert_eq!(r.rows[0][3], Value::Int(0));
    }
}

//! Online hot backup and verified restore.
//!
//! The paper's instrument-attached databases hold weeks of irreplaceable
//! sequencing runs; crash recovery and the integrity scrubber protect
//! against a dying process and at-rest rot, but not against losing the
//! database directory itself. This module adds the missing leg:
//!
//! * **`BACKUP DATABASE TO '<dir>'`** — an *online*, crash-consistent
//!   backup. The backup starts with a checkpoint (flushing every dirty
//!   page and persisting the catalog snapshot), then performs a *fuzzy
//!   page copy*: every page is read straight from the durable store
//!   through the same checksum path the scrubber uses, while queries keep
//!   running. Writes that land during the copy are safe because every
//!   data-file write is WAL-logged under a commit marker first and the
//!   checkpoint lock held for the duration of the backup keeps the log
//!   from truncating: the backup finishes by capturing the log's
//!   committed images into its own `seqdb.wal` segment, which restore
//!   replays over the fuzzy copy (replay-to-backup-LSN). FileStream
//!   blobs are copied with their `.sha256` sidecars.
//! * **`INCREMENTAL FROM '<base>'`** — the `backup.manifest` records a
//!   CRC per page and a SHA-256 per blob; an incremental backup copies
//!   only pages and blobs whose content differs from the base manifest
//!   and records where unchanged content lives (content-addressed, the
//!   shape HERALD-style dataset manifests use for shipping deltas).
//! * **`RESTORE DATABASE FROM '<dir>' [TO '<target>'] [VERIFY ONLY]`** —
//!   restore resolves the incremental chain, materializes every page
//!   (set data, overlaid by the set's WAL images, falling back to the
//!   base chain), and *verifies everything before declaring success*:
//!   each page against its manifest CRC and its embedded checksum, each
//!   blob against its manifest SHA-256, the WAL segment and catalog
//!   snapshot against their recorded hashes. Any mismatch fails with the
//!   typed [`DbError::BackupCorrupt`] naming the damaged object rather
//!   than resurrecting bad data. `VERIFY ONLY` runs the same checks
//!   without writing a byte.
//!
//! The whole path is fault-injectable on the shared
//! [`FaultClock`](seqdb_storage::FaultClock): every backup-set write goes
//! through `inject_write` (I/O errors, ENOSPC) and every durability point
//! through `inject_sync` (crash-at-sync). A crash mid-backup leaves the
//! *source* untouched and the backup set detectably incomplete (the
//! manifest is written last, atomically); disk-full mid-backup removes
//! the partial set.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use seqdb_storage::counters::{storage_counters, waits, WaitClass};
use seqdb_storage::crc32c::crc32c;
use seqdb_storage::sha256::{sha256, to_hex, Sha256};
use seqdb_storage::{FaultClock, Page, PageId, WriteAheadLog, PAGE_SIZE};
use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

use crate::database::Database;
use crate::plan::QueryResult;

/// Pages copied per slice before the rate-limiting pause, matching the
/// scrubber's pacing so a backup never monopolizes the device.
const PAGES_PER_SLICE: usize = 128;
/// Pause between slices.
const SLICE_PAUSE: std::time::Duration = std::time::Duration::from_millis(1);
/// Maximum incremental chain depth resolve will follow.
const MAX_CHAIN: usize = 8;

// ----------------------------------------------------------------------
// Shared progress state (DMV + periodic server thread)
// ----------------------------------------------------------------------

/// Shared backup progress: one backup may run at a time per database;
/// `DM_DB_BACKUP_STATUS()` and the periodic server backup thread observe
/// this state.
pub struct BackupState {
    running: AtomicBool,
    pages_copied: AtomicU64,
    pages_skipped: AtomicU64,
    blobs_copied: AtomicU64,
    bytes_written: AtomicU64,
    destination: Mutex<String>,
    last_outcome: Mutex<String>,
    fault: Mutex<Option<Arc<FaultClock>>>,
}

/// A point-in-time view of [`BackupState`] for the DMV.
#[derive(Debug, Clone)]
pub struct BackupStatus {
    pub running: bool,
    pub destination: String,
    pub pages_copied: u64,
    pub pages_skipped: u64,
    pub blobs_copied: u64,
    pub bytes_written: u64,
    pub last_outcome: String,
}

impl BackupState {
    pub fn new() -> Arc<BackupState> {
        Arc::new(BackupState {
            running: AtomicBool::new(false),
            pages_copied: AtomicU64::new(0),
            pages_skipped: AtomicU64::new(0),
            blobs_copied: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            destination: Mutex::new(String::new()),
            last_outcome: Mutex::new(String::new()),
            fault: Mutex::new(None),
        })
    }

    /// Attach (or detach) a fault schedule; every backup-set write and
    /// sync of subsequent backups is counted against it.
    pub fn set_fault_clock(&self, clock: Option<Arc<FaultClock>>) {
        *self.fault.lock() = clock;
    }

    pub fn status(&self) -> BackupStatus {
        BackupStatus {
            running: self.running.load(Ordering::Acquire),
            destination: self.destination.lock().clone(),
            pages_copied: self.pages_copied.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
            blobs_copied: self.blobs_copied.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            last_outcome: self.last_outcome.lock().clone(),
        }
    }

    fn begin(self: &Arc<Self>, dest: &Path) -> Result<RunningGuard> {
        if self.running.swap(true, Ordering::AcqRel) {
            return Err(DbError::Execution(
                "a backup is already running on this database".into(),
            ));
        }
        self.pages_copied.store(0, Ordering::Relaxed);
        self.pages_skipped.store(0, Ordering::Relaxed);
        self.blobs_copied.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        *self.destination.lock() = dest.display().to_string();
        let dest = dest.display().to_string();
        crate::trace::emit(
            crate::trace::TraceClass::Backup,
            "backup_begin",
            0,
            0,
            || format!("dest={dest}"),
        );
        Ok(RunningGuard {
            state: self.clone(),
        })
    }

    fn add_page_copied(&self) {
        self.pages_copied.fetch_add(1, Ordering::Relaxed);
        storage_counters()
            .backup_pages_copied
            .fetch_add(1, Ordering::Relaxed);
    }

    fn add_bytes(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
        storage_counters()
            .backup_bytes
            .fetch_add(n, Ordering::Relaxed);
    }
}

struct RunningGuard {
    state: Arc<BackupState>,
}

impl Drop for RunningGuard {
    fn drop(&mut self) {
        self.state.running.store(false, Ordering::Release);
        let state = self.state.clone();
        crate::trace::emit(crate::trace::TraceClass::Backup, "backup_end", 0, 0, || {
            format!(
                "pages_copied={} bytes_written={}",
                state.pages_copied.load(Ordering::Relaxed),
                state.bytes_written.load(Ordering::Relaxed)
            )
        });
    }
}

// ----------------------------------------------------------------------
// Manifest
// ----------------------------------------------------------------------

/// The parsed `backup.manifest` of one backup set.
struct Manifest {
    /// Base set this incremental builds on (`None` for a full backup).
    base: Option<PathBuf>,
    /// Backup LSN: the highest WAL commit sequence captured in the set.
    wal_seq: u64,
    /// Per page: CRC-32C of the page's *effective* content (the set's WAL
    /// image if it has one, else the copied bytes) and whether this set
    /// materializes that content (`false` = inherited from the base).
    pages: Vec<(u32, bool)>,
    /// Per blob: name (GUID stem), SHA-256 hex, included-in-this-set.
    blobs: Vec<(String, String, bool)>,
    /// SHA-256 hex of `catalog.seqdb` in this set.
    catalog_sha: String,
    /// SHA-256 hex of `seqdb.wal` in this set.
    wal_sha: String,
}

impl Manifest {
    fn serialize(&self) -> String {
        let mut out = String::from("seqdb-backup-manifest v1\n");
        match &self.base {
            Some(p) => out.push_str(&format!("base\t{}\n", p.display())),
            None => out.push_str("base\t-\n"),
        }
        out.push_str(&format!("wal_seq\t{}\n", self.wal_seq));
        out.push_str(&format!("pages\t{}\n", self.pages.len()));
        for (id, (crc, included)) in self.pages.iter().enumerate() {
            out.push_str(&format!(
                "page\t{id}\t{crc:08x}\t{}\n",
                if *included { "included" } else { "base" }
            ));
        }
        for (name, sha, included) in &self.blobs {
            out.push_str(&format!(
                "blob\t{name}\t{sha}\t{}\n",
                if *included { "included" } else { "base" }
            ));
        }
        out.push_str(&format!("file\tcatalog.seqdb\t{}\n", self.catalog_sha));
        out.push_str(&format!("file\tseqdb.wal\t{}\n", self.wal_sha));
        out.push_str("end\n");
        out
    }

    /// Parse the manifest of the set at `dir`. Every defect — missing
    /// file, bad header, truncation (no `end` marker) — is the typed
    /// [`DbError::BackupCorrupt`] naming `backup.manifest`.
    fn read(dir: &Path) -> Result<Manifest> {
        let corrupt = |detail: &str| DbError::BackupCorrupt {
            object: format!("backup.manifest ({detail})"),
        };
        let text = fs::read_to_string(dir.join("backup.manifest"))
            .map_err(|_| corrupt("missing or unreadable"))?;
        let mut lines = text.lines();
        if lines.next() != Some("seqdb-backup-manifest v1") {
            return Err(corrupt("unrecognized header"));
        }
        let mut m = Manifest {
            base: None,
            wal_seq: 0,
            pages: Vec::new(),
            blobs: Vec::new(),
            catalog_sha: String::new(),
            wal_sha: String::new(),
        };
        let mut saw_end = false;
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.as_slice() {
                ["base", "-"] => m.base = None,
                ["base", p] => m.base = Some(PathBuf::from(p)),
                ["wal_seq", n] => {
                    m.wal_seq = n.parse().map_err(|_| corrupt("bad wal_seq"))?;
                }
                ["pages", n] => {
                    let n: usize = n.parse().map_err(|_| corrupt("bad page count"))?;
                    m.pages.reserve(n);
                }
                ["page", id, crc, flag] => {
                    let id: usize = id.parse().map_err(|_| corrupt("bad page id"))?;
                    if id != m.pages.len() {
                        return Err(corrupt("page records out of order"));
                    }
                    let crc = u32::from_str_radix(crc, 16).map_err(|_| corrupt("bad page crc"))?;
                    m.pages.push((crc, *flag == "included"));
                }
                ["blob", name, sha, flag] => {
                    m.blobs
                        .push((name.to_string(), sha.to_string(), *flag == "included"));
                }
                ["file", "catalog.seqdb", sha] => m.catalog_sha = sha.to_string(),
                ["file", "seqdb.wal", sha] => m.wal_sha = sha.to_string(),
                ["end"] => {
                    saw_end = true;
                    break;
                }
                _ => return Err(corrupt("unrecognized line")),
            }
        }
        if !saw_end {
            return Err(corrupt("truncated (no end marker)"));
        }
        if m.catalog_sha.is_empty() || m.wal_sha.is_empty() {
            return Err(corrupt("missing file hashes"));
        }
        Ok(m)
    }
}

// ----------------------------------------------------------------------
// Reports
// ----------------------------------------------------------------------

/// What one `BACKUP DATABASE` produced.
#[derive(Debug, Clone)]
pub struct BackupReport {
    pub destination: PathBuf,
    pub incremental: bool,
    pub pages_copied: u64,
    pub pages_skipped: u64,
    pub blobs_copied: u64,
    pub blobs_skipped: u64,
    pub wal_images: u64,
    pub wal_seq: u64,
    pub bytes_written: u64,
}

impl BackupReport {
    /// Render as the `BACKUP DATABASE` result set.
    pub fn into_result(self) -> QueryResult {
        let schema = Arc::new(Schema::new(vec![
            Column::new("destination", DataType::Text).not_null(),
            Column::new("kind", DataType::Text).not_null(),
            Column::new("pages_copied", DataType::Int).not_null(),
            Column::new("pages_skipped", DataType::Int).not_null(),
            Column::new("blobs_copied", DataType::Int).not_null(),
            Column::new("blobs_skipped", DataType::Int).not_null(),
            Column::new("wal_images", DataType::Int).not_null(),
            Column::new("bytes", DataType::Int).not_null(),
        ]));
        let rows = vec![Row::new(vec![
            Value::text(self.destination.display().to_string()),
            Value::text(if self.incremental {
                "incremental"
            } else {
                "full"
            }),
            Value::Int(self.pages_copied as i64),
            Value::Int(self.pages_skipped as i64),
            Value::Int(self.blobs_copied as i64),
            Value::Int(self.blobs_skipped as i64),
            Value::Int(self.wal_images as i64),
            Value::Int(self.bytes_written as i64),
        ])];
        QueryResult {
            schema,
            rows,
            affected: 0,
        }
    }
}

/// What one `RESTORE DATABASE` (or `VERIFY ONLY`) checked and produced.
#[derive(Debug, Clone)]
pub struct RestoreReport {
    pub source: PathBuf,
    pub target: Option<PathBuf>,
    pub pages_verified: u64,
    pub blobs_verified: u64,
    pub wal_seq: u64,
    pub chain_depth: usize,
}

impl RestoreReport {
    /// Render as the `RESTORE DATABASE` result set.
    pub fn into_result(self) -> QueryResult {
        let schema = Arc::new(Schema::new(vec![
            Column::new("source", DataType::Text).not_null(),
            Column::new("mode", DataType::Text).not_null(),
            Column::new("pages_verified", DataType::Int).not_null(),
            Column::new("blobs_verified", DataType::Int).not_null(),
            Column::new("chain_depth", DataType::Int).not_null(),
            Column::new("status", DataType::Text).not_null(),
        ]));
        let rows = vec![Row::new(vec![
            Value::text(self.source.display().to_string()),
            Value::text(match &self.target {
                Some(t) => format!("restored to {}", t.display()),
                None => "verify only".to_string(),
            }),
            Value::Int(self.pages_verified as i64),
            Value::Int(self.blobs_verified as i64),
            Value::Int(self.chain_depth as i64),
            Value::text("ok"),
        ])];
        QueryResult {
            schema,
            rows,
            affected: 0,
        }
    }
}

// ----------------------------------------------------------------------
// Fault-aware file helpers
// ----------------------------------------------------------------------

struct FaultedWriter<'a> {
    clock: Option<&'a Arc<FaultClock>>,
}

impl FaultedWriter<'_> {
    fn write(&self, f: &mut File, buf: &[u8]) -> Result<()> {
        if let Some(c) = self.clock {
            c.inject_write()?;
        }
        f.write_all(buf).map_err(DbError::io_write)
    }

    fn write_file(&self, path: &Path, buf: &[u8]) -> Result<()> {
        if let Some(c) = self.clock {
            c.inject_write()?;
        }
        fs::write(path, buf).map_err(DbError::io_write)
    }

    fn sync(&self, f: &File) -> Result<()> {
        if let Some(c) = self.clock {
            c.inject_sync()?;
        }
        f.sync_all().map_err(DbError::io)
    }

    fn sync_path(&self, path: &Path) -> Result<()> {
        let f = File::open(path)?;
        self.sync(&f)
    }
}

/// SHA-256 of a file, streamed.
fn hash_file(path: &Path) -> Result<String> {
    let mut f = File::open(path)?;
    let mut hasher = Sha256::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(to_hex(&hasher.finalize()))
}

// ----------------------------------------------------------------------
// BACKUP DATABASE
// ----------------------------------------------------------------------

impl Database {
    /// `BACKUP DATABASE TO '<dest>' [INCREMENTAL FROM '<base>']`: online,
    /// crash-consistent backup of this database into the fresh directory
    /// `dest`. See the module docs for the mechanism. Returns what was
    /// copied; on injected or real ENOSPC the partial set is removed.
    pub fn backup_database(
        &self,
        dest: &Path,
        incremental_from: Option<&Path>,
    ) -> Result<BackupReport> {
        let state = self.backup_state().clone();
        let _run = state.begin(dest)?;
        let result = self.backup_inner(&state, dest, incremental_from);
        match &result {
            Ok(r) => {
                *state.last_outcome.lock() = format!(
                    "ok: {} backup to {} ({} pages copied, {} skipped)",
                    if r.incremental { "incremental" } else { "full" },
                    dest.display(),
                    r.pages_copied,
                    r.pages_skipped
                );
            }
            Err(e) => {
                *state.last_outcome.lock() = format!("failed: {e}");
                // Disk-full is an *expected* degradation: remove the
                // partial set so a half-written backup can never be
                // mistaken for a good one. A crash (injected or real)
                // gets no cleanup by definition — the manifest-last
                // protocol keeps the partial set detectably incomplete.
                if matches!(e, DbError::DiskFull(_)) {
                    let _ = fs::remove_dir_all(dest);
                }
            }
        }
        result
    }

    fn backup_inner(
        &self,
        state: &Arc<BackupState>,
        dest: &Path,
        incremental_from: Option<&Path>,
    ) -> Result<BackupReport> {
        // One checkpoint/backup at a time: the held lock keeps the WAL
        // from truncating for the whole copy window, so every data-file
        // write that lands mid-copy stays replayable from the captured
        // log segment.
        let _ckpt = self.checkpoint_lock().lock();

        let base = match incremental_from {
            Some(dir) => Some((dir.to_path_buf(), Manifest::read(dir)?)),
            None => None,
        };

        if dest.join("backup.manifest").exists() || dest.join("seqdb.data").exists() {
            return Err(DbError::Execution(format!(
                "backup destination {} already holds a backup set",
                dest.display()
            )));
        }
        fs::create_dir_all(dest).map_err(DbError::io_write)?;
        fs::create_dir_all(dest.join("filestream")).map_err(DbError::io_write)?;

        let clock_guard = state.fault.lock().clone();
        let w = FaultedWriter {
            clock: clock_guard.as_ref(),
        };

        // Start from a clean slate: flush every dirty page and persist
        // the catalog snapshot, so the fuzzy copy begins over a fully
        // materialized on-disk state (the same thing SQL Server's BACKUP
        // does before its data-copy phase).
        self.pool().checkpoint()?;
        self.persist_catalog()?;

        // Catalog snapshot (taken now, before the copy: tables created
        // *during* the backup are deliberately not part of the set).
        let catalog_text = self.catalog().serialize_tables();
        w.write_file(&dest.join("catalog.seqdb"), catalog_text.as_bytes())?;
        state.add_bytes(catalog_text.len() as u64);
        let catalog_sha = to_hex(&sha256(catalog_text.as_bytes()));

        // Fuzzy page copy: read every page straight from the durable
        // store (cache-bypassing, like the scrubber) while queries keep
        // running. Unchanged pages of an incremental backup are skipped;
        // the manifest records where their content lives.
        let store = self.pool().store().clone();
        let page_count = store.num_pages();
        let mut data = File::create(dest.join("seqdb.data")).map_err(DbError::io_write)?;
        let mut fuzzy_crcs: Vec<u32> = Vec::with_capacity(page_count as usize);
        let mut included: Vec<bool> = Vec::with_capacity(page_count as usize);
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        for id in 0..page_count {
            let start = Instant::now();
            store.read_page(id, &mut buf)?;
            let crc = crc32c(&buf);
            let take = match &base {
                Some((_, bm)) => bm
                    .pages
                    .get(id as usize)
                    .map(|(bcrc, _)| *bcrc != crc)
                    .unwrap_or(true),
                None => true,
            };
            if take {
                data.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
                w.write(&mut data, &buf)?;
                state.add_page_copied();
                state.add_bytes(PAGE_SIZE as u64);
            } else {
                state.pages_skipped.fetch_add(1, Ordering::Relaxed);
            }
            fuzzy_crcs.push(crc);
            included.push(take);
            waits().record(WaitClass::BackupIo, start.elapsed());
            if (id + 1).is_multiple_of(PAGES_PER_SLICE as u64) {
                std::thread::sleep(SLICE_PAUSE);
            }
        }
        // Holes (skipped pages) must still read back as zero pages of a
        // file whose length is a page multiple.
        data.set_len(page_count * PAGE_SIZE as u64)?;
        w.sync(&data)?;

        // FileStream blobs, with their .sha256 sidecars. An incremental
        // backup skips blobs whose content hash matches the base.
        let fs_root = self.filestream().root().to_path_buf();
        let mut blobs: Vec<(String, String, bool)> = Vec::new();
        let mut blobs_copied = 0u64;
        let mut blobs_skipped = 0u64;
        for name in self.filestream().blob_names()? {
            let start = Instant::now();
            let src = fs_root.join(format!("{name}.blob"));
            let bytes = fs::read(&src)?;
            let sha = to_hex(&sha256(&bytes));
            let take = match &base {
                Some((_, bm)) => !bm.blobs.iter().any(|(n, s, _)| *n == name && *s == sha),
                None => true,
            };
            if take {
                w.write_file(
                    &dest.join("filestream").join(format!("{name}.blob")),
                    &bytes,
                )?;
                // The sidecar travels with the blob; regenerate it from
                // the hash just computed if the source never had one.
                let sidecar = fs_root.join(format!("{name}.sha256"));
                let sidecar_text = fs::read_to_string(&sidecar).unwrap_or_else(|_| sha.clone());
                w.write_file(
                    &dest.join("filestream").join(format!("{name}.sha256")),
                    sidecar_text.as_bytes(),
                )?;
                state.add_bytes(bytes.len() as u64 + sidecar_text.len() as u64);
                state.blobs_copied.fetch_add(1, Ordering::Relaxed);
                blobs_copied += 1;
            } else {
                blobs_skipped += 1;
            }
            blobs.push((name, sha, take));
            waits().record(WaitClass::BackupIo, start.elapsed());
        }

        // Capture the WAL: every image committed since the checkpoint
        // above (i.e. during the copy window), written as a well-formed
        // log segment the restore replays over the fuzzy copy.
        let mut wal_images: HashMap<PageId, Box<[u8]>> = HashMap::new();
        let mut wal_seq = 0u64;
        if let Some(wal) = self.pool().wal() {
            let outcome = wal.replay()?;
            wal_seq = outcome.last_seq.unwrap_or(0);
            for (id, image) in outcome.images {
                wal_images.insert(id, image);
            }
        }
        {
            let backup_wal = WriteAheadLog::open_file(&dest.join("seqdb.wal"))?;
            if !wal_images.is_empty() {
                if let Some(c) = w.clock {
                    c.inject_write()?;
                }
                let mut ids: Vec<PageId> = wal_images.keys().copied().collect();
                ids.sort_unstable();
                for id in &ids {
                    backup_wal.log_page(*id, &wal_images[id])?;
                }
                backup_wal.commit()?;
                if let Some(c) = w.clock {
                    c.inject_sync()?;
                }
                backup_wal.sync()?;
                state.add_bytes(wal_images.len() as u64 * PAGE_SIZE as u64);
            }
        }
        let wal_sha = hash_file(&dest.join("seqdb.wal"))?;

        // Effective per-page CRC: the WAL image wins over the fuzzy copy
        // (that is what restore will materialize). Pages whose effective
        // content the WAL provides are "included" whenever they differ
        // from the base, even if the fuzzy copy skipped them.
        let total_pages =
            page_count.max(wal_images.keys().copied().max().map(|m| m + 1).unwrap_or(0));
        let zero_crc = crc32c(&vec![0u8; PAGE_SIZE]);
        let mut pages: Vec<(u32, bool)> = Vec::with_capacity(total_pages as usize);
        for id in 0..total_pages {
            let fuzzy = fuzzy_crcs.get(id as usize).copied().unwrap_or(zero_crc);
            let effective = wal_images.get(&id).map(|img| crc32c(img)).unwrap_or(fuzzy);
            let inc = match &base {
                Some((_, bm)) => bm
                    .pages
                    .get(id as usize)
                    .map(|(bcrc, _)| *bcrc != effective)
                    .unwrap_or(true),
                None => true,
            };
            pages.push((effective, inc));
        }

        // The manifest is written last, atomically (tmp + fsync +
        // rename): a set without a complete manifest is detectably
        // incomplete and restore refuses it.
        let manifest = Manifest {
            base: base.as_ref().map(|(p, _)| p.clone()),
            wal_seq,
            pages,
            blobs,
            catalog_sha,
            wal_sha,
        };
        let text = manifest.serialize();
        let tmp = dest.join("backup.manifest.tmp");
        w.write_file(&tmp, text.as_bytes())?;
        w.sync_path(&tmp)?;
        fs::rename(&tmp, dest.join("backup.manifest")).map_err(DbError::io_write)?;
        state.add_bytes(text.len() as u64);

        Ok(BackupReport {
            destination: dest.to_path_buf(),
            incremental: base.is_some(),
            pages_copied: state.pages_copied.load(Ordering::Relaxed),
            pages_skipped: state.pages_skipped.load(Ordering::Relaxed),
            blobs_copied,
            blobs_skipped,
            wal_images: wal_images.len() as u64,
            wal_seq,
            bytes_written: state.bytes_written.load(Ordering::Relaxed),
        })
    }
}

// ----------------------------------------------------------------------
// RESTORE DATABASE / VERIFY ONLY
// ----------------------------------------------------------------------

/// One resolved level of an incremental chain.
struct ChainSet {
    dir: PathBuf,
    manifest: Manifest,
    wal_images: HashMap<PageId, Box<[u8]>>,
}

/// `RESTORE DATABASE FROM '<backup>' VERIFY ONLY`: run every restore-time
/// verification — manifest completeness, per-page CRC and checksum, blob
/// SHA-256, WAL and catalog hashes — without writing anything.
pub fn verify_backup(backup: &Path) -> Result<RestoreReport> {
    restore_inner(backup, None)
}

/// `RESTORE DATABASE FROM '<backup>' TO '<target>'`: materialize the
/// backup (resolving its incremental chain) into the fresh directory
/// `target`, verifying every page and blob before declaring success. The
/// result is a directory [`Database::open`] brings up with the backed-up
/// tables, rows and blobs.
pub fn restore_database(backup: &Path, target: &Path) -> Result<RestoreReport> {
    restore_inner(backup, Some(target))
}

fn restore_inner(backup: &Path, target: Option<&Path>) -> Result<RestoreReport> {
    // Resolve the incremental chain, verifying each set's own files as
    // it loads: the WAL segment and catalog snapshot must hash to what
    // the manifest recorded before any of their content is trusted.
    let mut chain: Vec<ChainSet> = Vec::new(); // top (newest) first
    let mut dir = backup.to_path_buf();
    loop {
        if chain.len() >= MAX_CHAIN {
            return Err(DbError::BackupCorrupt {
                object: format!("backup chain deeper than {MAX_CHAIN} at {}", dir.display()),
            });
        }
        let manifest = Manifest::read(&dir)?;
        if hash_file(&dir.join("seqdb.wal")).unwrap_or_default() != manifest.wal_sha {
            return Err(DbError::BackupCorrupt {
                object: format!("seqdb.wal in {}", dir.display()),
            });
        }
        if hash_file(&dir.join("catalog.seqdb")).unwrap_or_default() != manifest.catalog_sha {
            return Err(DbError::BackupCorrupt {
                object: format!("catalog.seqdb in {}", dir.display()),
            });
        }
        let wal = WriteAheadLog::open_file(&dir.join("seqdb.wal"))?;
        let outcome = wal.replay()?;
        let mut wal_images = HashMap::new();
        for (id, image) in outcome.images {
            wal_images.insert(id, image);
        }
        let base = manifest.base.clone();
        chain.push(ChainSet {
            dir: dir.clone(),
            manifest,
            wal_images,
        });
        match base {
            Some(b) => dir = b,
            None => break,
        }
    }

    let top = &chain[0].manifest;
    let total_pages = top.pages.len() as u64;
    let wal_seq = top.wal_seq;

    // Prepare the target (refusing to clobber an existing database).
    let mut out_data: Option<File> = None;
    if let Some(t) = target {
        if t.join("seqdb.data").exists() || t.join("catalog.seqdb").exists() {
            return Err(DbError::Execution(format!(
                "restore target {} already holds a database",
                t.display()
            )));
        }
        fs::create_dir_all(t).map_err(DbError::io_write)?;
        fs::create_dir_all(t.join("filestream")).map_err(DbError::io_write)?;
        out_data = Some(File::create(t.join("seqdb.data")).map_err(DbError::io_write)?);
    }

    // Materialize and verify every page. Resolution order per page, top
    // set first: the set's WAL image (replay-to-backup-LSN), then the
    // set's copied bytes if the manifest includes the page, then the
    // base chain. Every materialized page must match the top manifest's
    // CRC *and* its own embedded checksum (the scrubber's check) before
    // a byte of it lands in the target.
    let mut data_files: Vec<Option<File>> = Vec::new();
    for set in &chain {
        data_files.push(File::open(set.dir.join("seqdb.data")).ok());
    }
    let mut pages_verified = 0u64;
    let mut buf = vec![0u8; PAGE_SIZE];
    for id in 0..total_pages {
        let mut content: Option<Vec<u8>> = None;
        for (level, set) in chain.iter().enumerate() {
            if let Some(img) = set.wal_images.get(&id) {
                content = Some(img.to_vec());
                break;
            }
            let stored_here = set
                .manifest
                .pages
                .get(id as usize)
                .map(|(_, inc)| *inc)
                // The base-most set materializes everything it covers.
                .unwrap_or(false);
            if stored_here {
                buf.iter_mut().for_each(|b| *b = 0);
                if let Some(f) = data_files.get_mut(level).and_then(|f| f.as_mut()) {
                    let off = id * PAGE_SIZE as u64;
                    if f.metadata().map(|m| m.len()).unwrap_or(0) >= off + PAGE_SIZE as u64 {
                        f.seek(SeekFrom::Start(off))?;
                        f.read_exact(&mut buf)?;
                    }
                }
                content = Some(buf.clone());
                break;
            }
        }
        let content = content.unwrap_or_else(|| vec![0u8; PAGE_SIZE]);
        let crc = crc32c(&content);
        let expect = top.pages[id as usize].0;
        let zero = content.iter().all(|&b| b == 0);
        if crc != expect || (!zero && Page::verify_buf(&content).is_err()) {
            return Err(DbError::BackupCorrupt {
                object: format!("page {id}"),
            });
        }
        pages_verified += 1;
        storage_counters()
            .restore_pages_verified
            .fetch_add(1, Ordering::Relaxed);
        if let Some(f) = out_data.as_mut() {
            f.write_all(&content).map_err(DbError::io_write)?;
        }
        if (id + 1).is_multiple_of(PAGES_PER_SLICE as u64) && target.is_none() {
            std::thread::sleep(SLICE_PAUSE);
        }
    }
    if let Some(f) = out_data.as_mut() {
        f.sync_all().map_err(DbError::io)?;
    }

    // Blobs: resolve each through the chain, verify its bytes against
    // the manifest hash, then land blob + sidecar in the target.
    let mut blobs_verified = 0u64;
    for (name, sha, _) in &top.blobs {
        let missing = || DbError::BackupCorrupt {
            object: format!("filestream:{name}"),
        };
        let provider = chain
            .iter()
            .find(|set| {
                set.manifest
                    .blobs
                    .iter()
                    .any(|(n, _, inc)| n == name && *inc)
            })
            .ok_or_else(missing)?;
        let src = provider.dir.join("filestream").join(format!("{name}.blob"));
        let bytes = fs::read(&src).map_err(|_| missing())?;
        if to_hex(&sha256(&bytes)) != *sha {
            return Err(missing());
        }
        if let Some(t) = target {
            fs::write(t.join("filestream").join(format!("{name}.blob")), &bytes)
                .map_err(DbError::io_write)?;
            let sidecar = provider
                .dir
                .join("filestream")
                .join(format!("{name}.sha256"));
            let sidecar_text = fs::read_to_string(&sidecar).unwrap_or_else(|_| sha.clone());
            fs::write(
                t.join("filestream").join(format!("{name}.sha256")),
                sidecar_text,
            )
            .map_err(DbError::io_write)?;
        }
        blobs_verified += 1;
    }

    // Catalog snapshot (already hash-verified while loading the chain).
    if let Some(t) = target {
        let text = fs::read(chain[0].dir.join("catalog.seqdb"))?;
        fs::write(t.join("catalog.seqdb"), text).map_err(DbError::io_write)?;
    }

    Ok(RestoreReport {
        source: backup.to_path_buf(),
        target: target.map(|t| t.to_path_buf()),
        pages_verified,
        blobs_verified,
        wal_seq,
        chain_depth: chain.len(),
    })
}

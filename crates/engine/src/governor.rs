//! Per-query resource governor: cancellation, wall-clock timeouts, and a
//! byte-accounted memory budget.
//!
//! This is the engine-side analogue of SQL Server's CLR hosting layer
//! (paper §2.3): user code and memory-hungry operators run *inside* the
//! server, so a misbehaving query must be containable without killing the
//! process. Every query gets one [`QueryGovernor`] (created by
//! `Database::exec_context`); operators check it cooperatively between
//! rows and charge it for buffered bytes. Operators that can degrade
//! (sort, hash aggregate) spill to `storage::tempspace` when the budget
//! runs out; the rest fail the query with
//! [`DbError::ResourceExhausted`].

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seqdb_storage::SpillTally;
use seqdb_types::{DbError, Result, Row};

use crate::exec::{BoxedIter, RowBatch, RowIterator};

/// Query lifecycle states stored in [`QueryGovernor::state`].
const RUNNING: u8 = 0;
const CANCELLED: u8 = 1;
const TIMED_OUT: u8 = 2;

/// How many cooperative checks between (comparatively expensive)
/// deadline reads. The cancel flag itself is checked on every call.
const DEADLINE_STRIDE: u32 = 64;

/// Shared, thread-safe per-query limits. Cloned (via `Arc`) into every
/// operator of a plan, including parallel workers.
pub struct QueryGovernor {
    state: AtomicU8,
    deadline: Option<Instant>,
    timeout: Option<Duration>,
    /// Memory budget in bytes; `usize::MAX` means unlimited.
    mem_limit: usize,
    mem_used: AtomicUsize,
    /// High-water mark of `mem_used` over the query's lifetime.
    mem_peak: AtomicUsize,
    /// Spill traffic attributed to this query (every spill file the query
    /// creates, across all operators and parallel workers).
    spill: Arc<SpillTally>,
    /// Time this query spent queued in the admission controller, recorded
    /// by `AdmissionController::admit` — one half of the query store's
    /// per-statement wait breakdown (the other is the spill tally's wait
    /// time).
    admission_wait_nanos: AtomicU64,
}

impl QueryGovernor {
    /// A governor with no limits — cancellation still works.
    pub fn unlimited() -> Arc<QueryGovernor> {
        QueryGovernor::new(None, None)
    }

    pub fn new(timeout: Option<Duration>, mem_limit: Option<usize>) -> Arc<QueryGovernor> {
        Arc::new(QueryGovernor {
            state: AtomicU8::new(RUNNING),
            deadline: timeout.map(|t| Instant::now() + t),
            timeout,
            mem_limit: mem_limit.unwrap_or(usize::MAX),
            mem_used: AtomicUsize::new(0),
            mem_peak: AtomicUsize::new(0),
            spill: Arc::new(SpillTally::default()),
            admission_wait_nanos: AtomicU64::new(0),
        })
    }

    /// Request cancellation. The query fails with [`DbError::Cancelled`]
    /// at its next cooperative check. Idempotent; a timeout that already
    /// fired wins.
    pub fn cancel(&self) {
        let _ =
            self.state
                .compare_exchange(RUNNING, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
    }

    pub fn is_aborted(&self) -> bool {
        self.state.load(Ordering::Relaxed) != RUNNING
    }

    /// Cheap cooperative check: cancel flag only. Called once per row per
    /// governed operator.
    pub fn check(&self) -> Result<()> {
        match self.state.load(Ordering::Relaxed) {
            RUNNING => Ok(()),
            CANCELLED => Err(DbError::Cancelled("query cancelled".into())),
            _ => Err(self.timeout_error()),
        }
    }

    /// Full cooperative check: cancel flag plus wall-clock deadline.
    /// Called every [`DEADLINE_STRIDE`] rows to amortize `Instant::now`.
    pub fn check_deadline(&self) -> Result<()> {
        self.check()?;
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                if self
                    .state
                    .compare_exchange(RUNNING, TIMED_OUT, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // First transition only: one timed-out query, one count.
                    crate::stats::engine_counters()
                        .timeouts
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Err(self.timeout_error());
            }
        }
        Ok(())
    }

    fn timeout_error(&self) -> DbError {
        let ms = self.timeout.map(|t| t.as_millis()).unwrap_or(0);
        DbError::Timeout(format!("query exceeded its {ms}ms timeout"))
    }

    /// Try to charge `bytes` against the budget. Returns `false` (charging
    /// nothing) if the budget would be exceeded — callers that can spill
    /// use this and degrade instead of failing.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let prev = self.mem_used.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.mem_limit {
            self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
            false
        } else {
            self.mem_peak.fetch_max(prev + bytes, Ordering::Relaxed);
            true
        }
    }

    /// Charge `bytes` or fail with [`DbError::ResourceExhausted`] — for
    /// operators with no spill path (hash join build, stream-agg state).
    pub fn reserve(&self, bytes: usize) -> Result<()> {
        if self.try_reserve(bytes) {
            Ok(())
        } else {
            Err(DbError::ResourceExhausted(format!(
                "query memory budget of {} bytes exceeded ({} in use, {} requested)",
                self.mem_limit,
                self.mem_used.load(Ordering::Relaxed),
                bytes
            )))
        }
    }

    pub fn release(&self, bytes: usize) {
        self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently charged across the whole query (all operators and
    /// workers share one meter).
    pub fn mem_used(&self) -> usize {
        self.mem_used.load(Ordering::Relaxed)
    }

    pub fn mem_limit(&self) -> Option<usize> {
        (self.mem_limit != usize::MAX).then_some(self.mem_limit)
    }

    /// Highest concurrent memory charge the query ever held.
    pub fn mem_peak(&self) -> usize {
        self.mem_peak.load(Ordering::Relaxed)
    }

    /// The query-wide spill tally; attach it to every spill this query
    /// creates (see `ExecContext::create_spill`).
    pub fn spill_tally(&self) -> &Arc<SpillTally> {
        &self.spill
    }

    /// Attribute admission-queue time to this query.
    pub fn add_admission_wait(&self, dur: Duration) {
        self.admission_wait_nanos
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Nanoseconds this query waited in the admission queue.
    pub fn admission_wait_nanos(&self) -> u64 {
        self.admission_wait_nanos.load(Ordering::Relaxed)
    }

    /// How the statement ended, as the query store's disposition: a
    /// cancelled statement was killed (by `KILL`, a drain, or a dropped
    /// wire peer), a timed-out one hit its governed deadline.
    pub fn disposition(&self) -> crate::querystore::Disposition {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => crate::querystore::Disposition::Killed,
            TIMED_OUT => crate::querystore::Disposition::Timeout,
            _ => crate::querystore::Disposition::Completed,
        }
    }
}

/// RAII accounting handle: grows against a governor and releases every
/// charged byte on drop, so early returns and cancelled queries cannot
/// leak budget.
pub struct MemCharge {
    gov: Arc<QueryGovernor>,
    bytes: usize,
}

impl MemCharge {
    pub fn new(gov: Arc<QueryGovernor>) -> MemCharge {
        MemCharge { gov, bytes: 0 }
    }

    /// Charge more bytes, failing with `ResourceExhausted` if over budget.
    pub fn grow(&mut self, bytes: usize) -> Result<()> {
        self.gov.reserve(bytes)?;
        self.bytes += bytes;
        Ok(())
    }

    /// Charge more bytes if the budget allows; `false` leaves the charge
    /// unchanged (the caller spills instead).
    pub fn try_grow(&mut self, bytes: usize) -> bool {
        if self.gov.try_reserve(bytes) {
            self.bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Release everything charged so far (e.g. after spilling a buffer).
    pub fn release_all(&mut self) {
        self.gov.release(self.bytes);
        self.bytes = 0;
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        self.release_all();
    }
}

/// Stride counter for cooperative checks: cancel flag every call, the
/// deadline every [`DEADLINE_STRIDE`] calls (the first call included, so
/// an already-expired query fails before producing a row).
pub struct Ticker {
    n: u32,
}

impl Ticker {
    pub fn new() -> Ticker {
        Ticker { n: 0 }
    }

    pub fn tick(&mut self, gov: &QueryGovernor) -> Result<()> {
        let full = self.n.is_multiple_of(DEADLINE_STRIDE);
        self.n = self.n.wrapping_add(1);
        if full {
            gov.check_deadline()
        } else {
            gov.check()
        }
    }

    /// One cooperative check per *batch*: always the full check. A batch
    /// already amortizes ~a thousand rows, so the deadline read costs
    /// nothing per row — and checking it every batch keeps KILL and
    /// timeout latency at batch granularity instead of
    /// `DEADLINE_STRIDE × batch` rows.
    pub fn tick_batch(&mut self, gov: &QueryGovernor) -> Result<()> {
        self.n = self.n.wrapping_add(1);
        gov.check_deadline()
    }
}

impl Default for Ticker {
    fn default() -> Self {
        Ticker::new()
    }
}

/// Wraps any operator with cooperative cancellation/timeout checks.
/// `Plan::open` wraps every node it builds, so blocking operators that
/// drain a child (sort, hash agg, hash join build) hit a check on every
/// input row even though their own `next()` is called rarely.
pub struct GovernedIter {
    inner: BoxedIter,
    gov: Arc<QueryGovernor>,
    ticker: Ticker,
}

impl GovernedIter {
    pub fn new(inner: BoxedIter, gov: Arc<QueryGovernor>) -> GovernedIter {
        GovernedIter {
            inner,
            gov,
            ticker: Ticker::new(),
        }
    }
}

impl RowIterator for GovernedIter {
    fn next(&mut self) -> Result<Option<Row>> {
        self.ticker.tick(&self.gov)?;
        self.inner.next()
    }

    /// Batch pass-through: one full cooperative check per batch instead
    /// of one cheap check per row, then delegate. This override is what
    /// keeps batches intact across operator boundaries — `Plan::open`
    /// wraps every node in a `GovernedIter`, so without it every batch
    /// would silently degrade to the row loop here.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        self.ticker.tick_batch(&self.gov)?;
        let batch = self.inner.next_batch(max_rows)?;
        if let Some(b) = &batch {
            let counters = crate::stats::engine_counters();
            let bucket = if b.is_fallback() {
                &counters.batch_fallback_rows
            } else {
                &counters.batch_rows
            };
            bucket.fetch_add(b.len() as u64, Ordering::Relaxed);
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, ValuesIter};
    use seqdb_types::Value;

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| Row::new(vec![Value::Int(i)])).collect()
    }

    #[test]
    fn unlimited_governor_passes_everything() {
        let gov = QueryGovernor::unlimited();
        assert!(gov.check().is_ok());
        assert!(gov.check_deadline().is_ok());
        assert!(gov.try_reserve(usize::MAX / 2));
        gov.release(usize::MAX / 2);
    }

    #[test]
    fn cancel_fails_next_check() {
        let gov = QueryGovernor::unlimited();
        gov.cancel();
        assert!(matches!(gov.check(), Err(DbError::Cancelled(_))));
        let it = GovernedIter::new(Box::new(ValuesIter::new(rows(10))), gov);
        assert!(matches!(collect(Box::new(it)), Err(DbError::Cancelled(_))));
    }

    #[test]
    fn expired_deadline_times_out_before_first_row() {
        let gov = QueryGovernor::new(Some(Duration::ZERO), None);
        std::thread::sleep(Duration::from_millis(2));
        let it = GovernedIter::new(Box::new(ValuesIter::new(rows(10))), gov.clone());
        assert!(matches!(collect(Box::new(it)), Err(DbError::Timeout(_))));
        // Once timed out, plain checks report Timeout, not Cancelled.
        assert!(matches!(gov.check(), Err(DbError::Timeout(_))));
    }

    #[test]
    fn timeout_fires_mid_stream_within_the_stride() {
        let gov = QueryGovernor::new(Some(Duration::from_millis(10)), None);
        let mut it = GovernedIter::new(Box::new(ValuesIter::new(rows(1_000_000))), gov);
        let mut n = 0u64;
        let err = loop {
            match it.next() {
                Ok(Some(_)) => n += 1,
                Ok(None) => panic!("expected timeout, drained {n} rows"),
                Err(e) => break e,
            }
            if n.is_multiple_of(512) {
                std::thread::sleep(Duration::from_millis(1));
            }
        };
        assert!(matches!(err, DbError::Timeout(_)), "{err}");
    }

    #[test]
    fn reserve_accounts_and_releases() {
        let gov = QueryGovernor::new(None, Some(1000));
        assert!(gov.reserve(600).is_ok());
        assert!(matches!(
            gov.reserve(600),
            Err(DbError::ResourceExhausted(_))
        ));
        // A failed reserve charges nothing.
        assert_eq!(gov.mem_used(), 600);
        assert!(gov.try_reserve(400));
        assert!(!gov.try_reserve(1));
        gov.release(1000);
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn mem_charge_releases_on_drop() {
        let gov = QueryGovernor::new(None, Some(1000));
        {
            let mut charge = MemCharge::new(gov.clone());
            charge.grow(700).unwrap();
            assert_eq!(gov.mem_used(), 700);
            assert!(!charge.try_grow(500));
            assert_eq!(charge.bytes(), 700);
        }
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_limit() {
        let gov = QueryGovernor::new(None, Some(10_000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let gov = gov.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if gov.try_reserve(7) {
                            gov.release(7);
                        }
                    }
                });
            }
        });
        assert_eq!(gov.mem_used(), 0);
    }
}

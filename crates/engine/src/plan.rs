//! Physical plans: a tree of operators that can be opened into a
//! [`RowIterator`] pipeline and pretty-printed for `EXPLAIN` (the query
//! plans of the paper's Figures 9 and 10).

use std::sync::Arc;

use seqdb_types::{DbError, Result, Row, Schema, Value};

use crate::catalog::{Table, TableIndex};
use crate::exec::agg::{AggSpec, HashAggIter, StreamAggIter};
use crate::exec::apply::{CrossApplyIter, TvfScanIter};
use crate::exec::filter::{FilterIter, LimitIter, ProjectIter};
use crate::exec::join::{HashJoinIter, MergeJoinIter};
use crate::exec::scan::{HeapScanIter, IndexScanIter};
use crate::exec::sort::{SortIter, SortKey, TopNIter};
use crate::exec::window::RowNumberIter;
use crate::exec::{BoxedIter, ExecContext, ValuesIter};
use crate::expr::Expr;
use crate::governor::GovernedIter;
use crate::parallel::ParallelAggIter;
use crate::udx::TableFunction;

/// A physical query plan node.
pub enum Plan {
    /// Heap scan with pushed-down filter/projection.
    TableScan {
        table: Arc<Table>,
        filter: Option<Expr>,
        projection: Option<Vec<usize>>,
        schema: Arc<Schema>,
    },
    /// Ordered clustered-index scan, optionally restricted to an equality
    /// prefix of the key.
    IndexScan {
        table: Arc<Table>,
        index: Arc<TableIndex>,
        prefix: Vec<Value>,
        filter: Option<Expr>,
        projection: Option<Vec<usize>>,
        schema: Arc<Schema>,
    },
    /// `FROM tvf(constants)`.
    TvfScan {
        tvf: Arc<dyn TableFunction>,
        args: Vec<Value>,
    },
    /// Literal rows (`INSERT ... VALUES`, tests).
    Values {
        schema: Arc<Schema>,
        rows: Vec<Row>,
    },
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<Expr>,
        schema: Arc<Schema>,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
    },
    TopN {
        input: Box<Plan>,
        keys: Vec<SortKey>,
        n: u64,
    },
    Limit {
        input: Box<Plan>,
        n: u64,
    },
    /// Serial blocking hash aggregate.
    HashAggregate {
        input: Box<Plan>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        schema: Arc<Schema>,
    },
    /// Non-blocking aggregate over input sorted by the group exprs.
    StreamAggregate {
        input: Box<Plan>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        schema: Arc<Schema>,
    },
    /// Exchange-parallel scan + partial/final aggregate (Figure 9).
    ParallelAggregate {
        table: Arc<Table>,
        filter: Option<Expr>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        dop: usize,
        schema: Arc<Schema>,
    },
    HashJoin {
        build: Box<Plan>,
        probe: Box<Plan>,
        build_keys: Vec<Expr>,
        probe_keys: Vec<Expr>,
        schema: Arc<Schema>,
    },
    MergeJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        schema: Arc<Schema>,
        /// Degree of parallelism this join *would* run at on a machine
        /// with that many schedulers; annotated in EXPLAIN (Figure 10).
        dop_hint: usize,
    },
    CrossApply {
        input: Box<Plan>,
        tvf: Arc<dyn TableFunction>,
        args: Vec<Expr>,
        schema: Arc<Schema>,
    },
    /// ROW_NUMBER() over the (already sorted) input. `order_cols` is
    /// empty when a Sort below this node buffered (and budget-accounted)
    /// the rows; non-empty when the planner skipped the Sort because the
    /// input was already ordered — the operator then buffers each peer
    /// frame (rows tied on those columns) itself, charged against the
    /// query's memory budget.
    RowNumber {
        input: Box<Plan>,
        prepend: bool,
        order_cols: Vec<usize>,
        schema: Arc<Schema>,
    },
}

impl Plan {
    /// Output schema of this node.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            Plan::TableScan { schema, .. }
            | Plan::IndexScan { schema, .. }
            | Plan::Values { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::HashAggregate { schema, .. }
            | Plan::StreamAggregate { schema, .. }
            | Plan::ParallelAggregate { schema, .. }
            | Plan::HashJoin { schema, .. }
            | Plan::MergeJoin { schema, .. }
            | Plan::CrossApply { schema, .. }
            | Plan::RowNumber { schema, .. } => schema.clone(),
            Plan::TvfScan { tvf, .. } => tvf.schema(),
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopN { input, .. }
            | Plan::Limit { input, .. } => input.schema(),
        }
    }

    /// Open the plan into an executable iterator pipeline. Every node is
    /// wrapped in a [`GovernedIter`], so cancellation/timeout checks run
    /// between rows at every operator boundary — including inside
    /// blocking operators, which drain their (wrapped) children.
    pub fn open(&self, ctx: &ExecContext) -> Result<BoxedIter> {
        let node: BoxedIter = match self {
            Plan::TableScan {
                table,
                filter,
                projection,
                ..
            } => Box::new(HeapScanIter::new(
                table.clone(),
                filter.clone(),
                projection.clone(),
            )),
            Plan::IndexScan {
                table,
                index,
                prefix,
                filter,
                projection,
                ..
            } => Box::new(IndexScanIter::new(
                table,
                index.clone(),
                prefix,
                filter.clone(),
                projection.clone(),
            )),
            Plan::TvfScan { tvf, args } => Box::new(TvfScanIter::open(tvf, args, ctx)?),
            Plan::Values { rows, .. } => Box::new(ValuesIter::new(rows.clone())),
            Plan::Filter { input, predicate } => {
                Box::new(FilterIter::new(input.open(ctx)?, predicate.clone()))
            }
            Plan::Project { input, exprs, .. } => {
                Box::new(ProjectIter::new(input.open(ctx)?, exprs.clone()))
            }
            Plan::Sort { input, keys } => {
                Box::new(SortIter::new(input.open(ctx)?, keys.clone(), ctx.clone()))
            }
            Plan::TopN { input, keys, n } => {
                Box::new(TopNIter::new(input.open(ctx)?, keys.clone(), *n as usize))
            }
            Plan::Limit { input, n } => Box::new(LimitIter::new(input.open(ctx)?, *n)),
            Plan::HashAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => Box::new(HashAggIter::new(
                input.open(ctx)?,
                group_exprs.clone(),
                aggs.clone(),
                ctx.clone(),
            )),
            Plan::StreamAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => Box::new(StreamAggIter::new(
                input.open(ctx)?,
                group_exprs.clone(),
                aggs.clone(),
                ctx.gov.clone(),
            )),
            Plan::ParallelAggregate {
                table,
                filter,
                group_exprs,
                aggs,
                dop,
                ..
            } => Box::new(ParallelAggIter::new(
                table.clone(),
                filter.clone(),
                group_exprs.clone(),
                aggs.clone(),
                (*dop).max(1).min(effective_dop(ctx)),
                ctx.clone(),
            )?),
            Plan::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                ..
            } => Box::new(HashJoinIter::new(
                build.open(ctx)?,
                probe.open(ctx)?,
                build_keys.clone(),
                probe_keys.clone(),
                ctx.gov.clone(),
            )),
            Plan::MergeJoin {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => Box::new(MergeJoinIter::new(
                left.open(ctx)?,
                right.open(ctx)?,
                left_keys.clone(),
                right_keys.clone(),
            )),
            Plan::CrossApply {
                input, tvf, args, ..
            } => Box::new(CrossApplyIter::new(
                input.open(ctx)?,
                tvf.clone(),
                args.clone(),
                ctx.clone(),
            )),
            Plan::RowNumber {
                input,
                prepend,
                order_cols,
                ..
            } => {
                if order_cols.is_empty() {
                    Box::new(RowNumberIter::new(input.open(ctx)?, *prepend))
                } else {
                    Box::new(RowNumberIter::with_peer_frames(
                        input.open(ctx)?,
                        *prepend,
                        order_cols.clone(),
                        ctx.gov.clone(),
                    ))
                }
            }
        };
        Ok(Box::new(GovernedIter::new(node, ctx.gov.clone())))
    }

    /// Execute to completion and collect the rows.
    pub fn run(&self, ctx: &ExecContext) -> Result<Vec<Row>> {
        crate::exec::collect(self.open(ctx)?)
    }

    /// Render the plan tree (the `EXPLAIN` / showplan output used to
    /// reproduce Figures 9 and 10).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::TableScan { table, filter, .. } => {
                out.push_str(&format!("{pad}Table Scan [{}]", table.name));
                if let Some(f) = filter {
                    out.push_str(&format!(" WHERE {f}"));
                }
                out.push('\n');
            }
            Plan::IndexScan {
                table,
                index,
                prefix,
                filter,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Clustered Index Scan [{}.{}] (ordered)",
                    table.name, index.name
                ));
                if !prefix.is_empty() {
                    let p: Vec<String> = prefix.iter().map(|v| v.to_string()).collect();
                    out.push_str(&format!(" SEEK prefix=({})", p.join(", ")));
                }
                if let Some(f) = filter {
                    out.push_str(&format!(" WHERE {f}"));
                }
                out.push('\n');
            }
            Plan::TvfScan { tvf, args } => {
                let a: Vec<String> = args.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!(
                    "{pad}Table Valued Function [{}({})] (streaming)\n",
                    tvf.name(),
                    a.join(", ")
                ));
            }
            Plan::Values { rows, .. } => {
                out.push_str(&format!("{pad}Constant Scan ({} rows)\n", rows.len()));
            }
            Plan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter [{predicate}]\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs, .. } => {
                let e: Vec<String> = exprs.iter().map(|x| x.to_string()).collect();
                out.push_str(&format!("{pad}Compute Scalar [{}]\n", e.join(", ")));
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort [{}]\n", fmt_keys(keys)));
                input.explain_into(out, depth + 1);
            }
            Plan::TopN { input, keys, n } => {
                out.push_str(&format!("{pad}Top N Sort [TOP {n}, {}]\n", fmt_keys(keys)));
                input.explain_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Top [TOP {n}]\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::HashAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Hash Match (Aggregate) [GROUP BY {}; {}]\n",
                    fmt_exprs(group_exprs),
                    fmt_aggs(aggs)
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::StreamAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Stream Aggregate [GROUP BY {}; {}] (non-blocking)\n",
                    fmt_exprs(group_exprs),
                    fmt_aggs(aggs)
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::ParallelAggregate {
                table,
                filter,
                group_exprs,
                aggs,
                dop,
                ..
            } => {
                // Printed as the exchange stack of Figure 9.
                out.push_str(&format!("{pad}Parallelism (Gather Streams) [DOP={dop}]\n"));
                let pad1 = "  ".repeat(depth + 1);
                out.push_str(&format!(
                    "{pad1}Hash Match (Aggregate, final) [GROUP BY {}; {}]\n",
                    fmt_exprs(group_exprs),
                    fmt_aggs(aggs)
                ));
                let pad2 = "  ".repeat(depth + 2);
                out.push_str(&format!(
                    "{pad2}Parallelism (Repartition Streams) [hash: {}]\n",
                    fmt_exprs(group_exprs)
                ));
                let pad3 = "  ".repeat(depth + 3);
                out.push_str(&format!(
                    "{pad3}Hash Match (Aggregate, partial) [GROUP BY {}]\n",
                    fmt_exprs(group_exprs)
                ));
                let pad4 = "  ".repeat(depth + 4);
                out.push_str(&format!("{pad4}Table Scan [{}] (parallel", table.name));
                if let Some(f) = filter {
                    out.push_str(&format!(", WHERE {f}"));
                }
                out.push_str(")\n");
            }
            Plan::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Hash Match (Inner Join) [{} = {}]\n",
                    fmt_exprs(build_keys),
                    fmt_exprs(probe_keys)
                ));
                build.explain_into(out, depth + 1);
                probe.explain_into(out, depth + 1);
            }
            Plan::MergeJoin {
                left,
                right,
                left_keys,
                right_keys,
                dop_hint,
                ..
            } => {
                if *dop_hint > 1 {
                    out.push_str(&format!(
                        "{pad}Parallelism (Gather Streams) [DOP={dop_hint}]\n"
                    ));
                    let pad1 = "  ".repeat(depth + 1);
                    out.push_str(&format!(
                        "{pad1}Merge Join (Inner Join) [{} = {}] (parallel, key-range partitioned)\n",
                        fmt_exprs(left_keys),
                        fmt_exprs(right_keys)
                    ));
                    left.explain_into(out, depth + 2);
                    right.explain_into(out, depth + 2);
                } else {
                    out.push_str(&format!(
                        "{pad}Merge Join (Inner Join) [{} = {}]\n",
                        fmt_exprs(left_keys),
                        fmt_exprs(right_keys)
                    ));
                    left.explain_into(out, depth + 1);
                    right.explain_into(out, depth + 1);
                }
            }
            Plan::CrossApply {
                input, tvf, args, ..
            } => {
                out.push_str(&format!(
                    "{pad}Nested Loops (Cross Apply) [{}({})]\n",
                    tvf.name(),
                    fmt_exprs(args)
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::RowNumber {
                input, order_cols, ..
            } => {
                if order_cols.is_empty() {
                    out.push_str(&format!("{pad}Sequence Project [ROW_NUMBER()]\n"));
                } else {
                    out.push_str(&format!(
                        "{pad}Sequence Project [ROW_NUMBER(), peer frames over ordered input]\n"
                    ));
                }
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Cap a plan's DOP at the context's configured parallelism.
fn effective_dop(ctx: &ExecContext) -> usize {
    ctx.dop.max(1)
}

fn fmt_exprs(exprs: &[Expr]) -> String {
    let v: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
    v.join(", ")
}

fn fmt_keys(keys: &[SortKey]) -> String {
    let v: Vec<String> = keys
        .iter()
        .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
        .collect();
    v.join(", ")
}

fn fmt_aggs(aggs: &[AggSpec]) -> String {
    let v: Vec<String> = aggs
        .iter()
        .map(|a| {
            if a.args.is_empty() {
                format!("{}(*)", a.factory.name())
            } else {
                format!("{}({})", a.factory.name(), fmt_exprs(&a.args))
            }
        })
        .collect();
    v.join(", ")
}

/// Result of a query or statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Arc<Schema>,
    pub rows: Vec<Row>,
    /// Rows affected by DML (0 for SELECT).
    pub affected: u64,
}

impl QueryResult {
    pub fn empty() -> QueryResult {
        QueryResult {
            schema: Arc::new(Schema::empty()),
            rows: Vec::new(),
            affected: 0,
        }
    }

    /// Render as an ASCII table (for the shell and the report harness).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(names.join(" | ").len().max(4)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

/// Helper used by planners: build the output schema of a grouped
/// aggregate (group columns then aggregate outputs).
pub fn aggregate_schema(
    input: &Schema,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[AggSpec],
) -> Result<Arc<Schema>> {
    use seqdb_types::{Column, DataType};
    let mut cols = Vec::with_capacity(group_exprs.len() + aggs.len());
    for (e, name) in group_exprs.iter().zip(group_names) {
        let dtype = match e {
            Expr::Column { index, .. } => input.column(*index).dtype,
            Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
            _ => DataType::Text,
        };
        cols.push(Column::new(name.clone(), dtype));
    }
    if group_names.len() != group_exprs.len() {
        return Err(DbError::Plan("group name/expr arity mismatch".into()));
    }
    for a in aggs {
        let dtype = match a.factory.name() {
            "COUNT" => DataType::Int,
            "AVG" => DataType::Float,
            _ => match a.args.first() {
                Some(Expr::Column { index, .. }) => input.column(*index).dtype,
                _ => DataType::Int,
            },
        };
        cols.push(Column::new(a.name.clone(), dtype));
    }
    Ok(Arc::new(Schema::new(cols)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_context;
    use crate::expr::BinOp;
    use crate::udx::CountAgg;
    use seqdb_storage::rowfmt::Compression;
    use seqdb_types::{Column, DataType};

    fn setup() -> (ExecContext, Arc<Table>) {
        let ctx = test_context();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("grp", DataType::Int),
        ]);
        let t = ctx
            .catalog
            .create_table("t", schema, Compression::Row, Some(vec![0]))
            .unwrap();
        for i in 0..100i64 {
            t.insert(&Row::new(vec![Value::Int(i), Value::Int(i % 4)]))
                .unwrap();
        }
        (ctx, t)
    }

    #[test]
    fn composed_plan_runs() {
        let (ctx, t) = setup();
        let scan_schema = t.schema.clone();
        let plan = Plan::TopN {
            input: Box::new(Plan::HashAggregate {
                input: Box::new(Plan::TableScan {
                    table: t,
                    filter: Some(Expr::binary(BinOp::Lt, Expr::col(0, "id"), Expr::lit(50))),
                    projection: None,
                    schema: scan_schema.clone(),
                }),
                group_exprs: vec![Expr::col(1, "grp")],
                aggs: vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
                schema: aggregate_schema(
                    &scan_schema,
                    &[Expr::col(1, "grp")],
                    &["grp".to_string()],
                    &[AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
                )
                .unwrap(),
            }),
            keys: vec![SortKey::desc(Expr::col(1, "cnt"))],
            n: 2,
        };
        let rows = plan.run(&ctx).unwrap();
        assert_eq!(rows.len(), 2);
        // Groups 0,1 have 13 members (0..50 has 13 for grp 0,1; 12 for 2,3).
        assert_eq!(rows[0][1], Value::Int(13));
    }

    #[test]
    fn explain_renders_parallel_aggregate_like_figure9() {
        let (_ctx, t) = setup();
        let schema = t.schema.clone();
        let plan = Plan::ParallelAggregate {
            table: t,
            filter: None,
            group_exprs: vec![Expr::col(1, "grp")],
            aggs: vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            dop: 4,
            schema,
        };
        let ex = plan.explain();
        assert!(ex.contains("Parallelism (Gather Streams) [DOP=4]"));
        assert!(ex.contains("Hash Match (Aggregate, final)"));
        assert!(ex.contains("Parallelism (Repartition Streams)"));
        assert!(ex.contains("Table Scan [t] (parallel)"));
    }

    #[test]
    fn explain_nests_children() {
        let (_ctx, t) = setup();
        let schema = t.schema.clone();
        let plan = Plan::Filter {
            input: Box::new(Plan::TableScan {
                table: t,
                filter: None,
                projection: None,
                schema,
            }),
            predicate: Expr::binary(BinOp::Gt, Expr::col(0, "id"), Expr::lit(5)),
        };
        let ex = plan.explain();
        let lines: Vec<&str> = ex.lines().collect();
        assert!(lines[0].starts_with("Filter"));
        assert!(lines[1].starts_with("  Table Scan"));
    }
}

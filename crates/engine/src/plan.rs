//! Physical plans: a tree of operators that can be opened into a
//! [`RowIterator`] pipeline and pretty-printed for `EXPLAIN` (the query
//! plans of the paper's Figures 9 and 10).

use std::sync::Arc;

use seqdb_types::{DbError, Result, Row, Schema, Value};

use crate::catalog::{Table, TableIndex};
use crate::exec::agg::{AggSpec, HashAggIter, StreamAggIter};
use crate::exec::apply::{CrossApplyIter, TvfScanIter};
use crate::exec::filter::{FilterIter, LimitIter, ProjectIter};
use crate::exec::join::{HashJoinIter, MergeJoinIter};
use crate::exec::scan::{HeapScanIter, IndexScanIter};
use crate::exec::sort::{SortIter, SortKey, TopNIter};
use crate::exec::window::RowNumberIter;
use crate::exec::{BoxedIter, ExecContext, ValuesIter};
use crate::expr::Expr;
use crate::governor::GovernedIter;
use crate::parallel::ParallelAggIter;
use crate::stats::StatsIter;
use crate::udx::TableFunction;

/// A physical query plan node.
pub enum Plan {
    /// Heap scan with pushed-down filter/projection.
    TableScan {
        table: Arc<Table>,
        filter: Option<Expr>,
        projection: Option<Vec<usize>>,
        schema: Arc<Schema>,
    },
    /// Ordered clustered-index scan, optionally restricted to an equality
    /// prefix of the key.
    IndexScan {
        table: Arc<Table>,
        index: Arc<TableIndex>,
        prefix: Vec<Value>,
        filter: Option<Expr>,
        projection: Option<Vec<usize>>,
        schema: Arc<Schema>,
    },
    /// `FROM tvf(constants)`.
    TvfScan {
        tvf: Arc<dyn TableFunction>,
        args: Vec<Value>,
    },
    /// Literal rows (`INSERT ... VALUES`, tests).
    Values {
        schema: Arc<Schema>,
        rows: Vec<Row>,
    },
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<Expr>,
        schema: Arc<Schema>,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
    },
    TopN {
        input: Box<Plan>,
        keys: Vec<SortKey>,
        n: u64,
    },
    Limit {
        input: Box<Plan>,
        n: u64,
    },
    /// Serial blocking hash aggregate.
    HashAggregate {
        input: Box<Plan>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        schema: Arc<Schema>,
    },
    /// Non-blocking aggregate over input sorted by the group exprs.
    StreamAggregate {
        input: Box<Plan>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        schema: Arc<Schema>,
    },
    /// Exchange-parallel scan + partial/final aggregate (Figure 9).
    ParallelAggregate {
        table: Arc<Table>,
        filter: Option<Expr>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        dop: usize,
        schema: Arc<Schema>,
    },
    HashJoin {
        build: Box<Plan>,
        probe: Box<Plan>,
        build_keys: Vec<Expr>,
        probe_keys: Vec<Expr>,
        /// True when the build side is the statement's RIGHT input (the
        /// binder puts the estimated-smaller side on the build); the
        /// operator then restores `left ++ right` output order.
        probe_first: bool,
        /// Workers for the spilled partition phase (1 = serial). Only
        /// reached when the build side overflows its memory grant.
        dop: usize,
        schema: Arc<Schema>,
    },
    MergeJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        schema: Arc<Schema>,
        /// Degree of parallelism this join *would* run at on a machine
        /// with that many schedulers; annotated in EXPLAIN (Figure 10).
        dop_hint: usize,
    },
    CrossApply {
        input: Box<Plan>,
        tvf: Arc<dyn TableFunction>,
        args: Vec<Expr>,
        schema: Arc<Schema>,
    },
    /// ROW_NUMBER() over the (already sorted) input. `order_cols` is
    /// empty when a Sort below this node buffered (and budget-accounted)
    /// the rows; non-empty when the planner skipped the Sort because the
    /// input was already ordered — the operator then buffers each peer
    /// frame (rows tied on those columns) itself, charged against the
    /// query's memory budget.
    RowNumber {
        input: Box<Plan>,
        prepend: bool,
        order_cols: Vec<usize>,
        schema: Arc<Schema>,
    },
}

impl Plan {
    /// Output schema of this node.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            Plan::TableScan { schema, .. }
            | Plan::IndexScan { schema, .. }
            | Plan::Values { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::HashAggregate { schema, .. }
            | Plan::StreamAggregate { schema, .. }
            | Plan::ParallelAggregate { schema, .. }
            | Plan::HashJoin { schema, .. }
            | Plan::MergeJoin { schema, .. }
            | Plan::CrossApply { schema, .. }
            | Plan::RowNumber { schema, .. } => schema.clone(),
            Plan::TvfScan { tvf, .. } => tvf.schema(),
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopN { input, .. }
            | Plan::Limit { input, .. } => input.schema(),
        }
    }

    /// Open the plan into an executable iterator pipeline. Every node is
    /// wrapped in a [`GovernedIter`], so cancellation/timeout checks run
    /// between rows at every operator boundary — including inside
    /// blocking operators, which drain their (wrapped) children.
    ///
    /// When the context carries an [`crate::stats::ExecStats`] collector
    /// (`EXPLAIN ANALYZE`), each node additionally registers a stats slot
    /// — in pre-order, before recursing into children, so slot *i* lines
    /// up with the *i*-th operator header of [`Plan::explain`] — and is
    /// wrapped in a [`StatsIter`]. The slot is shared via `Arc` with the
    /// collector, so actuals survive an early pipeline drop.
    pub fn open(&self, ctx: &ExecContext) -> Result<BoxedIter> {
        self.open_demanded(ctx, None)
    }

    /// [`Plan::open`] with a column-demand pass: `demand` marks which of
    /// this node's *output* columns its consumer will read (`None` = all
    /// of them). Demand is narrowed top-down through filters, projections,
    /// aggregates, sorts and joins, and lands on heap scans as a decode
    /// mask — columns nothing reads are skipped in the byte stream
    /// instead of being materialized.
    fn open_demanded(&self, ctx: &ExecContext, demand: Option<&[bool]>) -> Result<BoxedIter> {
        let mut local = ctx.clone();
        let slot = local.stats.as_ref().map(|s| s.register(self.label()));
        local.node = slot.clone();
        let ctx = &local;
        let node: BoxedIter = match self {
            Plan::TableScan {
                table,
                filter,
                projection,
                ..
            } => {
                let decode_mask = scan_decode_mask(
                    &table.schema,
                    filter.as_ref(),
                    projection.as_deref(),
                    demand,
                );
                Box::new(HeapScanIter::new(
                    table.clone(),
                    filter.clone(),
                    projection.clone(),
                    decode_mask,
                ))
            }
            Plan::IndexScan {
                table,
                index,
                prefix,
                filter,
                projection,
                ..
            } => Box::new(IndexScanIter::new(
                table,
                index.clone(),
                prefix,
                filter.clone(),
                projection.clone(),
            )),
            Plan::TvfScan { tvf, args } => Box::new(TvfScanIter::open(tvf, args, ctx)?),
            Plan::Values { rows, .. } => Box::new(ValuesIter::new(rows.clone())),
            Plan::Filter { input, predicate } => {
                let child = demand.map(|d| {
                    let mut d = d.to_vec();
                    demand_exprs(&mut d, std::slice::from_ref(predicate));
                    d
                });
                Box::new(FilterIter::new(
                    input.open_demanded(ctx, child.as_deref())?,
                    predicate.clone(),
                ))
            }
            Plan::Project { input, exprs, .. } => {
                let mut child = vec![false; input.schema().len()];
                demand_exprs(&mut child, exprs.iter());
                Box::new(ProjectIter::new(
                    input.open_demanded(ctx, Some(&child))?,
                    exprs.clone(),
                ))
            }
            Plan::Sort { input, keys } => {
                let child = demand.map(|d| {
                    let mut d = d.to_vec();
                    demand_exprs(&mut d, keys.iter().map(|k| &k.expr));
                    d
                });
                Box::new(SortIter::new(
                    input.open_demanded(ctx, child.as_deref())?,
                    keys.clone(),
                    ctx.clone(),
                ))
            }
            Plan::TopN { input, keys, n } => {
                let child = demand.map(|d| {
                    let mut d = d.to_vec();
                    demand_exprs(&mut d, keys.iter().map(|k| &k.expr));
                    d
                });
                Box::new(TopNIter::new(
                    input.open_demanded(ctx, child.as_deref())?,
                    keys.clone(),
                    *n as usize,
                ))
            }
            Plan::Limit { input, n } => {
                Box::new(LimitIter::new(input.open_demanded(ctx, demand)?, *n))
            }
            Plan::HashAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                let child = aggregate_demand(&input.schema(), group_exprs, aggs);
                Box::new(HashAggIter::new(
                    input.open_demanded(ctx, Some(&child))?,
                    group_exprs.clone(),
                    aggs.clone(),
                    ctx.clone(),
                ))
            }
            Plan::StreamAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                let child = aggregate_demand(&input.schema(), group_exprs, aggs);
                Box::new(StreamAggIter::new(
                    input.open_demanded(ctx, Some(&child))?,
                    group_exprs.clone(),
                    aggs.clone(),
                    ctx.gov.clone(),
                    ctx.batch_size,
                ))
            }
            Plan::ParallelAggregate {
                table,
                filter,
                group_exprs,
                aggs,
                dop,
                ..
            } => Box::new(ParallelAggIter::new(
                table.clone(),
                filter.clone(),
                group_exprs.clone(),
                aggs.clone(),
                (*dop).max(1).min(effective_dop(ctx)),
                ctx.clone(),
            )?),
            Plan::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                probe_first,
                dop,
                ..
            } => {
                // Output is left ++ right (left = probe side when the
                // binder swapped the build): split the demand across the
                // two inputs, then add each side's join keys.
                let build_len = build.schema().len();
                let probe_len = probe.schema().len();
                let first_len = if *probe_first { probe_len } else { build_len };
                let mut build_d = vec![demand.is_none(); build_len];
                let mut probe_d = vec![demand.is_none(); probe_len];
                if let Some(d) = demand {
                    for i in 0..build_len + probe_len {
                        let wanted = d.get(i).copied().unwrap_or(true);
                        let (side, at) = if i < first_len {
                            (
                                if *probe_first {
                                    &mut probe_d
                                } else {
                                    &mut build_d
                                },
                                i,
                            )
                        } else {
                            let at = i - first_len;
                            (
                                if *probe_first {
                                    &mut build_d
                                } else {
                                    &mut probe_d
                                },
                                at,
                            )
                        };
                        side[at] = side[at] || wanted;
                    }
                }
                demand_exprs(&mut build_d, build_keys.iter());
                demand_exprs(&mut probe_d, probe_keys.iter());
                Box::new(HashJoinIter::new(
                    build.open_demanded(ctx, Some(&build_d))?,
                    probe.open_demanded(ctx, Some(&probe_d))?,
                    build_keys.clone(),
                    probe_keys.clone(),
                    *probe_first,
                    (*dop).max(1).min(effective_dop(ctx)),
                    ctx.clone(),
                ))
            }
            Plan::MergeJoin {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                let left_len = left.schema().len();
                let right_len = right.schema().len();
                let mut left_d = vec![demand.is_none(); left_len];
                let mut right_d = vec![demand.is_none(); right_len];
                if let Some(d) = demand {
                    for i in 0..left_len + right_len {
                        let wanted = d.get(i).copied().unwrap_or(true);
                        if i < left_len {
                            left_d[i] = left_d[i] || wanted;
                        } else {
                            right_d[i - left_len] = right_d[i - left_len] || wanted;
                        }
                    }
                }
                demand_exprs(&mut left_d, left_keys.iter());
                demand_exprs(&mut right_d, right_keys.iter());
                Box::new(MergeJoinIter::new(
                    left.open_demanded(ctx, Some(&left_d))?,
                    right.open_demanded(ctx, Some(&right_d))?,
                    left_keys.clone(),
                    right_keys.clone(),
                ))
            }
            Plan::CrossApply {
                input, tvf, args, ..
            } => Box::new(CrossApplyIter::new(
                // The apply's output interleaves input columns with the
                // function's rows; stay conservative and decode them all.
                input.open(ctx)?,
                tvf.clone(),
                args.clone(),
                ctx.clone(),
            )),
            Plan::RowNumber {
                input,
                prepend,
                order_cols,
                ..
            } => {
                if order_cols.is_empty() {
                    Box::new(RowNumberIter::new(input.open(ctx)?, *prepend))
                } else {
                    Box::new(RowNumberIter::with_peer_frames(
                        input.open(ctx)?,
                        *prepend,
                        order_cols.clone(),
                        ctx.gov.clone(),
                    ))
                }
            }
        };
        let governed: BoxedIter = Box::new(GovernedIter::new(node, ctx.gov.clone()));
        Ok(match slot {
            Some(slot) => Box::new(StatsIter::new(governed, slot, ctx.gov.clone())),
            None => governed,
        })
    }

    /// Short operator name (the head of the `EXPLAIN` header line), used
    /// to label stats slots.
    fn label(&self) -> &'static str {
        match self {
            Plan::TableScan { .. } => "Table Scan",
            Plan::IndexScan { .. } => "Clustered Index Scan",
            Plan::TvfScan { .. } => "Table Valued Function",
            Plan::Values { .. } => "Constant Scan",
            Plan::Filter { .. } => "Filter",
            Plan::Project { .. } => "Compute Scalar",
            Plan::Sort { .. } => "Sort",
            Plan::TopN { .. } => "Top N Sort",
            Plan::Limit { .. } => "Top",
            Plan::HashAggregate { .. } => "Hash Match (Aggregate)",
            Plan::StreamAggregate { .. } => "Stream Aggregate",
            Plan::ParallelAggregate { .. } => "Parallelism (Gather Streams)",
            Plan::HashJoin { .. } => "Hash Match (Inner Join)",
            Plan::MergeJoin { .. } => "Merge Join",
            Plan::CrossApply { .. } => "Nested Loops (Cross Apply)",
            Plan::RowNumber { .. } => "Sequence Project",
        }
    }

    /// Cardinality estimate for this node, `None` when unknown. The
    /// estimator is deliberately simple — enough for `EXPLAIN ANALYZE`
    /// to show actual-vs-estimated drift, not a costing model.
    pub fn estimate_rows(&self) -> Option<u64> {
        match self {
            // No selectivity model: a (possibly filtered) scan estimates
            // its full input, which is exactly the kind of drift
            // actual-vs-estimated output is meant to expose.
            Plan::TableScan { table, .. } | Plan::IndexScan { table, .. } => {
                Some(table.row_count())
            }
            Plan::ParallelAggregate { .. } => None,
            Plan::TvfScan { .. } => None,
            Plan::Values { rows, .. } => Some(rows.len() as u64),
            Plan::Filter { input, .. } => input.estimate_rows(),
            Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::RowNumber { input, .. } => input.estimate_rows(),
            Plan::TopN { input, n, .. } | Plan::Limit { input, n } => {
                Some(input.estimate_rows().map_or(*n, |e| e.min(*n)))
            }
            Plan::HashAggregate { .. } | Plan::StreamAggregate { .. } => None,
            Plan::HashJoin { .. } | Plan::MergeJoin { .. } | Plan::CrossApply { .. } => None,
        }
    }

    /// Execute to completion and collect the rows. The root drain speaks
    /// the batch protocol (`ctx.batch_size` rows per pull); with
    /// `SET BATCH_SIZE = 0` it degrades to the scalar `next()` loop and
    /// the whole plan runs row-at-a-time.
    pub fn run(&self, ctx: &ExecContext) -> Result<Vec<Row>> {
        crate::exec::collect_batched(self.open(ctx)?, ctx.batch_size)
    }

    /// Render the plan tree (the `EXPLAIN` / showplan output used to
    /// reproduce Figures 9 and 10).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, &mut Annotations::none());
        out
    }

    /// Render the plan tree annotated with the actuals a run collected —
    /// the `EXPLAIN ANALYZE` / "actual execution plan" output. `stats`
    /// must come from opening *this* plan with the collector attached;
    /// slots pair with operator headers in pre-order.
    pub fn explain_analyze(&self, stats: &crate::stats::ExecStats) -> String {
        let nodes = stats.nodes();
        let mut ann = Annotations {
            nodes: &nodes,
            next: 0,
        };
        let mut out = String::new();
        self.explain_into(&mut out, 0, &mut ann);
        out
    }

    /// Terminate an operator header line: append the node's actuals when
    /// rendering an analyzed plan, then the newline. Every variant calls
    /// this exactly once (on its first line), keeping the rendering and
    /// the pre-order slot registration of [`Plan::open`] in lockstep.
    fn end_header(&self, out: &mut String, ann: &mut Annotations) {
        if let Some(node) = ann.nodes.get(ann.next) {
            ann.next += 1;
            out.push_str(&node.annotation(self.estimate_rows()));
        }
        out.push('\n');
    }

    fn explain_into(&self, out: &mut String, depth: usize, ann: &mut Annotations) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::TableScan { table, filter, .. } => {
                out.push_str(&format!("{pad}Table Scan [{}]", table.name));
                if let Some(f) = filter {
                    out.push_str(&format!(" WHERE {f}"));
                }
                self.end_header(out, ann);
            }
            Plan::IndexScan {
                table,
                index,
                prefix,
                filter,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Clustered Index Scan [{}.{}] (ordered)",
                    table.name, index.name
                ));
                if !prefix.is_empty() {
                    let p: Vec<String> = prefix.iter().map(|v| v.to_string()).collect();
                    out.push_str(&format!(" SEEK prefix=({})", p.join(", ")));
                }
                if let Some(f) = filter {
                    out.push_str(&format!(" WHERE {f}"));
                }
                self.end_header(out, ann);
            }
            Plan::TvfScan { tvf, args } => {
                let a: Vec<String> = args.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!(
                    "{pad}Table Valued Function [{}({})] (streaming)",
                    tvf.name(),
                    a.join(", ")
                ));
                self.end_header(out, ann);
            }
            Plan::Values { rows, .. } => {
                out.push_str(&format!("{pad}Constant Scan ({} rows)", rows.len()));
                self.end_header(out, ann);
            }
            Plan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter [{predicate}]"));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::Project { input, exprs, .. } => {
                let e: Vec<String> = exprs.iter().map(|x| x.to_string()).collect();
                out.push_str(&format!("{pad}Compute Scalar [{}]", e.join(", ")));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort [{}]", fmt_keys(keys)));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::TopN { input, keys, n } => {
                out.push_str(&format!("{pad}Top N Sort [TOP {n}, {}]", fmt_keys(keys)));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Top [TOP {n}]"));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::HashAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Hash Match (Aggregate) [GROUP BY {}; {}]",
                    fmt_exprs(group_exprs),
                    fmt_aggs(aggs)
                ));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::StreamAggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Stream Aggregate [GROUP BY {}; {}] (non-blocking)",
                    fmt_exprs(group_exprs),
                    fmt_aggs(aggs)
                ));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::ParallelAggregate {
                table,
                filter,
                group_exprs,
                aggs,
                dop,
                ..
            } => {
                // Printed as the exchange stack of Figure 9. One plan node
                // executes the whole stack, so the actuals annotate the
                // Gather line only.
                out.push_str(&format!("{pad}Parallelism (Gather Streams) [DOP={dop}]"));
                self.end_header(out, ann);
                let pad1 = "  ".repeat(depth + 1);
                out.push_str(&format!(
                    "{pad1}Hash Match (Aggregate, final) [GROUP BY {}; {}]\n",
                    fmt_exprs(group_exprs),
                    fmt_aggs(aggs)
                ));
                let pad2 = "  ".repeat(depth + 2);
                out.push_str(&format!(
                    "{pad2}Parallelism (Repartition Streams) [hash: {}]\n",
                    fmt_exprs(group_exprs)
                ));
                let pad3 = "  ".repeat(depth + 3);
                out.push_str(&format!(
                    "{pad3}Hash Match (Aggregate, partial) [GROUP BY {}]\n",
                    fmt_exprs(group_exprs)
                ));
                let pad4 = "  ".repeat(depth + 4);
                out.push_str(&format!("{pad4}Table Scan [{}] (parallel", table.name));
                if let Some(f) = filter {
                    out.push_str(&format!(", WHERE {f}"));
                }
                out.push_str(")\n");
            }
            Plan::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                probe_first,
                dop,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Hash Match (Inner Join) [{} = {}]",
                    fmt_exprs(build_keys),
                    fmt_exprs(probe_keys)
                ));
                if *probe_first {
                    out.push_str(" (build=right)");
                }
                if *dop > 1 {
                    out.push_str(&format!(" [DOP={dop}]"));
                }
                self.end_header(out, ann);
                build.explain_into(out, depth + 1, ann);
                probe.explain_into(out, depth + 1, ann);
            }
            Plan::MergeJoin {
                left,
                right,
                left_keys,
                right_keys,
                dop_hint,
                ..
            } => {
                if *dop_hint > 1 {
                    out.push_str(&format!(
                        "{pad}Parallelism (Gather Streams) [DOP={dop_hint}]"
                    ));
                    self.end_header(out, ann);
                    let pad1 = "  ".repeat(depth + 1);
                    out.push_str(&format!(
                        "{pad1}Merge Join (Inner Join) [{} = {}] (parallel, key-range partitioned)\n",
                        fmt_exprs(left_keys),
                        fmt_exprs(right_keys)
                    ));
                    left.explain_into(out, depth + 2, ann);
                    right.explain_into(out, depth + 2, ann);
                } else {
                    out.push_str(&format!(
                        "{pad}Merge Join (Inner Join) [{} = {}]",
                        fmt_exprs(left_keys),
                        fmt_exprs(right_keys)
                    ));
                    self.end_header(out, ann);
                    left.explain_into(out, depth + 1, ann);
                    right.explain_into(out, depth + 1, ann);
                }
            }
            Plan::CrossApply {
                input, tvf, args, ..
            } => {
                out.push_str(&format!(
                    "{pad}Nested Loops (Cross Apply) [{}({})]",
                    tvf.name(),
                    fmt_exprs(args)
                ));
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
            Plan::RowNumber {
                input, order_cols, ..
            } => {
                if order_cols.is_empty() {
                    out.push_str(&format!("{pad}Sequence Project [ROW_NUMBER()]"));
                } else {
                    out.push_str(&format!(
                        "{pad}Sequence Project [ROW_NUMBER(), peer frames over ordered input]"
                    ));
                }
                self.end_header(out, ann);
                input.explain_into(out, depth + 1, ann);
            }
        }
    }
}

/// Cursor pairing `EXPLAIN` operator headers with the pre-order stats
/// slots an analyzed run registered. With no slots (plain `EXPLAIN`)
/// every lookup misses and the rendering is unchanged.
struct Annotations<'a> {
    nodes: &'a [Arc<crate::stats::NodeStats>],
    next: usize,
}

impl Annotations<'_> {
    fn none() -> Annotations<'static> {
        Annotations {
            nodes: &[],
            next: 0,
        }
    }
}

/// Cap a plan's DOP at the context's configured parallelism.
fn effective_dop(ctx: &ExecContext) -> usize {
    ctx.dop.max(1)
}

/// Mark every column the expressions reference in `demand`. References
/// beyond the demand's arity are ignored (they cannot name a decodable
/// column of the child).
fn demand_exprs<'a>(demand: &mut [bool], exprs: impl IntoIterator<Item = &'a Expr>) {
    let mut refs = Vec::new();
    for e in exprs {
        e.referenced_columns(&mut refs);
    }
    for i in refs {
        if let Some(slot) = demand.get_mut(i) {
            *slot = true;
        }
    }
}

/// Input columns an aggregate reads: its group keys and argument
/// expressions — nothing else, whatever the consumer above demanded.
fn aggregate_demand(input: &Schema, group_exprs: &[Expr], aggs: &[AggSpec]) -> Vec<bool> {
    let mut d = vec![false; input.len()];
    demand_exprs(&mut d, group_exprs.iter());
    demand_exprs(&mut d, aggs.iter().flat_map(|a| &a.args));
    d
}

/// Columns a heap scan must actually decode: the consumer's demand over
/// the scan's *output*, mapped back through its pushed projection, plus
/// whatever its own residual filter reads. `None` = decode everything.
fn scan_decode_mask(
    schema: &Schema,
    filter: Option<&Expr>,
    projection: Option<&[usize]>,
    demand: Option<&[bool]>,
) -> Option<Vec<bool>> {
    let demand = demand?;
    let mut mask = vec![false; schema.len()];
    match projection {
        Some(p) => {
            for (out_idx, &col) in p.iter().enumerate() {
                if demand.get(out_idx).copied().unwrap_or(true) {
                    if let Some(slot) = mask.get_mut(col) {
                        *slot = true;
                    }
                }
            }
        }
        None => {
            for (i, slot) in mask.iter_mut().enumerate() {
                *slot = demand.get(i).copied().unwrap_or(true);
            }
        }
    }
    if let Some(f) = filter {
        demand_exprs(&mut mask, std::slice::from_ref(f));
    }
    if mask.iter().all(|&b| b) {
        None
    } else {
        Some(mask)
    }
}

fn fmt_exprs(exprs: &[Expr]) -> String {
    let v: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
    v.join(", ")
}

fn fmt_keys(keys: &[SortKey]) -> String {
    let v: Vec<String> = keys
        .iter()
        .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
        .collect();
    v.join(", ")
}

fn fmt_aggs(aggs: &[AggSpec]) -> String {
    let v: Vec<String> = aggs
        .iter()
        .map(|a| {
            if a.args.is_empty() {
                format!("{}(*)", a.factory.name())
            } else {
                format!("{}({})", a.factory.name(), fmt_exprs(&a.args))
            }
        })
        .collect();
    v.join(", ")
}

/// Result of a query or statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Arc<Schema>,
    pub rows: Vec<Row>,
    /// Rows affected by DML (0 for SELECT).
    pub affected: u64,
}

impl QueryResult {
    pub fn empty() -> QueryResult {
        QueryResult {
            schema: Arc::new(Schema::empty()),
            rows: Vec::new(),
            affected: 0,
        }
    }

    /// Render as an ASCII table (for the shell and the report harness).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(names.join(" | ").len().max(4)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

/// Helper used by planners: build the output schema of a grouped
/// aggregate (group columns then aggregate outputs).
pub fn aggregate_schema(
    input: &Schema,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[AggSpec],
) -> Result<Arc<Schema>> {
    use seqdb_types::{Column, DataType};
    let mut cols = Vec::with_capacity(group_exprs.len() + aggs.len());
    for (e, name) in group_exprs.iter().zip(group_names) {
        let dtype = match e {
            Expr::Column { index, .. } => input.column(*index).dtype,
            Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
            _ => DataType::Text,
        };
        cols.push(Column::new(name.clone(), dtype));
    }
    if group_names.len() != group_exprs.len() {
        return Err(DbError::Plan("group name/expr arity mismatch".into()));
    }
    for a in aggs {
        let dtype = match a.factory.name() {
            "COUNT" => DataType::Int,
            "AVG" => DataType::Float,
            _ => match a.args.first() {
                Some(Expr::Column { index, .. }) => input.column(*index).dtype,
                _ => DataType::Int,
            },
        };
        cols.push(Column::new(a.name.clone(), dtype));
    }
    Ok(Arc::new(Schema::new(cols)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_context;
    use crate::expr::BinOp;
    use crate::udx::CountAgg;
    use seqdb_storage::rowfmt::Compression;
    use seqdb_types::{Column, DataType};

    fn setup() -> (ExecContext, Arc<Table>) {
        let ctx = test_context();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("grp", DataType::Int),
        ]);
        let t = ctx
            .catalog
            .create_table("t", schema, Compression::Row, Some(vec![0]))
            .unwrap();
        for i in 0..100i64 {
            t.insert(&Row::new(vec![Value::Int(i), Value::Int(i % 4)]))
                .unwrap();
        }
        (ctx, t)
    }

    #[test]
    fn composed_plan_runs() {
        let (ctx, t) = setup();
        let scan_schema = t.schema.clone();
        let plan = Plan::TopN {
            input: Box::new(Plan::HashAggregate {
                input: Box::new(Plan::TableScan {
                    table: t,
                    filter: Some(Expr::binary(BinOp::Lt, Expr::col(0, "id"), Expr::lit(50))),
                    projection: None,
                    schema: scan_schema.clone(),
                }),
                group_exprs: vec![Expr::col(1, "grp")],
                aggs: vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
                schema: aggregate_schema(
                    &scan_schema,
                    &[Expr::col(1, "grp")],
                    &["grp".to_string()],
                    &[AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
                )
                .unwrap(),
            }),
            keys: vec![SortKey::desc(Expr::col(1, "cnt"))],
            n: 2,
        };
        let rows = plan.run(&ctx).unwrap();
        assert_eq!(rows.len(), 2);
        // Groups 0,1 have 13 members (0..50 has 13 for grp 0,1; 12 for 2,3).
        assert_eq!(rows[0][1], Value::Int(13));
    }

    #[test]
    fn explain_renders_parallel_aggregate_like_figure9() {
        let (_ctx, t) = setup();
        let schema = t.schema.clone();
        let plan = Plan::ParallelAggregate {
            table: t,
            filter: None,
            group_exprs: vec![Expr::col(1, "grp")],
            aggs: vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            dop: 4,
            schema,
        };
        let ex = plan.explain();
        assert!(ex.contains("Parallelism (Gather Streams) [DOP=4]"));
        assert!(ex.contains("Hash Match (Aggregate, final)"));
        assert!(ex.contains("Parallelism (Repartition Streams)"));
        assert!(ex.contains("Table Scan [t] (parallel)"));
    }

    #[test]
    fn explain_nests_children() {
        let (_ctx, t) = setup();
        let schema = t.schema.clone();
        let plan = Plan::Filter {
            input: Box::new(Plan::TableScan {
                table: t,
                filter: None,
                projection: None,
                schema,
            }),
            predicate: Expr::binary(BinOp::Gt, Expr::col(0, "id"), Expr::lit(5)),
        };
        let ex = plan.explain();
        let lines: Vec<&str> = ex.lines().collect();
        assert!(lines[0].starts_with("Filter"));
        assert!(lines[1].starts_with("  Table Scan"));
    }
}

//! `CHECK TABLE` / `CHECK DATABASE` orchestration: walk every page and
//! blob of the catalog through the storage layer's integrity primitives
//! (`seqdb_storage::scrub`), repair what has a good image, quarantine
//! what does not, and report the findings as a result set.
//!
//! The scrub is designed to run *next to* live traffic:
//!
//! * pages are verified straight from the durable store, never through
//!   the buffer pool, so a scan neither evicts the working set nor gets
//!   fooled by a cached good copy of a rotted disk image;
//! * the walk yields between slices ([`PAGES_PER_SLICE`]) so a
//!   multi-gigabyte table does not monopolize the I/O path;
//! * repairs go through the buffer pool's WAL-before-data rewrite, so
//!   readers only ever observe the old good image or the restored one;
//! * objects that cannot be repaired are fenced in the persisted
//!   [`Quarantine`] — statements touching them fail with the typed
//!   `DbError::Quarantined` while the rest of the database stays online.
//!
//! Progress and findings surface three ways: the returned [`ScrubReport`]
//! (one result row per finding, SQL-visible through `CHECK`), the
//! [`ScrubState`] snapshot behind `DM_DB_SCRUB_STATUS()`, and the global
//! `scrub_*` storage counters.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use seqdb_storage::scrub::{check_page, repair_page, wal_last_images};
use seqdb_storage::{storage_counters, BlobCheck, PageId, Quarantine};
use seqdb_types::{Column, DataType, Result, Row, Schema, Value};

use crate::database::Database;
use crate::plan::QueryResult;

/// Pages verified per slice before the scrub yields the CPU. Keeps a
/// full-database scan from starving concurrent statements of I/O.
const PAGES_PER_SLICE: usize = 128;

/// Pause between slices.
const SLICE_PAUSE: std::time::Duration = std::time::Duration::from_millis(1);

/// Shared scrub-progress state: the quarantine list plus monotonic
/// per-database counters, snapshot by `DM_DB_SCRUB_STATUS()`.
pub struct ScrubState {
    running: AtomicBool,
    pages_checked: AtomicU64,
    blobs_checked: AtomicU64,
    corruptions_found: AtomicU64,
    pages_repaired: AtomicU64,
    quarantine: Arc<Quarantine>,
}

impl ScrubState {
    pub fn new(quarantine: Arc<Quarantine>) -> Arc<ScrubState> {
        Arc::new(ScrubState {
            running: AtomicBool::new(false),
            pages_checked: AtomicU64::new(0),
            blobs_checked: AtomicU64::new(0),
            corruptions_found: AtomicU64::new(0),
            pages_repaired: AtomicU64::new(0),
            quarantine,
        })
    }

    pub fn quarantine(&self) -> &Arc<Quarantine> {
        &self.quarantine
    }

    /// Point-in-time view for the DMV.
    pub fn status(&self) -> ScrubStatus {
        ScrubStatus {
            running: self.running.load(Ordering::Acquire),
            pages_checked: self.pages_checked.load(Ordering::Relaxed),
            blobs_checked: self.blobs_checked.load(Ordering::Relaxed),
            corruptions_found: self.corruptions_found.load(Ordering::Relaxed),
            pages_repaired: self.pages_repaired.load(Ordering::Relaxed),
            quarantined: self.quarantine.snapshot(),
        }
    }

    /// Mark a scrub pass running for its duration (RAII).
    fn begin(self: &Arc<Self>) -> RunningGuard {
        self.running.store(true, Ordering::Release);
        crate::trace::emit(
            crate::trace::TraceClass::Scrub,
            "scrub_begin",
            0,
            0,
            String::new,
        );
        RunningGuard {
            state: self.clone(),
        }
    }
}

struct RunningGuard {
    state: Arc<ScrubState>,
}

impl Drop for RunningGuard {
    fn drop(&mut self) {
        self.state.running.store(false, Ordering::Release);
        let state = self.state.clone();
        crate::trace::emit(crate::trace::TraceClass::Scrub, "scrub_end", 0, 0, || {
            format!(
                "pages_checked={} corruptions_found={} pages_repaired={}",
                state.pages_checked.load(Ordering::Relaxed),
                state.corruptions_found.load(Ordering::Relaxed),
                state.pages_repaired.load(Ordering::Relaxed)
            )
        });
    }
}

/// Snapshot of [`ScrubState`] plus the current quarantine entries.
pub struct ScrubStatus {
    pub running: bool,
    pub pages_checked: u64,
    pub blobs_checked: u64,
    pub corruptions_found: u64,
    pub pages_repaired: u64,
    pub quarantined: Vec<(String, u64)>,
}

/// One scrub observation: a page or blob that was corrupt, repaired,
/// quarantined, un-fenced, or unverifiable.
pub struct ScrubFinding {
    /// Lowercase table name or `filestream:<guid>`.
    pub object: String,
    /// Page within the object; `None` for blobs.
    pub page: Option<u64>,
    /// `repaired`, `quarantined`, `corrupt`, `cleared` or `unhashed`.
    pub status: &'static str,
    pub detail: String,
}

/// Outcome of one `CHECK TABLE` / `CHECK DATABASE` pass.
#[derive(Default)]
pub struct ScrubReport {
    pub pages_checked: u64,
    pub blobs_checked: u64,
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// How many findings are still bad after this pass (corrupt or
    /// quarantined — anything but repaired/cleared/unhashed).
    pub fn unhealthy(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| matches!(f.status, "corrupt" | "quarantined"))
            .count()
    }

    pub fn repaired(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.status == "repaired")
            .count()
    }

    /// Render as the `CHECK` result set: one row per finding, then a
    /// trailing summary row.
    pub fn into_result(self) -> QueryResult {
        let schema = Arc::new(Schema::new(vec![
            Column::new("object", DataType::Text).not_null(),
            Column::new("page", DataType::Int),
            Column::new("status", DataType::Text).not_null(),
            Column::new("detail", DataType::Text).not_null(),
        ]));
        let unhealthy = self.unhealthy();
        let repaired = self.repaired();
        let summary = format!(
            "checked {} pages and {} blobs: {} repaired, {} still corrupt or quarantined",
            self.pages_checked, self.blobs_checked, repaired, unhealthy
        );
        let mut rows: Vec<Row> = self
            .findings
            .into_iter()
            .map(|f| {
                Row::new(vec![
                    Value::text(f.object),
                    f.page.map(|p| Value::Int(p as i64)).unwrap_or(Value::Null),
                    Value::text(f.status),
                    Value::text(f.detail),
                ])
            })
            .collect();
        rows.push(Row::new(vec![
            Value::text("(summary)"),
            Value::Null,
            Value::text(if unhealthy == 0 { "ok" } else { "unhealthy" }),
            Value::text(summary),
        ]));
        QueryResult {
            schema,
            rows,
            affected: 0,
        }
    }
}

impl Database {
    /// `CHECK TABLE <name> [REPAIR]`: verify every heap and index page of
    /// one table; with `repair`, rewrite corrupt pages from the buffer
    /// pool or WAL and quarantine the unrepairable ones.
    pub fn check_table(&self, name: &str, repair: bool) -> Result<ScrubReport> {
        let _running = self.scrub_state().begin();
        let wal_images = self.scrub_wal_images(repair)?;
        let mut report = ScrubReport::default();
        self.scrub_table(name, repair, &wal_images, &mut report)?;
        Ok(report)
    }

    /// `CHECK DATABASE [REPAIR]`: scrub every table and every FileStream
    /// blob. Also what the server's periodic scrub thread runs.
    pub fn check_database(&self, repair: bool) -> Result<ScrubReport> {
        let _running = self.scrub_state().begin();
        let wal_images = self.scrub_wal_images(repair)?;
        let mut report = ScrubReport::default();
        for name in self.catalog().table_names() {
            self.scrub_table(&name, repair, &wal_images, &mut report)?;
        }
        for blob in self.filestream().blob_names()? {
            self.scrub_blob(&blob, repair, &mut report)?;
        }
        Ok(report)
    }

    /// The WAL's last committed image per page, gathered once per pass so
    /// repairs do not re-read the log for every corrupt page. Only needed
    /// in repair mode; safe on a live log (replay only reads).
    fn scrub_wal_images(&self, repair: bool) -> Result<HashMap<PageId, Box<[u8]>>> {
        match self.pool().wal() {
            Some(wal) if repair => wal_last_images(wal),
            _ => Ok(HashMap::new()),
        }
    }

    fn scrub_table(
        &self,
        name: &str,
        repair: bool,
        wal_images: &HashMap<PageId, Box<[u8]>>,
        report: &mut ScrubReport,
    ) -> Result<()> {
        // Resolve through the catalog directly: CHECK must reach objects
        // the quarantine fences off from ordinary statements.
        let table = self.catalog().table(name)?;
        let key = table.name.to_ascii_lowercase();
        let state = self.scrub_state();
        let quarantine = state.quarantine();
        let fenced: BTreeSet<u64> = quarantine
            .snapshot()
            .into_iter()
            .filter(|(object, _)| *object == key)
            .map(|(_, page)| page)
            .collect();
        let mut pages = table.heap.pages_snapshot();
        for idx in table.indexes.read().iter() {
            pages.extend(idx.btree.pages());
        }
        let store = self.pool().store().clone();
        for (i, page) in pages.into_iter().enumerate() {
            if i > 0 && i % PAGES_PER_SLICE == 0 {
                std::thread::sleep(SLICE_PAUSE);
            }
            state.pages_checked.fetch_add(1, Ordering::Relaxed);
            report.pages_checked += 1;
            if check_page(store.as_ref(), page)? {
                if fenced.contains(&page) {
                    // A prior pass fenced this page and it has since been
                    // rewritten clean (repair or re-import): un-fence it.
                    quarantine.clear(&key, page);
                    report.findings.push(ScrubFinding {
                        object: key.clone(),
                        page: Some(page),
                        status: "cleared",
                        detail: "page verifies again; quarantine entry removed".into(),
                    });
                }
                continue;
            }
            state.corruptions_found.fetch_add(1, Ordering::Relaxed);
            storage_counters()
                .corruptions_found
                .fetch_add(1, Ordering::Relaxed);
            if !repair {
                report.findings.push(ScrubFinding {
                    object: key.clone(),
                    page: Some(page),
                    status: "corrupt",
                    detail: "checksum mismatch; run CHECK ... REPAIR".into(),
                });
                continue;
            }
            if repair_page(self.pool(), wal_images, page)? {
                state.pages_repaired.fetch_add(1, Ordering::Relaxed);
                quarantine.clear(&key, page);
                report.findings.push(ScrubFinding {
                    object: key.clone(),
                    page: Some(page),
                    status: "repaired",
                    detail: "rewritten from the buffer pool or WAL and re-verified".into(),
                });
            } else {
                quarantine.add(&key, page);
                crate::trace::emit(
                    crate::trace::TraceClass::Quarantine,
                    "quarantine_add",
                    0,
                    0,
                    || format!("object={key} page={page}"),
                );
                report.findings.push(ScrubFinding {
                    object: key.clone(),
                    page: Some(page),
                    status: "quarantined",
                    detail: "no good image in cache or WAL; object fenced until re-import".into(),
                });
            }
        }
        Ok(())
    }

    fn scrub_blob(&self, name: &str, repair: bool, report: &mut ScrubReport) -> Result<()> {
        let key = format!("filestream:{name}");
        let state = self.scrub_state();
        let quarantine = state.quarantine();
        state.blobs_checked.fetch_add(1, Ordering::Relaxed);
        report.blobs_checked += 1;
        match self.filestream().verify_blob(name)? {
            BlobCheck::Ok => {
                if quarantine.check(&key).is_err() {
                    // Clean re-hash of a fenced blob (re-imported in
                    // place): un-fence it.
                    quarantine.clear_object(&key);
                    report.findings.push(ScrubFinding {
                        object: key,
                        page: None,
                        status: "cleared",
                        detail: "blob hash verifies again; quarantine entry removed".into(),
                    });
                }
            }
            BlobCheck::Unhashed => {
                report.findings.push(ScrubFinding {
                    object: key,
                    page: None,
                    status: "unhashed",
                    detail: "no recorded import hash (external tool wrote it); cannot verify"
                        .into(),
                });
            }
            BlobCheck::Mismatch => {
                state.corruptions_found.fetch_add(1, Ordering::Relaxed);
                storage_counters()
                    .corruptions_found
                    .fetch_add(1, Ordering::Relaxed);
                if repair {
                    // Blobs have no redundant copy (no WAL images): the
                    // only remedy is fencing until a re-import.
                    quarantine.add(&key, 0);
                    crate::trace::emit(
                        crate::trace::TraceClass::Quarantine,
                        "quarantine_add",
                        0,
                        0,
                        || format!("object={key}"),
                    );
                    report.findings.push(ScrubFinding {
                        object: key,
                        page: None,
                        status: "quarantined",
                        detail: "hash mismatch and no redundant copy; re-import to restore".into(),
                    });
                } else {
                    report.findings.push(ScrubFinding {
                        object: key,
                        page: None,
                        status: "corrupt",
                        detail: "hash mismatch against the import-time SHA-256".into(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb_storage::rowfmt::Compression;
    use seqdb_types::DbError;

    fn seeded_db() -> (Arc<Database>, Arc<crate::catalog::Table>) {
        let db = Database::in_memory();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("payload", DataType::Text),
        ]);
        let t = db
            .create_table("reads", schema, Compression::Row, Some(vec![0]))
            .unwrap();
        for i in 0..200i64 {
            t.insert(&Row::new(vec![
                Value::Int(i),
                Value::text(format!("ACGT-{i:04}")),
            ]))
            .unwrap();
        }
        (db, t)
    }

    #[test]
    fn clean_database_scrubs_clean() {
        let (db, _t) = seeded_db();
        db.checkpoint().unwrap();
        let report = db.check_database(false).unwrap();
        assert!(report.pages_checked > 0);
        assert_eq!(report.unhealthy(), 0);
        let status = db.scrub_state().status();
        assert!(!status.running);
        assert!(status.pages_checked >= report.pages_checked);
        assert!(status.quarantined.is_empty());
    }

    #[test]
    fn cached_corruption_is_repaired_in_place() {
        let (db, t) = seeded_db();
        db.checkpoint().unwrap();
        // Rot a heap page at rest; the buffer pool still caches the good
        // frame (checkpoint flushes without evicting).
        let victim = t.heap.pages_snapshot()[0];
        let store = db.pool().store().clone();
        let mut buf = vec![0u8; seqdb_storage::PAGE_SIZE];
        store.read_page(victim, &mut buf).unwrap();
        buf[64] ^= 0x5A;
        store.write_page(victim, &buf).unwrap();
        let report = db.check_table("reads", true).unwrap();
        assert_eq!(report.repaired(), 1);
        assert_eq!(report.unhealthy(), 0);
        assert!(db.quarantine().is_empty());
        // The table still reads every row.
        assert_eq!(t.row_count(), 200);
    }

    #[test]
    fn unrepairable_page_quarantines_and_clears_after_rewrite() {
        let (db, t) = seeded_db();
        db.checkpoint().unwrap();
        db.pool().clear_cache().unwrap();
        let victim = t.heap.pages_snapshot()[0];
        let store = db.pool().store().clone();
        let mut buf = vec![0u8; seqdb_storage::PAGE_SIZE];
        store.read_page(victim, &mut buf).unwrap();
        let good = buf.clone();
        buf[64] ^= 0x5A;
        store.write_page(victim, &buf).unwrap();
        // No cache, no WAL image (in-memory db has no WAL): quarantined.
        let report = db.check_table("reads", true).unwrap();
        assert_eq!(report.unhealthy(), 1);
        let err = db.resolve_table("reads").err();
        assert!(matches!(err, Some(DbError::Quarantined { .. })));
        // Unaffected tables stay online.
        assert!(db.catalog().table_names().contains(&"reads".to_string()));
        // Restore the good image out-of-band (the "re-import"): the next
        // scrub un-fences the object.
        store.write_page(victim, &good).unwrap();
        let report = db.check_table("reads", true).unwrap();
        assert_eq!(report.unhealthy(), 0);
        assert!(db.resolve_table("reads").is_ok());
        assert!(db.quarantine().is_empty());
    }

    #[test]
    fn check_without_repair_reports_but_does_not_fence() {
        let (db, t) = seeded_db();
        db.checkpoint().unwrap();
        db.pool().clear_cache().unwrap();
        let victim = t.heap.pages_snapshot()[0];
        let store = db.pool().store().clone();
        let mut buf = vec![0u8; seqdb_storage::PAGE_SIZE];
        store.read_page(victim, &mut buf).unwrap();
        buf[512] ^= 0x01;
        store.write_page(victim, &buf).unwrap();
        let report = db.check_table("reads", false).unwrap();
        assert_eq!(report.unhealthy(), 1);
        assert!(report.findings.iter().any(|f| f.status == "corrupt"));
        assert!(db.quarantine().is_empty(), "plain CHECK only reports");
        assert!(db.resolve_table("reads").is_ok());
    }

    #[test]
    fn corrupt_blob_quarantines_and_reimport_clears() {
        let (db, _t) = seeded_db();
        let fs = db.filestream();
        let data = b"GATTACA".repeat(64);
        let guid = fs.insert(&data).unwrap();
        let name = fs.blob_names().unwrap()[0].clone();
        seqdb_storage::rot_file(&fs.path_name(guid).unwrap(), 7, 0, 64).unwrap();
        let report = db.check_database(true).unwrap();
        assert_eq!(report.unhealthy(), 1);
        let key = format!("filestream:{name}");
        assert!(matches!(
            db.quarantine().check(&key),
            Err(DbError::Quarantined { .. })
        ));
        // Fenced: the path/len/reader surface fails typed.
        assert!(matches!(fs.len(guid), Err(DbError::Quarantined { .. })));
        // Re-import (delete clears the fence; the fresh copy records a
        // fresh hash and scrubs clean).
        fs.delete(guid).unwrap();
        let guid = fs.insert(&data).unwrap();
        assert!(fs.len(guid).is_ok());
        let report = db.check_database(true).unwrap();
        assert_eq!(report.unhealthy(), 0);
    }

    #[test]
    fn report_renders_rows_with_trailing_summary() {
        let mut report = ScrubReport {
            pages_checked: 10,
            blobs_checked: 2,
            findings: vec![ScrubFinding {
                object: "reads".into(),
                page: Some(4),
                status: "repaired",
                detail: "test".into(),
            }],
        };
        report.findings.push(ScrubFinding {
            object: "filestream:x".into(),
            page: None,
            status: "quarantined",
            detail: "test".into(),
        });
        let result = report.into_result();
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.schema.len(), 4);
        let last = result.rows.last().unwrap();
        assert_eq!(last[0], Value::text("(summary)"));
        assert_eq!(last[2], Value::text("unhealthy"));
    }
}

//! Execution statistics: actual per-operator numbers, engine-level
//! counters, and the bounded query-stats history.
//!
//! The paper's evaluation reads SQL Server's *actual* execution plans and
//! engine counters to attribute query time (Figures 9–10). seqdb's
//! analogue has three pieces:
//!
//! * [`ExecStats`] / [`NodeStats`] — a per-query collector threaded
//!   through `Plan::open`. Every operator node registers one
//!   [`NodeStats`] slot (in pre-order, matching the `EXPLAIN` rendering
//!   order) and is wrapped in a [`StatsIter`] that records rows produced,
//!   `next()` calls, cumulative wall time and the query-memory high-water
//!   observed while the node was active. Slots are `Arc`-shared with the
//!   collector, so the numbers survive even when the pipeline is dropped
//!   mid-stream by a cancellation or `KILL` — nothing is flushed on
//!   close, because nothing ever lived only inside the iterator.
//! * [`engine_counters`] — process-global engine counters (admission
//!   waits, kills, UDX panics, governed timeouts), merged with the
//!   storage registry into `DM_OS_PERFORMANCE_COUNTERS()`.
//! * [`QueryStatsHistory`] — a bounded per-database history keyed by
//!   statement text, recorded on statement completion (the session
//!   guard's drop), rendered by `DM_EXEC_QUERY_STATS()`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use seqdb_storage::SpillTally;
use seqdb_types::{Result, Row};

use crate::exec::{BoxedIter, RowBatch, RowIterator};
use crate::governor::QueryGovernor;

/// Actual numbers for one operator node of one executed plan.
#[derive(Debug)]
pub struct NodeStats {
    /// Operator label (the `EXPLAIN` header name), for debugging.
    pub label: &'static str,
    rows: AtomicU64,
    nexts: AtomicU64,
    /// Batches this node delivered via `next_batch` (0 = pure row path).
    batches: AtomicU64,
    elapsed_nanos: AtomicU64,
    peak_mem: AtomicU64,
    /// Spill traffic attributed to this node (files + bytes).
    pub spill: Arc<SpillTally>,
}

impl NodeStats {
    fn new(label: &'static str) -> Arc<NodeStats> {
        Arc::new(NodeStats {
            label,
            rows: AtomicU64::new(0),
            nexts: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            elapsed_nanos: AtomicU64::new(0),
            peak_mem: AtomicU64::new(0),
            spill: Arc::new(SpillTally::default()),
        })
    }

    /// Rows this node produced.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// `next()` calls made on this node (rows + the final end-of-stream
    /// pull, unless the consumer stopped early).
    pub fn nexts(&self) -> u64 {
        self.nexts.load(Ordering::Relaxed)
    }

    /// Batches this node delivered through the vectorized path; 0 means
    /// every row moved through the scalar `next()` protocol.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Cumulative wall time spent inside this node's `next()`, children
    /// included (the SQL Server showplan convention).
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos.load(Ordering::Relaxed))
    }

    /// Highest query-wide governed memory observed while this node was
    /// producing rows (an upper bound on what the node itself charged).
    pub fn peak_mem_bytes(&self) -> u64 {
        self.peak_mem.load(Ordering::Relaxed)
    }

    /// The `EXPLAIN ANALYZE` suffix for this node's header line.
    pub fn annotation(&self, est_rows: Option<u64>) -> String {
        let est = est_rows.map_or_else(|| "?".to_string(), |n| n.to_string());
        let ms = self.elapsed().as_secs_f64() * 1e3;
        let mut out = format!(
            " (actual_rows={} est_rows={est} nexts={} elapsed_ms={ms:.3} peak_mem_kb={}",
            self.rows(),
            self.nexts(),
            self.peak_mem_bytes() / 1024,
        );
        if self.batches() > 0 {
            out.push_str(&format!(
                " batches={} avg_batch={:.1}",
                self.batches(),
                self.rows() as f64 / self.batches() as f64
            ));
        }
        if self.spill.files() > 0 {
            out.push_str(&format!(
                " spill_files={} spill_kb={}",
                self.spill.files(),
                self.spill.bytes() / 1024
            ));
        }
        out.push(')');
        out
    }
}

/// Per-query collector: one [`NodeStats`] per plan node, registered in
/// pre-order during `Plan::open` so index *i* lines up with the *i*-th
/// operator header of the `EXPLAIN` rendering.
#[derive(Default)]
pub struct ExecStats {
    nodes: Mutex<Vec<Arc<NodeStats>>>,
}

impl ExecStats {
    pub fn new() -> Arc<ExecStats> {
        Arc::new(ExecStats::default())
    }

    /// Register the next node slot (called by `Plan::open` in pre-order).
    pub fn register(&self, label: &'static str) -> Arc<NodeStats> {
        let node = NodeStats::new(label);
        self.nodes.lock().push(node.clone());
        node
    }

    /// All node slots in registration (= pre-order) order.
    pub fn nodes(&self) -> Vec<Arc<NodeStats>> {
        self.nodes.lock().clone()
    }
}

/// Wraps an operator and records its actual numbers into a shared
/// [`NodeStats`] on every call — there is no flush-on-close step, so an
/// early drop (LIMIT, cancellation, KILL) loses nothing.
pub struct StatsIter {
    inner: BoxedIter,
    node: Arc<NodeStats>,
    gov: Arc<QueryGovernor>,
}

impl StatsIter {
    pub fn new(inner: BoxedIter, node: Arc<NodeStats>, gov: Arc<QueryGovernor>) -> StatsIter {
        StatsIter { inner, node, gov }
    }
}

impl RowIterator for StatsIter {
    fn next(&mut self) -> Result<Option<Row>> {
        let start = Instant::now();
        let out = self.inner.next();
        self.node
            .elapsed_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.node.nexts.fetch_add(1, Ordering::Relaxed);
        if matches!(out, Ok(Some(_))) {
            self.node.rows.fetch_add(1, Ordering::Relaxed);
        }
        self.node
            .peak_mem
            .fetch_max(self.gov.mem_used() as u64, Ordering::Relaxed);
        out
    }

    /// Batch pass-through: one timing read, one `nexts` bump and one
    /// `rows += batch.len()` per batch, so actuals cost the same whether
    /// the node moved one row or a thousand. Like `GovernedIter`, this
    /// override is required for batches to cross the per-node wrapping in
    /// `Plan::open` intact.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        let start = Instant::now();
        let out = self.inner.next_batch(max_rows);
        self.node
            .elapsed_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.node.nexts.fetch_add(1, Ordering::Relaxed);
        if let Ok(Some(batch)) = &out {
            self.node
                .rows
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.node.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.node
            .peak_mem
            .fetch_max(self.gov.mem_used() as u64, Ordering::Relaxed);
        out
    }
}

/// Process-global engine counters (`DM_OS_PERFORMANCE_COUNTERS()` rows
/// beyond what the storage layer tracks).
#[derive(Default)]
pub struct EngineCounters {
    /// Statements that had to wait in the admission controller.
    pub admission_waits: AtomicU64,
    /// Statements killed via `KILL` / `StatementRegistry::kill`.
    pub kills: AtomicU64,
    /// UDX invocations that panicked and were isolated.
    pub udx_panics: AtomicU64,
    /// Queries stopped by the governor's wall-clock timeout.
    pub timeouts: AtomicU64,
    /// Rows that crossed an operator boundary inside a natively produced
    /// batch (counted once per governed boundary, so deep plans count a
    /// row once per level — the same convention as per-node actuals).
    pub batch_rows: AtomicU64,
    /// Rows that crossed a governed boundary in a batch assembled by the
    /// row-at-a-time fallback loop (sort, window, apply, UDX...). A high
    /// ratio of fallback to native rows shows where the batch path has
    /// not reached yet.
    pub batch_fallback_rows: AtomicU64,
}

impl EngineCounters {
    /// Render as `(name, value)` pairs in a stable order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("admission_waits", ld(&self.admission_waits)),
            ("statement_kills", ld(&self.kills)),
            ("udx_panics", ld(&self.udx_panics)),
            ("governed_timeouts", ld(&self.timeouts)),
            ("batch_rows", ld(&self.batch_rows)),
            ("batch_fallback_rows", ld(&self.batch_fallback_rows)),
        ]
    }
}

static ENGINE: EngineCounters = EngineCounters {
    admission_waits: AtomicU64::new(0),
    kills: AtomicU64::new(0),
    udx_panics: AtomicU64::new(0),
    timeouts: AtomicU64::new(0),
    batch_rows: AtomicU64::new(0),
    batch_fallback_rows: AtomicU64::new(0),
};

/// The process-global engine-counter registry.
pub fn engine_counters() -> &'static EngineCounters {
    &ENGINE
}

/// One row of `DM_EXEC_QUERY_STATS()`.
#[derive(Debug, Clone)]
pub struct QueryStatsRecord {
    pub sql: String,
    pub executions: u64,
    pub total_rows: u64,
    pub last_rows: u64,
    pub total_elapsed: Duration,
    pub last_elapsed: Duration,
    pub total_spill_files: u64,
    pub total_spill_bytes: u64,
    /// Highest governed-memory high-water across executions.
    pub peak_mem_bytes: u64,
}

/// What one finished statement contributes to the history.
#[derive(Debug, Clone)]
pub struct StatementOutcome {
    pub rows: u64,
    pub elapsed: Duration,
    pub spill_files: u64,
    pub spill_bytes: u64,
    pub peak_mem_bytes: u64,
}

/// Bounded per-database statement history keyed by statement text.
/// Statements beyond `capacity` evict the least-recently-executed entry
/// (SQL Server's `sys.dm_exec_query_stats` is likewise a cache, not a
/// log).
pub struct QueryStatsHistory {
    capacity: usize,
    /// Most-recently-executed last.
    entries: Mutex<Vec<QueryStatsRecord>>,
}

impl QueryStatsHistory {
    /// Default history size.
    pub const DEFAULT_CAPACITY: usize = 256;

    pub fn new(capacity: usize) -> Arc<QueryStatsHistory> {
        Arc::new(QueryStatsHistory {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
        })
    }

    /// Fold one finished statement into the history. Called from the
    /// session guard's drop, so cancelled/killed/panicked statements are
    /// recorded with whatever they produced before dying.
    pub fn record(&self, sql: &str, outcome: &StatementOutcome) {
        let mut entries = self.entries.lock();
        let mut rec = match entries.iter().position(|r| r.sql == sql) {
            Some(i) => entries.remove(i),
            None => QueryStatsRecord {
                sql: sql.to_string(),
                executions: 0,
                total_rows: 0,
                last_rows: 0,
                total_elapsed: Duration::ZERO,
                last_elapsed: Duration::ZERO,
                total_spill_files: 0,
                total_spill_bytes: 0,
                peak_mem_bytes: 0,
            },
        };
        rec.executions += 1;
        rec.total_rows += outcome.rows;
        rec.last_rows = outcome.rows;
        rec.total_elapsed += outcome.elapsed;
        rec.last_elapsed = outcome.elapsed;
        rec.total_spill_files += outcome.spill_files;
        rec.total_spill_bytes += outcome.spill_bytes;
        rec.peak_mem_bytes = rec.peak_mem_bytes.max(outcome.peak_mem_bytes);
        if entries.len() >= self.capacity {
            entries.remove(0);
        }
        entries.push(rec);
    }

    /// Every record, least-recently-executed first.
    pub fn snapshot(&self) -> Vec<QueryStatsRecord> {
        self.entries.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, ValuesIter};
    use seqdb_types::Value;

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| Row::new(vec![Value::Int(i)])).collect()
    }

    #[test]
    fn stats_iter_counts_rows_and_calls() {
        let stats = ExecStats::new();
        let node = stats.register("Constant Scan");
        let gov = QueryGovernor::unlimited();
        let it = StatsIter::new(Box::new(ValuesIter::new(rows(5))), node.clone(), gov);
        let out = collect(Box::new(it)).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(node.rows(), 5);
        assert_eq!(node.nexts(), 6, "5 rows + 1 end-of-stream pull");
        assert_eq!(stats.nodes().len(), 1);
    }

    #[test]
    fn early_drop_keeps_partial_stats() {
        let stats = ExecStats::new();
        let node = stats.register("Constant Scan");
        let gov = QueryGovernor::unlimited();
        let mut it = StatsIter::new(Box::new(ValuesIter::new(rows(100))), node.clone(), gov);
        for _ in 0..7 {
            it.next().unwrap();
        }
        drop(it);
        assert_eq!(node.rows(), 7, "stats survive an early iterator drop");
        assert_eq!(node.nexts(), 7);
    }

    #[test]
    fn stats_iter_tracks_memory_high_water() {
        let gov = QueryGovernor::new(None, Some(1 << 20));
        let stats = ExecStats::new();
        let node = stats.register("Constant Scan");
        gov.reserve(4096).unwrap();
        let mut it = StatsIter::new(
            Box::new(ValuesIter::new(rows(2))),
            node.clone(),
            gov.clone(),
        );
        it.next().unwrap();
        gov.release(4096);
        it.next().unwrap();
        assert!(node.peak_mem_bytes() >= 4096);
    }

    #[test]
    fn history_is_bounded_and_keyed_by_sql() {
        let h = QueryStatsHistory::new(2);
        let outcome = |rows| StatementOutcome {
            rows,
            elapsed: Duration::from_millis(2),
            spill_files: 1,
            spill_bytes: 100,
            peak_mem_bytes: 64,
        };
        h.record("SELECT 1", &outcome(1));
        h.record("SELECT 2", &outcome(2));
        h.record("SELECT 1", &outcome(3));
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        let s1 = snap.iter().find(|r| r.sql == "SELECT 1").unwrap();
        assert_eq!(s1.executions, 2);
        assert_eq!(s1.total_rows, 4);
        assert_eq!(s1.last_rows, 3);
        assert_eq!(s1.total_spill_files, 2);
        // A third distinct statement evicts the least recently executed.
        h.record("SELECT 3", &outcome(9));
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().all(|r| r.sql != "SELECT 2"));
    }

    #[test]
    fn annotation_mentions_actual_rows() {
        let stats = ExecStats::new();
        let node = stats.register("Table Scan");
        node.rows.store(42, Ordering::Relaxed);
        let ann = node.annotation(Some(100));
        assert!(ann.contains("actual_rows=42"));
        assert!(ann.contains("est_rows=100"));
        let ann = node.annotation(None);
        assert!(ann.contains("est_rows=?"));
    }
}

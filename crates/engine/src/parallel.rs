//! Parallel query execution: the exchange-based aggregation plan of the
//! paper's Figures 8 and 9.
//!
//! SQL Server parallelizes Query 1 by scanning the table with multiple
//! workers, computing *partial* aggregates per worker, repartitioning on
//! the group key and finishing with a *final* aggregate, then gathering
//! streams. seqdb's [`ParallelAggIter`] implements the same shape:
//!
//! 1. the heap's pages are dealt round-robin to `dop` workers;
//! 2. each worker scans its pages, applies the pushed-down filter, and
//!    builds a partial hash-aggregate (possible because every aggregate —
//!    built-in or user-defined — implements `merge`, paper §2.3.4);
//! 3. the coordinating thread merges the partial maps (the repartition +
//!    final aggregate collapsed into one merge, valid because merge is
//!    associative) and emits finished groups.
//!
//! Per-worker busy time and row counts are recorded in [`WorkerStats`],
//! which is how the benchmark harness regenerates the utilization plot of
//! Figure 8 without an OS-level profiler.

use std::sync::Arc;
use std::time::{Duration, Instant};

use seqdb_types::{DbError, Result, Row};

use crate::catalog::Table;
use crate::exec::agg::{aggregate_into_map, finish_map, merge_maps, AggSpec};
use crate::exec::scan::HeapScanIter;
use crate::exec::RowIterator;
use crate::expr::Expr;

/// What one worker did during a parallel operator's execution.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    pub worker: usize,
    pub rows_scanned: u64,
    pub groups_produced: u64,
    pub busy: Duration,
}

/// Parallel scan + partial/final aggregation over a base table.
pub struct ParallelAggIter {
    table: Arc<Table>,
    filter: Option<Expr>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    dop: usize,
    output: Option<std::vec::IntoIter<Row>>,
    stats: Vec<WorkerStats>,
}

impl ParallelAggIter {
    pub fn new(
        table: Arc<Table>,
        filter: Option<Expr>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        dop: usize,
    ) -> Result<ParallelAggIter> {
        if dop == 0 {
            return Err(DbError::Plan("degree of parallelism must be >= 1".into()));
        }
        for a in &aggs {
            if !a.factory.mergeable() {
                return Err(DbError::Plan(format!(
                    "aggregate {} does not support Merge() and cannot run in a parallel plan",
                    a.factory.name()
                )));
            }
        }
        Ok(ParallelAggIter {
            table,
            filter,
            group_exprs,
            aggs,
            dop,
            output: None,
            stats: Vec::new(),
        })
    }

    /// Per-worker statistics; empty until execution has run.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    fn execute(&mut self) -> Result<()> {
        let dop = self.dop;
        let mut partials = Vec::with_capacity(dop);

        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::with_capacity(dop);
            for w in 0..dop {
                let table = self.table.clone();
                let filter = self.filter.clone();
                let group_exprs = self.group_exprs.clone();
                let aggs = self.aggs.clone();
                handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let mut scan = CountingIter {
                        inner: HeapScanIter::partitioned(table, filter, None, w, dop),
                        rows: 0,
                    };
                    let map = aggregate_into_map(&mut scan, &group_exprs, &aggs)?;
                    let stats = WorkerStats {
                        worker: w,
                        rows_scanned: scan.rows,
                        groups_produced: map.len() as u64,
                        busy: start.elapsed(),
                    };
                    Ok::<_, DbError>((map, stats))
                }));
            }
            for h in handles {
                let (map, stats) = h
                    .join()
                    .map_err(|_| DbError::Execution("parallel worker panicked".into()))??;
                self.stats.push(stats);
                partials.push(map);
            }
            Ok(())
        })?;

        // Final aggregation: merge partial states.
        let mut final_map = partials.pop().unwrap_or_default();
        for p in partials {
            merge_maps(&mut final_map, p)?;
        }
        let mut rows = finish_map(final_map)?;
        if rows.is_empty() && self.group_exprs.is_empty() {
            // Global aggregate over an empty table still yields one row.
            let mut vals = Vec::new();
            for a in &self.aggs {
                vals.push(a.factory.create().finish()?);
            }
            rows.push(Row::new(vals));
        }
        self.stats.sort_by_key(|s| s.worker);
        self.output = Some(rows.into_iter());
        Ok(())
    }
}

struct CountingIter {
    inner: HeapScanIter,
    rows: u64,
}

impl RowIterator for CountingIter {
    fn next(&mut self) -> Result<Option<Row>> {
        let r = self.inner.next()?;
        if r.is_some() {
            self.rows += 1;
        }
        Ok(r)
    }
}

impl RowIterator for ParallelAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            self.execute()?;
        }
        Ok(self.output.as_mut().expect("executed above").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_context;
    use crate::exec::{collect, ValuesIter};
    use crate::expr::BinOp;
    use crate::udx::{AggState, Aggregate, CountAgg, SumAgg};
    use seqdb_storage::rowfmt::Compression;
    use seqdb_types::{Column, DataType, Schema, Value};

    fn setup(nrows: i64) -> (crate::exec::ExecContext, Arc<Table>) {
        let ctx = test_context();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("grp", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let t = ctx
            .catalog
            .create_table("facts", schema, Compression::Row, None)
            .unwrap();
        for i in 0..nrows {
            t.insert(&Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Int(i % 100),
            ]))
            .unwrap();
        }
        (ctx, t)
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(Arc::new(CountAgg), vec![], "cnt"),
            AggSpec::new(Arc::new(SumAgg), vec![Expr::col(2, "v")], "total"),
        ]
    }

    #[test]
    fn parallel_equals_serial() {
        let (_ctx, t) = setup(5000);
        let group = vec![Expr::col(1, "grp")];

        // Serial reference.
        let serial = {
            let scan = Box::new(HeapScanIter::new(t.clone(), None, None));
            let it = crate::exec::agg::HashAggIter::new(scan, group.clone(), specs());
            let mut rows = collect(Box::new(it)).unwrap();
            rows.sort_by_key(|r| r[0].as_int().unwrap());
            rows
        };

        for dop in [1, 2, 4] {
            let mut par =
                ParallelAggIter::new(t.clone(), None, group.clone(), specs(), dop).unwrap();
            let mut rows = Vec::new();
            while let Some(r) = par.next().unwrap() {
                rows.push(r);
            }
            rows.sort_by_key(|r| r[0].as_int().unwrap());
            assert_eq!(rows, serial, "dop={dop}");
            // Stats cover all rows exactly once.
            let total: u64 = par.worker_stats().iter().map(|s| s.rows_scanned).sum();
            assert_eq!(total, 5000);
            assert_eq!(par.worker_stats().len(), dop);
        }
    }

    #[test]
    fn filter_pushdown_in_parallel_plan() {
        let (_ctx, t) = setup(1000);
        let filter = Expr::binary(BinOp::Lt, Expr::col(0, "id"), Expr::lit(100));
        let mut par = ParallelAggIter::new(
            t,
            Some(filter),
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            3,
        )
        .unwrap();
        let row = par.next().unwrap().unwrap();
        assert_eq!(row[0], Value::Int(100));
        assert!(par.next().unwrap().is_none());
    }

    #[test]
    fn global_aggregate_on_empty_table() {
        let (_ctx, t) = setup(0);
        let mut par = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            2,
        )
        .unwrap();
        assert_eq!(par.next().unwrap().unwrap()[0], Value::Int(0));
    }

    #[test]
    fn non_mergeable_aggregate_rejected() {
        struct NoMerge;
        impl Aggregate for NoMerge {
            fn name(&self) -> &str {
                "NOMERGE"
            }
            fn create(&self) -> Box<dyn AggState> {
                unreachable!("plan construction should fail first")
            }
            fn mergeable(&self) -> bool {
                false
            }
        }
        let (_ctx, t) = setup(1);
        let res = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(NoMerge), vec![], "x")],
            2,
        );
        assert!(matches!(res, Err(DbError::Plan(_))));
    }

    #[test]
    fn values_iter_is_unrelated_but_counting_iter_counts() {
        // Sanity check of the stats plumbing.
        let (_ctx, t) = setup(100);
        let mut c = CountingIter {
            inner: HeapScanIter::new(t, None, None),
            rows: 0,
        };
        while c.next().unwrap().is_some() {}
        assert_eq!(c.rows, 100);
        let _ = ValuesIter::new(vec![]);
    }
}

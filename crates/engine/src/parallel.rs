//! Parallel query execution: the exchange-based aggregation plan of the
//! paper's Figures 8 and 9.
//!
//! SQL Server parallelizes Query 1 by scanning the table with multiple
//! workers, computing *partial* aggregates per worker, repartitioning on
//! the group key and finishing with a *final* aggregate, then gathering
//! streams. seqdb's [`ParallelAggIter`] implements the same shape:
//!
//! 1. the heap's pages are dealt round-robin to `dop` workers;
//! 2. each worker scans its pages, applies the pushed-down filter, and
//!    builds a partial hash-aggregate (possible because every aggregate —
//!    built-in or user-defined — implements `merge`, paper §2.3.4);
//! 3. the coordinating thread merges the partial maps (the repartition +
//!    final aggregate collapsed into one merge, valid because merge is
//!    associative) and emits finished groups.
//!
//! Per-worker busy time and row counts are recorded in [`WorkerStats`],
//! which is how the benchmark harness regenerates the utilization plot of
//! Figure 8 without an OS-level profiler.

use std::sync::Arc;
use std::time::{Duration, Instant};

use seqdb_types::{DbError, Result, Row};

use crate::catalog::Table;
use crate::exec::agg::{aggregate_into_map, finish_map, merge_maps, AggSpec};
use crate::exec::scan::HeapScanIter;
use crate::exec::RowIterator;
use crate::expr::Expr;
use crate::governor::{MemCharge, QueryGovernor, Ticker};
use crate::udx::{panic_payload, protect};

/// What one worker did during a parallel operator's execution.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    pub worker: usize,
    pub rows_scanned: u64,
    pub groups_produced: u64,
    pub busy: Duration,
}

/// Parallel scan + partial/final aggregation over a base table.
pub struct ParallelAggIter {
    table: Arc<Table>,
    filter: Option<Expr>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    dop: usize,
    gov: Arc<QueryGovernor>,
    output: Option<std::vec::IntoIter<Row>>,
    stats: Vec<WorkerStats>,
}

impl ParallelAggIter {
    pub fn new(
        table: Arc<Table>,
        filter: Option<Expr>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        dop: usize,
        gov: Arc<QueryGovernor>,
    ) -> Result<ParallelAggIter> {
        if dop == 0 {
            return Err(DbError::Plan("degree of parallelism must be >= 1".into()));
        }
        for a in &aggs {
            if !a.factory.mergeable() {
                return Err(DbError::Plan(format!(
                    "aggregate {} does not support Merge() and cannot run in a parallel plan",
                    a.factory.name()
                )));
            }
        }
        Ok(ParallelAggIter {
            table,
            filter,
            group_exprs,
            aggs,
            dop,
            gov,
            output: None,
            stats: Vec::new(),
        })
    }

    /// Per-worker statistics; empty until execution has run.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    fn execute(&mut self) -> Result<()> {
        let dop = self.dop;
        let gov = &self.gov;
        let mut partials = Vec::with_capacity(dop);
        // MemCharges travel with the partial maps they account for and
        // are dropped (releasing the budget) at the end of execute().
        let mut charges: Vec<MemCharge> = Vec::with_capacity(dop);
        let mut errors: Vec<DbError> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(dop);
            for w in 0..dop {
                let table = self.table.clone();
                let filter = self.filter.clone();
                let group_exprs = self.group_exprs.clone();
                let aggs = self.aggs.clone();
                let gov = gov.clone();
                handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let mut scan = CountingIter {
                        inner: HeapScanIter::partitioned(table, filter, None, w, dop),
                        rows: 0,
                        gov: gov.clone(),
                        ticker: Ticker::new(),
                    };
                    // Workers share the query's governor: their partial
                    // maps charge one common budget, and they stop at the
                    // next row once a sibling cancels it.
                    let mut charge = MemCharge::new(gov.clone());
                    let result = aggregate_into_map(&mut scan, &group_exprs, &aggs, &mut charge);
                    if result.is_err() {
                        // Fail fast: siblings notice at their next
                        // cooperative check instead of scanning on.
                        gov.cancel();
                    }
                    let map = result?;
                    let stats = WorkerStats {
                        worker: w,
                        rows_scanned: scan.rows,
                        groups_produced: map.len() as u64,
                        busy: start.elapsed(),
                    };
                    Ok::<_, DbError>((map, stats, charge))
                }));
            }
            // Join every worker before reporting anything: no handle is
            // left detached, and no `unwrap()` turns a worker panic into
            // a coordinator panic.
            for h in handles {
                match h.join() {
                    Ok(Ok((map, stats, charge))) => {
                        self.stats.push(stats);
                        partials.push(map);
                        charges.push(charge);
                    }
                    Ok(Err(e)) => errors.push(e),
                    Err(p) => {
                        gov.cancel();
                        errors.push(DbError::Execution(format!(
                            "parallel worker panicked: {}",
                            panic_payload(p)
                        )));
                    }
                }
            }
        });

        if !errors.is_empty() {
            // Prefer the root cause over the Cancelled errors of siblings
            // that were told to stop because of it.
            let root = errors
                .iter()
                .find(|e| !matches!(e, DbError::Cancelled(_)))
                .unwrap_or(&errors[0]);
            return Err(root.clone());
        }

        // Final aggregation: merge partial states.
        let mut final_map = partials.pop().unwrap_or_default();
        for p in partials {
            merge_maps(&mut final_map, p, &self.aggs)?;
        }
        let mut rows = finish_map(final_map, &self.aggs)?;
        if rows.is_empty() && self.group_exprs.is_empty() {
            // Global aggregate over an empty table still yields one row.
            let mut vals = Vec::new();
            for a in &self.aggs {
                vals.push(protect(a.factory.name(), || {
                    let mut s = a.factory.create();
                    s.finish()
                })?);
            }
            rows.push(Row::new(vals));
        }
        self.stats.sort_by_key(|s| s.worker);
        self.output = Some(rows.into_iter());
        Ok(())
    }
}

struct CountingIter {
    inner: HeapScanIter,
    rows: u64,
    gov: Arc<QueryGovernor>,
    ticker: Ticker,
}

impl RowIterator for CountingIter {
    fn next(&mut self) -> Result<Option<Row>> {
        // Workers run outside the plan's GovernedIter wrappers, so the
        // cooperative check lives here.
        self.ticker.tick(&self.gov)?;
        let r = self.inner.next()?;
        if r.is_some() {
            self.rows += 1;
        }
        Ok(r)
    }
}

impl RowIterator for ParallelAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            self.execute()?;
        }
        Ok(self.output.as_mut().expect("executed above").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_context;
    use crate::exec::{collect, ValuesIter};
    use crate::expr::BinOp;
    use crate::udx::{AggState, Aggregate, CountAgg, SumAgg};
    use seqdb_storage::rowfmt::Compression;
    use seqdb_types::{Column, DataType, Schema, Value};

    fn setup(nrows: i64) -> (crate::exec::ExecContext, Arc<Table>) {
        let ctx = test_context();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("grp", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let t = ctx
            .catalog
            .create_table("facts", schema, Compression::Row, None)
            .unwrap();
        for i in 0..nrows {
            t.insert(&Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Int(i % 100),
            ]))
            .unwrap();
        }
        (ctx, t)
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(Arc::new(CountAgg), vec![], "cnt"),
            AggSpec::new(Arc::new(SumAgg), vec![Expr::col(2, "v")], "total"),
        ]
    }

    #[test]
    fn parallel_equals_serial() {
        let (_ctx, t) = setup(5000);
        let group = vec![Expr::col(1, "grp")];

        // Serial reference.
        let serial = {
            let scan = Box::new(HeapScanIter::new(t.clone(), None, None));
            let it = crate::exec::agg::HashAggIter::new(scan, group.clone(), specs(), _ctx.clone());
            let mut rows = collect(Box::new(it)).unwrap();
            rows.sort_by_key(|r| r[0].as_int().unwrap());
            rows
        };

        for dop in [1, 2, 4] {
            let mut par = ParallelAggIter::new(
                t.clone(),
                None,
                group.clone(),
                specs(),
                dop,
                QueryGovernor::unlimited(),
            )
            .unwrap();
            let mut rows = Vec::new();
            while let Some(r) = par.next().unwrap() {
                rows.push(r);
            }
            rows.sort_by_key(|r| r[0].as_int().unwrap());
            assert_eq!(rows, serial, "dop={dop}");
            // Stats cover all rows exactly once.
            let total: u64 = par.worker_stats().iter().map(|s| s.rows_scanned).sum();
            assert_eq!(total, 5000);
            assert_eq!(par.worker_stats().len(), dop);
        }
    }

    #[test]
    fn filter_pushdown_in_parallel_plan() {
        let (_ctx, t) = setup(1000);
        let filter = Expr::binary(BinOp::Lt, Expr::col(0, "id"), Expr::lit(100));
        let mut par = ParallelAggIter::new(
            t,
            Some(filter),
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            3,
            QueryGovernor::unlimited(),
        )
        .unwrap();
        let row = par.next().unwrap().unwrap();
        assert_eq!(row[0], Value::Int(100));
        assert!(par.next().unwrap().is_none());
    }

    #[test]
    fn global_aggregate_on_empty_table() {
        let (_ctx, t) = setup(0);
        let mut par = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            2,
            QueryGovernor::unlimited(),
        )
        .unwrap();
        assert_eq!(par.next().unwrap().unwrap()[0], Value::Int(0));
    }

    #[test]
    fn non_mergeable_aggregate_rejected() {
        struct NoMerge;
        impl Aggregate for NoMerge {
            fn name(&self) -> &str {
                "NOMERGE"
            }
            fn create(&self) -> Box<dyn AggState> {
                unreachable!("plan construction should fail first")
            }
            fn mergeable(&self) -> bool {
                false
            }
        }
        let (_ctx, t) = setup(1);
        let res = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(NoMerge), vec![], "x")],
            2,
            QueryGovernor::unlimited(),
        );
        assert!(matches!(res, Err(DbError::Plan(_))));
    }

    /// A UDA that panics after a few rows, exercising the worker
    /// error-propagation path.
    struct PanicAgg;
    struct PanicState {
        n: i64,
    }
    impl Aggregate for PanicAgg {
        fn name(&self) -> &str {
            "PANIC_AGG"
        }
        fn create(&self) -> Box<dyn AggState> {
            Box::new(PanicState { n: 0 })
        }
    }
    impl AggState for PanicState {
        fn update(&mut self, _args: &[Value]) -> Result<()> {
            self.n += 1;
            if self.n > 3 {
                panic!("synthetic UDA failure");
            }
            Ok(())
        }
        fn merge(&mut self, _other: Box<dyn AggState>) -> Result<()> {
            Ok(())
        }
        fn finish(&mut self) -> Result<Value> {
            Ok(Value::Int(self.n))
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    #[test]
    fn panicking_worker_fails_only_its_query() {
        let (_ctx, t) = setup(5000);
        let gov = QueryGovernor::unlimited();
        let mut par = ParallelAggIter::new(
            t.clone(),
            None,
            vec![],
            vec![AggSpec::new(Arc::new(PanicAgg), vec![], "x")],
            4,
            gov,
        )
        .unwrap();
        let err = par.next().unwrap_err();
        // The panic is caught at the UDA boundary inside the worker and
        // surfaces as a typed UdxPanic naming the aggregate.
        match &err {
            DbError::UdxPanic { name, payload } => {
                assert_eq!(name, "PANIC_AGG");
                assert!(payload.contains("synthetic UDA failure"));
            }
            other => panic!("expected UdxPanic, got {other:?}"),
        }
        // The same table still serves healthy queries afterwards.
        let mut ok = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            4,
            QueryGovernor::unlimited(),
        )
        .unwrap();
        assert_eq!(ok.next().unwrap().unwrap()[0], Value::Int(5000));
    }

    #[test]
    fn worker_memory_exhaustion_fails_query_not_process() {
        let (_ctx, t) = setup(5000);
        let gov = QueryGovernor::new(None, Some(512));
        let mut par = ParallelAggIter::new(
            t,
            None,
            vec![Expr::col(0, "id")], // one group per row: must blow the budget
            specs(),
            4,
            gov.clone(),
        )
        .unwrap();
        let err = par.next().unwrap_err();
        assert!(matches!(err, DbError::ResourceExhausted(_)), "{err}");
        assert_eq!(gov.mem_used(), 0, "worker charges released on failure");
    }

    #[test]
    fn values_iter_is_unrelated_but_counting_iter_counts() {
        // Sanity check of the stats plumbing.
        let (_ctx, t) = setup(100);
        let mut c = CountingIter {
            inner: HeapScanIter::new(t, None, None),
            rows: 0,
            gov: QueryGovernor::unlimited(),
            ticker: Ticker::new(),
        };
        while c.next().unwrap().is_some() {}
        assert_eq!(c.rows, 100);
        let _ = ValuesIter::new(vec![]);
    }
}

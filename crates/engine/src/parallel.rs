//! Parallel query execution: the exchange-based aggregation plan of the
//! paper's Figures 8 and 9.
//!
//! SQL Server parallelizes Query 1 by scanning the table with multiple
//! workers, computing *partial* aggregates per worker, repartitioning on
//! the group key and finishing with a *final* aggregate, then gathering
//! streams. seqdb's [`ParallelAggIter`] implements the same shape:
//!
//! 1. the heap's pages are dealt round-robin to `dop` workers;
//! 2. each worker scans its pages, applies the pushed-down filter, and
//!    builds a partial hash-aggregate (possible because every aggregate —
//!    built-in or user-defined — implements `merge`, paper §2.3.4);
//!    when the shared memory budget runs out, the worker degrades like
//!    the serial operator: rows for new groups partition to
//!    `storage::tempspace` instead of failing the query;
//! 3. the coordinating thread merges the partial maps (the repartition +
//!    final aggregate collapsed into one merge, valid because merge is
//!    associative), re-aggregates each spill partition — chaining the
//!    same partition index from every worker, merging keys that another
//!    worker kept in memory — and emits finished groups.
//!
//! Per-worker busy time and row counts are recorded in [`WorkerStats`],
//! which is how the benchmark harness regenerates the utilization plot of
//! Figure 8 without an OS-level profiler.

use std::sync::Arc;
use std::time::{Duration, Instant};

use seqdb_types::{DbError, Result, Row};

use crate::catalog::Table;
use crate::exec::agg::{
    aggregate_level, aggregate_partial_spilling, group_cost, merge_maps, AggSpec, ChainRows,
    GroupedStates, OutputBuffer, OutputRows, SpillRowIter, SPILL_PARTITIONS,
};
use crate::exec::scan::HeapScanIter;
use crate::exec::{ExecContext, RowIterator};
use crate::expr::Expr;
use crate::governor::{MemCharge, QueryGovernor, Ticker};
use crate::udx::{panic_payload, protect};

/// Pick the error a failed parallel phase should surface: the first
/// non-`Cancelled` error is the root cause — siblings that were told to
/// stop because of it report `Cancelled` and would mask it. Shared by the
/// parallel aggregate and the partition-parallel hash join.
pub(crate) fn root_cause(errors: &[DbError]) -> DbError {
    errors
        .iter()
        .find(|e| !matches!(e, DbError::Cancelled(_)))
        .unwrap_or(&errors[0])
        .clone()
}

/// What one worker did during a parallel operator's execution.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    pub worker: usize,
    pub rows_scanned: u64,
    pub groups_produced: u64,
    pub busy: Duration,
}

/// Parallel scan + partial/final aggregation over a base table.
pub struct ParallelAggIter {
    table: Arc<Table>,
    filter: Option<Expr>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    dop: usize,
    ctx: ExecContext,
    output: Option<OutputRows>,
    stats: Vec<WorkerStats>,
}

impl ParallelAggIter {
    pub fn new(
        table: Arc<Table>,
        filter: Option<Expr>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        dop: usize,
        ctx: ExecContext,
    ) -> Result<ParallelAggIter> {
        if dop == 0 {
            return Err(DbError::Plan("degree of parallelism must be >= 1".into()));
        }
        for a in &aggs {
            if !a.factory.mergeable() {
                return Err(DbError::Plan(format!(
                    "aggregate {} does not support Merge() and cannot run in a parallel plan",
                    a.factory.name()
                )));
            }
        }
        Ok(ParallelAggIter {
            table,
            filter,
            group_exprs,
            aggs,
            dop,
            ctx,
            output: None,
            stats: Vec::new(),
        })
    }

    /// Per-worker statistics; empty until execution has run.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    fn execute(&mut self) -> Result<()> {
        let dop = self.dop;
        let gov = &self.ctx.gov;
        let temp = &self.ctx.temp;
        let mut partials = Vec::with_capacity(dop);
        // Per-worker spill partitions, handed to the coordinator unread.
        let mut spills: Vec<Vec<Option<seqdb_storage::tempspace::SpillWriter>>> = Vec::new();
        // MemCharges travel with the partial maps they account for and
        // are dropped (releasing the budget) at the end of execute().
        let mut charges: Vec<MemCharge> = Vec::with_capacity(dop);
        let mut errors: Vec<DbError> = Vec::new();

        // Workers only evaluate the filter, the group keys and the
        // aggregate arguments; every other column can skip decoding.
        let decode_mask = {
            let mut demand = vec![false; self.table.schema.len()];
            let mut refs = Vec::new();
            for e in self
                .filter
                .iter()
                .chain(&self.group_exprs)
                .chain(self.aggs.iter().flat_map(|a| &a.args))
            {
                e.referenced_columns(&mut refs);
            }
            for i in refs {
                if let Some(slot) = demand.get_mut(i) {
                    *slot = true;
                }
            }
            if demand.iter().all(|&b| b) {
                None
            } else {
                Some(demand)
            }
        };

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(dop);
            for w in 0..dop {
                let table = self.table.clone();
                let filter = self.filter.clone();
                let gov = gov.clone();
                let decode_mask = decode_mask.clone();
                let group_exprs = self.group_exprs.clone();
                let aggs = self.aggs.clone();
                let temp = temp.clone();
                let tallies = self.ctx.spill_tallies();
                let batch_hint = self.ctx.batch_size;
                handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let mut scan = CountingIter {
                        inner: HeapScanIter::partitioned(table, filter, None, decode_mask, w, dop),
                        rows: 0,
                        gov: gov.clone(),
                        ticker: Ticker::new(),
                    };
                    // Workers share the query's governor: their partial
                    // maps charge one common budget, and they stop at the
                    // next row once a sibling cancels it. A worker whose
                    // budget share runs out degrades exactly like the
                    // serial hash aggregate: rows for new groups go to
                    // its own tempspace partitions for the coordinator
                    // to re-aggregate. Each worker is capped at its share
                    // of *half* the budget so the final phase — which
                    // must hold the merged worker map while re-reading
                    // the spills — keeps the other half.
                    let cap = gov.mem_limit().map(|l| l / 2 / dop);
                    let mut charge = MemCharge::new(gov.clone());
                    let result = aggregate_partial_spilling(
                        &mut scan,
                        &group_exprs,
                        &aggs,
                        &mut charge,
                        &temp,
                        &tallies,
                        Some(&gov),
                        cap,
                        0,
                        batch_hint,
                    );
                    if result.is_err() {
                        // Fail fast: siblings notice at their next
                        // cooperative check instead of scanning on.
                        gov.cancel();
                    }
                    let (map, partitions) = result?;
                    let stats = WorkerStats {
                        worker: w,
                        rows_scanned: scan.rows,
                        groups_produced: map.len() as u64,
                        busy: start.elapsed(),
                    };
                    Ok::<_, DbError>((map, partitions, stats, charge))
                }));
            }
            // Join every worker before reporting anything: no handle is
            // left detached, and no `unwrap()` turns a worker panic into
            // a coordinator panic.
            for h in handles {
                match h.join() {
                    Ok(Ok((map, partitions, stats, charge))) => {
                        self.stats.push(stats);
                        partials.push(map);
                        spills.push(partitions);
                        charges.push(charge);
                    }
                    Ok(Err(e)) => errors.push(e),
                    Err(p) => {
                        gov.cancel();
                        errors.push(DbError::Execution(format!(
                            "parallel worker panicked: {}",
                            panic_payload(p)
                        )));
                    }
                }
            }
        });

        if !errors.is_empty() {
            return Err(root_cause(&errors));
        }

        // Final aggregation: merge the workers' in-memory partial maps
        // into one resident map. Duplicate keys collapse, so the merged
        // map costs no more than the sum of the worker charges: release
        // those and re-reserve the merged cost under one fresh charge,
        // handing the freed budget back to the spill recursion below.
        let mut resident: GroupedStates = partials.pop().unwrap_or_default();
        for p in partials {
            merge_maps(&mut resident, p, &self.aggs)?;
        }
        drop(charges);
        let mut resident_charge = MemCharge::new(gov.clone());
        let resident_cost: usize = resident
            .keys()
            .map(|k| group_cost(k, self.aggs.len()))
            .sum();
        resident_charge.grow(resident_cost)?;

        // Re-aggregate the spilled rows. All workers hash with the same
        // depth-0 salt, so partition index p holds the same key subset in
        // every worker: chaining them gives one logical partition, and no
        // key appears in two different partitions. A spilled key that
        // another worker kept in memory merges into the resident map
        // inside `aggregate_level` instead of being emitted twice.
        let mut out = OutputBuffer::new(&self.ctx);
        for p in 0..SPILL_PARTITIONS {
            let mut parts = Vec::new();
            for worker in &mut spills {
                if let Some(writer) = worker[p].take() {
                    parts.push(SpillRowIter::new(writer.finish()?));
                }
            }
            if parts.is_empty() {
                continue;
            }
            let mut chained = ChainRows::new(parts);
            aggregate_level(
                &mut chained,
                &self.group_exprs,
                &self.aggs,
                &self.ctx,
                1,
                &mut resident,
                &mut out,
            )?;
        }

        // Emit the resident groups last — only now are they complete.
        for (key, states) in resident.drain() {
            let mut vals = key;
            for (mut s, spec) in states.into_iter().zip(&self.aggs) {
                vals.push(protect(spec.factory.name(), || s.finish())?);
            }
            out.push(Row::new(vals))?;
        }
        drop(resident_charge);

        if out.is_empty() && self.group_exprs.is_empty() {
            // Global aggregate over an empty table still yields one row.
            let mut vals = Vec::new();
            for a in &self.aggs {
                vals.push(protect(a.factory.name(), || {
                    let mut s = a.factory.create();
                    s.finish()
                })?);
            }
            self.stats.sort_by_key(|s| s.worker);
            self.output = Some(OutputRows::from_vec(vec![Row::new(vals)]));
            return Ok(());
        }
        self.stats.sort_by_key(|s| s.worker);
        self.output = Some(out.into_rows()?);
        Ok(())
    }
}

struct CountingIter {
    inner: HeapScanIter,
    rows: u64,
    gov: Arc<QueryGovernor>,
    ticker: Ticker,
}

impl RowIterator for CountingIter {
    fn next(&mut self) -> Result<Option<Row>> {
        // Workers run outside the plan's GovernedIter wrappers, so the
        // cooperative check lives here.
        self.ticker.tick(&self.gov)?;
        let r = self.inner.next()?;
        if r.is_some() {
            self.rows += 1;
        }
        Ok(r)
    }

    /// Batch feed for the worker: one cooperative check per page-sized
    /// batch from the partitioned heap scan instead of one per row.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<crate::exec::RowBatch>> {
        self.ticker.tick_batch(&self.gov)?;
        let batch = self.inner.next_batch(max_rows)?;
        if let Some(b) = &batch {
            self.rows += b.len() as u64;
        }
        Ok(batch)
    }
}

impl RowIterator for ParallelAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            self.execute()?;
        }
        match self.output.as_mut() {
            Some(rows) => rows.next(),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_context;
    use crate::exec::{collect, ValuesIter};
    use crate::expr::BinOp;
    use crate::udx::{AggState, Aggregate, CountAgg, SumAgg};
    use seqdb_storage::rowfmt::Compression;
    use seqdb_types::{Column, DataType, Schema, Value};

    fn setup(nrows: i64) -> (crate::exec::ExecContext, Arc<Table>) {
        let ctx = test_context();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("grp", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let t = ctx
            .catalog
            .create_table("facts", schema, Compression::Row, None)
            .unwrap();
        for i in 0..nrows {
            t.insert(&Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Int(i % 100),
            ]))
            .unwrap();
        }
        (ctx, t)
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(Arc::new(CountAgg), vec![], "cnt"),
            AggSpec::new(Arc::new(SumAgg), vec![Expr::col(2, "v")], "total"),
        ]
    }

    #[test]
    fn parallel_equals_serial() {
        let (_ctx, t) = setup(5000);
        let group = vec![Expr::col(1, "grp")];

        // Serial reference.
        let serial = {
            let scan = Box::new(HeapScanIter::new(t.clone(), None, None, None));
            let it = crate::exec::agg::HashAggIter::new(scan, group.clone(), specs(), _ctx.clone());
            let mut rows = collect(Box::new(it)).unwrap();
            rows.sort_by_key(|r| r[0].as_int().unwrap());
            rows
        };

        for dop in [1, 2, 4] {
            let mut par =
                ParallelAggIter::new(t.clone(), None, group.clone(), specs(), dop, _ctx.clone())
                    .unwrap();
            let mut rows = Vec::new();
            while let Some(r) = par.next().unwrap() {
                rows.push(r);
            }
            rows.sort_by_key(|r| r[0].as_int().unwrap());
            assert_eq!(rows, serial, "dop={dop}");
            // Stats cover all rows exactly once.
            let total: u64 = par.worker_stats().iter().map(|s| s.rows_scanned).sum();
            assert_eq!(total, 5000);
            assert_eq!(par.worker_stats().len(), dop);
        }
    }

    #[test]
    fn filter_pushdown_in_parallel_plan() {
        let (_ctx, t) = setup(1000);
        let filter = Expr::binary(BinOp::Lt, Expr::col(0, "id"), Expr::lit(100));
        let mut par = ParallelAggIter::new(
            t,
            Some(filter),
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            3,
            _ctx,
        )
        .unwrap();
        let row = par.next().unwrap().unwrap();
        assert_eq!(row[0], Value::Int(100));
        assert!(par.next().unwrap().is_none());
    }

    #[test]
    fn global_aggregate_on_empty_table() {
        let (_ctx, t) = setup(0);
        let mut par = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            2,
            _ctx,
        )
        .unwrap();
        assert_eq!(par.next().unwrap().unwrap()[0], Value::Int(0));
    }

    #[test]
    fn non_mergeable_aggregate_rejected() {
        struct NoMerge;
        impl Aggregate for NoMerge {
            fn name(&self) -> &str {
                "NOMERGE"
            }
            fn create(&self) -> Box<dyn AggState> {
                unreachable!("plan construction should fail first")
            }
            fn mergeable(&self) -> bool {
                false
            }
        }
        let (_ctx, t) = setup(1);
        let res = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(NoMerge), vec![], "x")],
            2,
            _ctx,
        );
        assert!(matches!(res, Err(DbError::Plan(_))));
    }

    /// A UDA that panics after a few rows, exercising the worker
    /// error-propagation path.
    struct PanicAgg;
    struct PanicState {
        n: i64,
    }
    impl Aggregate for PanicAgg {
        fn name(&self) -> &str {
            "PANIC_AGG"
        }
        fn create(&self) -> Box<dyn AggState> {
            Box::new(PanicState { n: 0 })
        }
    }
    impl AggState for PanicState {
        fn update(&mut self, _args: &[Value]) -> Result<()> {
            self.n += 1;
            if self.n > 3 {
                panic!("synthetic UDA failure");
            }
            Ok(())
        }
        fn merge(&mut self, _other: Box<dyn AggState>) -> Result<()> {
            Ok(())
        }
        fn finish(&mut self) -> Result<Value> {
            Ok(Value::Int(self.n))
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    #[test]
    fn panicking_worker_fails_only_its_query() {
        let (_ctx, t) = setup(5000);
        let mut par = ParallelAggIter::new(
            t.clone(),
            None,
            vec![],
            vec![AggSpec::new(Arc::new(PanicAgg), vec![], "x")],
            4,
            _ctx.clone(),
        )
        .unwrap();
        let err = par.next().unwrap_err();
        // The panic is caught at the UDA boundary inside the worker and
        // surfaces as a typed UdxPanic naming the aggregate.
        match &err {
            DbError::UdxPanic { name, payload } => {
                assert_eq!(name, "PANIC_AGG");
                assert!(payload.contains("synthetic UDA failure"));
            }
            other => panic!("expected UdxPanic, got {other:?}"),
        }
        // The same table still serves healthy queries afterwards.
        let mut healthy = _ctx.clone();
        healthy.gov = QueryGovernor::unlimited();
        let mut ok = ParallelAggIter::new(
            t,
            None,
            vec![],
            vec![AggSpec::new(Arc::new(CountAgg), vec![], "cnt")],
            4,
            healthy,
        )
        .unwrap();
        assert_eq!(ok.next().unwrap().unwrap()[0], Value::Int(5000));
    }

    #[test]
    fn worker_memory_pressure_spills_and_aggregates_exactly() {
        let (ctx, t) = setup(5000);
        let group = vec![Expr::col(0, "id")]; // one group per row

        // Serial reference with no memory pressure.
        let serial = {
            let scan = Box::new(HeapScanIter::new(t.clone(), None, None, None));
            let it = crate::exec::agg::HashAggIter::new(scan, group.clone(), specs(), ctx.clone());
            let mut rows = collect(Box::new(it)).unwrap();
            rows.sort_by_key(|r| r[0].as_int().unwrap());
            rows
        };

        // ~64 KiB budget shared by 4 workers for ~5000 groups: every
        // worker must spill, yet the query completes with exact results.
        let mut tight = ctx.clone();
        tight.gov = QueryGovernor::new(None, Some(64 * 1024));
        let gov = tight.gov.clone();
        tight.temp.reset_counters();
        let mut par = ParallelAggIter::new(t, None, group, specs(), 4, tight.clone()).unwrap();
        let mut rows = Vec::new();
        while let Some(r) = par.next().unwrap() {
            rows.push(r);
        }
        rows.sort_by_key(|r| r[0].as_int().unwrap());
        assert_eq!(rows, serial);
        assert!(
            tight.temp.spill_count() > 0,
            "the budget must have forced worker-side spilling"
        );
        drop(par);
        assert_eq!(gov.mem_used(), 0, "all charges released");
        assert_eq!(tight.temp.live_files().unwrap(), 0, "no leaked spill files");
    }

    #[test]
    fn pathological_budget_fails_typed_after_bounded_repartitioning() {
        let (ctx, t) = setup(5000);
        // A budget too small to admit even one group: rows re-spill at
        // every level until MAX_SPILL_DEPTH, then fail typed — the
        // process and the table both survive.
        let mut starved = ctx.clone();
        starved.gov = QueryGovernor::new(None, Some(64));
        let gov = starved.gov.clone();
        let mut par = ParallelAggIter::new(
            t,
            None,
            vec![Expr::col(0, "id")],
            specs(),
            4,
            starved.clone(),
        )
        .unwrap();
        let err = par.next().unwrap_err();
        assert!(matches!(err, DbError::ResourceExhausted(_)), "{err}");
        drop(par);
        assert_eq!(gov.mem_used(), 0, "worker charges released on failure");
        assert_eq!(
            starved.temp.live_files().unwrap(),
            0,
            "no leaked spill files"
        );
    }

    #[test]
    fn values_iter_is_unrelated_but_counting_iter_counts() {
        // Sanity check of the stats plumbing.
        let (_ctx, t) = setup(100);
        let mut c = CountingIter {
            inner: HeapScanIter::new(t, None, None, None),
            rows: 0,
            gov: QueryGovernor::unlimited(),
            ticker: Ticker::new(),
        };
        while c.next().unwrap().is_some() {}
        assert_eq!(c.rows, 100);
        let _ = ValuesIter::new(vec![]);
    }
}

//! Scalar expression evaluation.
//!
//! Expressions are fully resolved at plan time: column references are
//! positional, function calls hold an `Arc` to the resolved
//! [`ScalarUdf`]. Evaluation is row-at-a-time, matching the iterator
//! model of the rest of the engine.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use seqdb_types::{DbError, Result, Row, Value};

use crate::udx::ScalarUdf;

/// Binary operators. Comparisons use SQL three-valued logic (NULL
/// propagates); `And`/`Or` short-circuit with SQL NULL semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn sql_symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// A scalar expression over an input row.
#[derive(Clone)]
pub enum Expr {
    /// Positional column reference, with the display name kept for EXPLAIN.
    Column {
        index: usize,
        name: String,
    },
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// Resolved scalar function call.
    Func {
        udf: Arc<dyn ScalarUdf>,
        args: Vec<Expr>,
    },
}

impl Expr {
    pub fn col(index: usize, name: impl Into<String>) -> Expr {
        Expr::Column {
            index,
            name: name.into(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Column { index, name } => row.get(*index).cloned().ok_or_else(|| {
                DbError::Execution(format!(
                    "column {name} (#{index}) out of range for row of {} values",
                    row.len()
                ))
            }),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            Expr::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Bool(!v.as_bool()?)),
            },
            Expr::Neg(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                v => Err(DbError::Execution(format!(
                    "cannot negate {}",
                    v.type_name()
                ))),
            },
            Expr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Value::Bool(isnull != *negated))
            }
            Expr::Func { udf, args } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
                // User code runs inside the engine; a panicking UDF must
                // fail its query, not the process (paper §2.3.1).
                crate::udx::protect(udf.name(), || udf.invoke(&vals))
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL WHERE semantics).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Null => Ok(false),
            v => v.as_bool(),
        }
    }

    /// All column indexes referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column { index, .. } => out.push(*index),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.referenced_columns(out),
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// Rewrite column indexes through a mapping (used when pushing
    /// expressions below a projection). `map[i]` is the new index of old
    /// column `i`; `None` entries must not be referenced.
    pub fn remap_columns(&mut self, map: &[Option<usize>]) -> Result<()> {
        match self {
            Expr::Column { index, name } => {
                *index = map.get(*index).copied().flatten().ok_or_else(|| {
                    DbError::Plan(format!("column {name} unavailable after projection"))
                })?;
                Ok(())
            }
            Expr::Literal(_) => Ok(()),
            Expr::Binary { left, right, .. } => {
                left.remap_columns(map)?;
                right.remap_columns(map)
            }
            Expr::Not(e) | Expr::Neg(e) => e.remap_columns(map),
            Expr::IsNull { expr, .. } => expr.remap_columns(map),
            Expr::Func { args, .. } => {
                for a in args {
                    a.remap_columns(map)?;
                }
                Ok(())
            }
        }
    }
}

/// Evaluate `exprs` over one row into a reused buffer (cleared first).
/// Join probes and aggregate argument loops run once per input row and
/// must not allocate a fresh vector each time.
pub fn eval_into(exprs: &[Expr], row: &Row, out: &mut Vec<Value>) -> Result<()> {
    out.clear();
    for e in exprs {
        out.push(e.eval(row)?);
    }
    Ok(())
}

/// A type-specialized comparison kernel for the vectorized path:
/// `column <op> integer-literal` predicates (either operand order)
/// evaluate directly against the stored value instead of walking the
/// expression tree per row. Rows whose stored value is neither `Int` nor
/// `Null` return `None` so the caller can fall back to the interpreter —
/// kernel and interpreter are observably identical.
#[derive(Clone, Copy, Debug)]
pub struct IntCmpKernel {
    col: usize,
    op: BinOp,
    k: i64,
}

impl IntCmpKernel {
    /// Recognize a kernel-eligible predicate shape, normalizing
    /// `literal <op> column` by flipping the comparison.
    pub fn compile(expr: &Expr) -> Option<IntCmpKernel> {
        let Expr::Binary { op, left, right } = expr else {
            return None;
        };
        if !matches!(
            op,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        ) {
            return None;
        }
        match (left.as_ref(), right.as_ref()) {
            (Expr::Column { index, .. }, Expr::Literal(Value::Int(k))) => Some(IntCmpKernel {
                col: *index,
                op: *op,
                k: *k,
            }),
            (Expr::Literal(Value::Int(k)), Expr::Column { index, .. }) => {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    other => *other,
                };
                Some(IntCmpKernel {
                    col: *index,
                    op: flipped,
                    k: *k,
                })
            }
            _ => None,
        }
    }

    /// Evaluate against one row; `None` means the row is outside the
    /// kernel's domain (missing column or non-integer value) and must go
    /// through the interpreter. `Null` compares to `Null`, which a
    /// predicate position treats as false.
    #[inline]
    pub fn eval(&self, row: &Row) -> Option<bool> {
        match row.get(self.col) {
            Some(Value::Int(v)) => Some(match self.op {
                BinOp::Eq => *v == self.k,
                BinOp::NotEq => *v != self.k,
                BinOp::Lt => *v < self.k,
                BinOp::LtEq => *v <= self.k,
                BinOp::Gt => *v > self.k,
                BinOp::GtEq => *v >= self.k,
                _ => unreachable!("compile admits only comparisons"),
            }),
            Some(Value::Null) => Some(false),
            _ => None,
        }
    }
}

/// Which expressions of a projection list may *move* their value out of
/// the input row instead of cloning it: bare column references whose
/// column no other expression in the list touches. Safe because the
/// input row is dropped right after the projection, and a column taken
/// here is by construction read by nothing else.
pub fn take_plan(exprs: &[Expr]) -> Vec<bool> {
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut refs = Vec::new();
    for e in exprs {
        refs.clear();
        e.referenced_columns(&mut refs);
        for &i in &refs {
            *counts.entry(i).or_insert(0) += 1;
        }
    }
    exprs
        .iter()
        .map(|e| matches!(e, Expr::Column { index, .. } if counts.get(index) == Some(&1)))
        .collect()
}

/// Evaluate a projection list over one row into `out` (cleared first).
/// Where `take` (from [`take_plan`]) allows, the value is moved out of
/// the row, leaving `Value::Null` behind — the batch projection path
/// uses this to avoid the per-row `Value` clones (and for `Text`
/// columns, the string copies) that `Expr::eval` pays.
pub fn eval_project_into(
    exprs: &[Expr],
    take: &[bool],
    row: &mut Row,
    out: &mut Vec<Value>,
) -> Result<()> {
    out.clear();
    out.reserve(exprs.len());
    for (i, e) in exprs.iter().enumerate() {
        if take.get(i).copied().unwrap_or(false) {
            if let Expr::Column { index, .. } = e {
                if let Some(slot) = row.0.get_mut(*index) {
                    out.push(std::mem::replace(slot, Value::Null));
                    continue;
                }
            }
        }
        out.push(e.eval(row)?);
    }
    Ok(())
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, row: &Row) -> Result<Value> {
    // AND/OR need SQL three-valued logic with short-circuiting.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = left.eval(row)?;
        let l_bool = if l.is_null() {
            None
        } else {
            Some(l.as_bool()?)
        };
        match (op, l_bool) {
            (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = right.eval(row)?;
        let r_bool = if r.is_null() {
            None
        } else {
            Some(r.as_bool()?)
        };
        return Ok(match (op, l_bool, r_bool) {
            (BinOp::And, Some(true), Some(b)) => Value::Bool(b),
            (BinOp::And, _, Some(false)) => Value::Bool(false),
            (BinOp::And, _, _) => Value::Null,
            (BinOp::Or, Some(false), Some(b)) => Value::Bool(b),
            (BinOp::Or, _, Some(true)) => Value::Bool(true),
            (BinOp::Or, _, _) => Value::Null,
            _ => unreachable!(),
        });
    }

    let l = left.eval(row)?;
    let r = right.eval(row)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }

    match op {
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            // Comparable only within a type class; mixed numeric is fine.
            let comparable = matches!(
                (&l, &r),
                (
                    Value::Int(_) | Value::Float(_),
                    Value::Int(_) | Value::Float(_)
                ) | (Value::Text(_), Value::Text(_))
                    | (Value::Bytes(_), Value::Bytes(_))
                    | (Value::Bool(_), Value::Bool(_))
                    | (Value::Guid(_), Value::Guid(_))
            );
            if !comparable {
                return Err(DbError::Execution(format!(
                    "cannot compare {} with {}",
                    l.type_name(),
                    r.type_name()
                )));
            }
            let ord = l.total_cmp(&r);
            Ok(Value::Bool(match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::NotEq => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::LtEq => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            }))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    BinOp::Add => a.checked_add(*b),
                    BinOp::Sub => a.checked_sub(*b),
                    BinOp::Mul => a.checked_mul(*b),
                    BinOp::Div => {
                        if *b == 0 {
                            return Err(DbError::Execution("division by zero".into()));
                        }
                        a.checked_div(*b)
                    }
                    BinOp::Mod => {
                        if *b == 0 {
                            return Err(DbError::Execution("division by zero".into()));
                        }
                        a.checked_rem(*b)
                    }
                    _ => unreachable!(),
                };
                v.map(Value::Int)
                    .ok_or_else(|| DbError::Execution("integer overflow".into()))
            }
            (Value::Text(a), Value::Text(b)) if op == BinOp::Add => {
                // T-SQL string concatenation with `+`.
                Ok(Value::text(format!("{a}{b}")))
            }
            _ => {
                let a = l.as_float()?;
                let b = r.as_float()?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            return Err(DbError::Execution("division by zero".into()));
                        }
                        a / b
                    }
                    BinOp::Mod => a % b,
                    _ => unreachable!(),
                };
                Ok(Value::Float(v))
            }
        },
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { name, .. } => write!(f, "{name}"),
            Expr::Literal(Value::Text(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql_symbol())
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Func { udf, args } => {
                write!(f, "{}(", udf.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![Value::Int(10), Value::text("ACGTN"), Value::Null])
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::binary(
            BinOp::Gt,
            Expr::binary(BinOp::Mul, Expr::col(0, "x"), Expr::lit(2)),
            Expr::lit(19),
        );
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagates_and_where_treats_null_as_false() {
        let e = Expr::binary(BinOp::Eq, Expr::col(2, "n"), Expr::lit(1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&row()).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let null = Expr::Literal(Value::Null);
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        // FALSE AND NULL = FALSE (short circuit)
        assert_eq!(
            Expr::binary(BinOp::And, f.clone(), null.clone())
                .eval(&row())
                .unwrap(),
            Value::Bool(false)
        );
        // TRUE AND NULL = NULL
        assert_eq!(
            Expr::binary(BinOp::And, t.clone(), null.clone())
                .eval(&row())
                .unwrap(),
            Value::Null
        );
        // NULL OR TRUE = TRUE
        assert_eq!(
            Expr::binary(BinOp::Or, null.clone(), t)
                .eval(&row())
                .unwrap(),
            Value::Bool(true)
        );
        // NULL OR FALSE = NULL
        assert_eq!(
            Expr::binary(BinOp::Or, null, f).eval(&row()).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn string_concat_with_plus() {
        let e = Expr::binary(BinOp::Add, Expr::lit("chr"), Expr::lit("1"));
        assert_eq!(e.eval(&Row::empty()).unwrap(), Value::text("chr1"));
    }

    #[test]
    fn division_by_zero_and_overflow_are_errors() {
        let e = Expr::binary(BinOp::Div, Expr::lit(1), Expr::lit(0));
        assert!(e.eval(&Row::empty()).is_err());
        let e = Expr::binary(BinOp::Add, Expr::lit(i64::MAX), Expr::lit(1));
        assert!(e.eval(&Row::empty()).is_err());
    }

    #[test]
    fn is_null_and_not() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(2, "n")),
            negated: false,
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = Expr::Not(Box::new(e));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn remap_columns() {
        let mut e = Expr::binary(BinOp::Add, Expr::col(3, "a"), Expr::col(1, "b"));
        e.remap_columns(&[None, Some(0), None, Some(1)]).unwrap();
        let mut refs = Vec::new();
        e.referenced_columns(&mut refs);
        refs.sort();
        assert_eq!(refs, vec![0, 1]);
        // Referencing a dropped column fails.
        let mut bad = Expr::col(2, "c");
        assert!(bad.remap_columns(&[Some(0), Some(1), None]).is_err());
    }

    #[test]
    fn incomparable_types_error() {
        let e = Expr::binary(BinOp::Lt, Expr::lit("a"), Expr::lit(1));
        assert!(e.eval(&Row::empty()).is_err());
    }
}

//! Persistent query store: per-fingerprint execution history that
//! survives restarts.
//!
//! `DM_EXEC_QUERY_STATS()` is a bounded in-memory ring keyed by raw
//! statement text — it dies with the process, and two executions of the
//! same pipeline with different literals land in different rows. The
//! query store fixes both, following SQL Server 2008's Query Store /
//! `query_hash` design:
//!
//! * [`fingerprint`] normalizes statement text (literals → `?`, case and
//!   whitespace folded) and hashes it (FNV-1a 64), so
//!   `SELECT * FROM runs WHERE id = 7` and `... id = 9` aggregate into
//!   one entry;
//! * [`QueryStore`] aggregates per-fingerprint stats: execution count,
//!   dispositions (completed / killed / timeout), rows, a log₂ latency
//!   histogram with p50/p99, spill files/bytes, a wait breakdown
//!   (admission vs spill), and the governed-memory peak;
//! * the store is serialized at `CHECKPOINT` via tmp + fsync + rename to
//!   `querystore.seqdb` next to the catalog, and reloaded by
//!   `Database::open` — `DM_DB_QUERY_STORE()` therefore answers "what did
//!   this pipeline spend its time on, *yesterday*?" across restarts.

use std::sync::Arc;

use parking_lot::Mutex;

use seqdb_types::{DbError, Result};

/// Number of log₂ latency buckets. Bucket *i* holds elapsed times with
/// `floor(log2(µs)) == i` (bucket 0 is `< 2 µs`); the last bucket is
/// open-ended, covering everything from ~36 minutes up.
pub const HIST_BUCKETS: usize = 32;

/// Log₂-bucketed latency histogram over statement elapsed microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    fn bucket_for(micros: u64) -> usize {
        if micros < 2 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` in microseconds (`u64::MAX`
    /// for the open-ended last bucket).
    pub fn bucket_upper_micros(i: usize) -> u64 {
        if i + 1 >= HIST_BUCKETS {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Count one observation.
    pub fn record_micros(&mut self, micros: u64) {
        self.buckets[Self::bucket_for(micros)] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The inclusive upper bound (µs) of the bucket containing the
    /// `p`-th percentile observation (`p` in 0..=100). Zero when empty.
    /// Bucket-granular by construction: the true percentile lies within
    /// the returned bucket's bounds.
    pub fn percentile_micros(&self, p: u8) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the percentile observation, 1-based, nearest-rank.
        let rank = (u128::from(total) * u128::from(p.min(100))).div_ceil(100);
        let rank = (rank as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_micros(i);
            }
        }
        Self::bucket_upper_micros(HIST_BUCKETS - 1)
    }

    /// Fold another histogram into this one (used at reload).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    fn to_csv(&self) -> String {
        self.buckets
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    fn from_csv(s: &str) -> Result<LatencyHistogram> {
        let mut h = LatencyHistogram::default();
        for (i, part) in s.split(',').enumerate() {
            if i >= HIST_BUCKETS {
                return Err(DbError::Corruption(
                    "query store: histogram has too many buckets".into(),
                ));
            }
            h.buckets[i] = part.parse::<u64>().map_err(|_| {
                DbError::Corruption(format!("query store: bad histogram bucket '{part}'"))
            })?;
        }
        Ok(h)
    }
}

// ---------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------

/// Normalize statement text for fingerprinting: string and numeric
/// literals become `?`, identifiers/keywords are upper-cased, and runs of
/// whitespace collapse to one space. The normalization is deliberately
/// lexical (a tiny scanner, not the SQL parser) so it also works on
/// statements the parser would reject.
pub fn normalize(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut pending_space = false;
    // A space survives normalization only between two word-like tokens
    // (`SELECT 1` stays distinct from `SELECT1`); whitespace around
    // punctuation is dropped so `id = 7` and `id=9` fold together.
    let push = |out: &mut String, s: &str, pending_space: &mut bool| {
        if *pending_space
            && out
                .chars()
                .last()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '?')
        {
            out.push(' ');
        }
        *pending_space = false;
        out.push_str(s);
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            pending_space = true;
            i += 1;
        } else if c == '\'' {
            // String literal, with '' escapes; whole thing becomes `?`.
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            push(&mut out, "?", &mut pending_space);
        } else if c.is_ascii_digit() {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'_')
            {
                i += 1;
            }
            push(&mut out, "?", &mut pending_space);
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &sql[start..i];
            push(&mut out, &word.to_ascii_uppercase(), &mut pending_space);
        } else {
            // Operators and punctuation pass through; a preceding space
            // is kept only between two words (handled above), so
            // `id = 7` and `id=9` normalize identically.
            let start = i;
            i += c.len_utf8();
            pending_space = false;
            out.push_str(&sql[start..i]);
        }
    }
    out
}

/// FNV-1a 64 over the normalized text.
pub fn fingerprint_hash(normalized: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in normalized.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `(hash, normalized_text)` for one statement.
pub fn fingerprint(sql: &str) -> (u64, String) {
    let norm = normalize(sql);
    (fingerprint_hash(&norm), norm)
}

// ---------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------

/// How a statement ended, as recorded by the session guard's drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    Completed,
    Killed,
    Timeout,
}

impl Disposition {
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Completed => "completed",
            Disposition::Killed => "killed",
            Disposition::Timeout => "timeout",
        }
    }
}

/// What one finished statement contributes to the store.
#[derive(Debug, Clone)]
pub struct StoreOutcome {
    pub rows: u64,
    pub elapsed_micros: u64,
    pub spill_files: u64,
    pub spill_bytes: u64,
    pub wait_admission_micros: u64,
    pub wait_spill_micros: u64,
    pub peak_mem_bytes: u64,
    pub disposition: Disposition,
}

/// Aggregated stats for one statement fingerprint.
#[derive(Debug, Clone)]
pub struct QueryStoreEntry {
    pub fingerprint: u64,
    /// Normalized statement text (literals replaced with `?`).
    pub text: String,
    pub executions: u64,
    pub killed: u64,
    pub timeouts: u64,
    pub total_rows: u64,
    pub total_elapsed_micros: u64,
    pub hist: LatencyHistogram,
    pub spill_files: u64,
    pub spill_bytes: u64,
    pub wait_admission_micros: u64,
    pub wait_spill_micros: u64,
    pub peak_mem_bytes: u64,
    /// Executions already on disk when this process loaded the store
    /// (0 for fingerprints first seen in this process lifetime).
    pub persisted_executions: u64,
}

impl QueryStoreEntry {
    fn new(fingerprint: u64, text: String) -> QueryStoreEntry {
        QueryStoreEntry {
            fingerprint,
            text,
            executions: 0,
            killed: 0,
            timeouts: 0,
            total_rows: 0,
            total_elapsed_micros: 0,
            hist: LatencyHistogram::default(),
            spill_files: 0,
            spill_bytes: 0,
            wait_admission_micros: 0,
            wait_spill_micros: 0,
            peak_mem_bytes: 0,
            persisted_executions: 0,
        }
    }

    fn fold(&mut self, o: &StoreOutcome) {
        self.executions += 1;
        match o.disposition {
            Disposition::Completed => {}
            Disposition::Killed => self.killed += 1,
            Disposition::Timeout => self.timeouts += 1,
        }
        self.total_rows += o.rows;
        self.total_elapsed_micros += o.elapsed_micros;
        self.hist.record_micros(o.elapsed_micros);
        self.spill_files += o.spill_files;
        self.spill_bytes += o.spill_bytes;
        self.wait_admission_micros += o.wait_admission_micros;
        self.wait_spill_micros += o.wait_spill_micros;
        self.peak_mem_bytes = self.peak_mem_bytes.max(o.peak_mem_bytes);
    }
}

const MAGIC: &str = "seqdb-querystore v1";

/// Per-database persistent query store. Bounded: beyond `capacity`
/// fingerprints, the entry with the fewest executions is evicted (the
/// store keeps the *recurring* pipelines, which is what the history is
/// for).
pub struct QueryStore {
    capacity: usize,
    entries: Mutex<Vec<QueryStoreEntry>>,
    /// Frozen image of what is on disk (loaded at open, refreshed at
    /// checkpoint) — the `AS OF 'persisted'` view.
    persisted: Mutex<Vec<QueryStoreEntry>>,
}

impl QueryStore {
    /// Default fingerprint capacity.
    pub const DEFAULT_CAPACITY: usize = 512;

    pub fn new(capacity: usize) -> Arc<QueryStore> {
        Arc::new(QueryStore {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            persisted: Mutex::new(Vec::new()),
        })
    }

    /// Fold one finished statement into the store. Called from the
    /// session guard's drop, so statements killed by `KILL` or a server
    /// drain still land here, with their disposition.
    pub fn record(&self, sql: &str, outcome: &StoreOutcome) {
        let (fp, norm) = fingerprint(sql);
        let mut entries = self.entries.lock();
        match entries.iter_mut().find(|e| e.fingerprint == fp) {
            Some(e) => e.fold(outcome),
            None => {
                if entries.len() >= self.capacity {
                    // Evict the coldest fingerprint.
                    if let Some((i, _)) =
                        entries.iter().enumerate().min_by_key(|(_, e)| e.executions)
                    {
                        entries.remove(i);
                    }
                }
                let mut e = QueryStoreEntry::new(fp, norm);
                e.fold(outcome);
                entries.push(e);
            }
        }
    }

    /// Every live entry (in-memory view), insertion order.
    pub fn snapshot(&self) -> Vec<QueryStoreEntry> {
        self.entries.lock().clone()
    }

    /// The frozen on-disk view (what the last checkpoint/open saw).
    pub fn persisted_snapshot(&self) -> Vec<QueryStoreEntry> {
        self.persisted.lock().clone()
    }

    /// Serialize the live store (header + one tab-separated line per
    /// fingerprint) and refresh the frozen persisted view to match.
    /// The caller writes the returned bytes via tmp + fsync + rename.
    pub fn serialize(&self) -> String {
        let entries = self.entries.lock().clone();
        let mut out = String::with_capacity(64 * entries.len() + MAGIC.len() + 1);
        out.push_str(MAGIC);
        out.push('\n');
        for e in &entries {
            out.push_str(&format!(
                "{:016x}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                e.fingerprint,
                e.executions,
                e.killed,
                e.timeouts,
                e.total_rows,
                e.total_elapsed_micros,
                e.spill_files,
                e.spill_bytes,
                e.wait_admission_micros,
                e.wait_spill_micros,
                e.peak_mem_bytes,
                e.hist.to_csv(),
                escape(&e.text),
            ));
        }
        *self.persisted.lock() = entries;
        out
    }

    /// Load a serialized store, replacing the live and persisted views.
    /// Every loaded execution counts as persisted.
    pub fn load(&self, data: &str) -> Result<()> {
        let mut lines = data.lines();
        match lines.next() {
            Some(l) if l == MAGIC => {}
            other => {
                return Err(DbError::Corruption(format!(
                    "query store: bad header {other:?} (want '{MAGIC}')"
                )))
            }
        }
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.splitn(13, '\t').collect();
            if fields.len() != 13 {
                return Err(DbError::Corruption(format!(
                    "query store: expected 13 fields, got {}",
                    fields.len()
                )));
            }
            let num = |i: usize| -> Result<u64> {
                fields[i].parse::<u64>().map_err(|_| {
                    DbError::Corruption(format!(
                        "query store: bad numeric field {i}: '{}'",
                        fields[i]
                    ))
                })
            };
            let fingerprint = u64::from_str_radix(fields[0], 16).map_err(|_| {
                DbError::Corruption(format!("query store: bad fingerprint '{}'", fields[0]))
            })?;
            let executions = num(1)?;
            let mut e = QueryStoreEntry {
                fingerprint,
                text: unescape(fields[12]),
                executions,
                killed: num(2)?,
                timeouts: num(3)?,
                total_rows: num(4)?,
                total_elapsed_micros: num(5)?,
                hist: LatencyHistogram::from_csv(fields[11])?,
                spill_files: num(6)?,
                spill_bytes: num(7)?,
                wait_admission_micros: num(8)?,
                wait_spill_micros: num(9)?,
                peak_mem_bytes: num(10)?,
                persisted_executions: executions,
            };
            if e.executions < e.killed + e.timeouts || e.hist.count() != e.executions {
                return Err(DbError::Corruption(format!(
                    "query store: inconsistent counts for {:016x}",
                    e.fingerprint
                )));
            }
            e.persisted_executions = e.executions;
            entries.push(e);
        }
        *self.persisted.lock() = entries.clone();
        *self.entries.lock() = entries;
        Ok(())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(elapsed_micros: u64, disposition: Disposition) -> StoreOutcome {
        StoreOutcome {
            rows: 10,
            elapsed_micros,
            spill_files: 1,
            spill_bytes: 4096,
            wait_admission_micros: 7,
            wait_spill_micros: 3,
            peak_mem_bytes: 1 << 16,
            disposition,
        }
    }

    #[test]
    fn normalization_folds_literals_case_and_whitespace() {
        let a = normalize("SELECT * FROM runs  WHERE id = 7");
        let b = normalize("select *\nfrom RUNS where ID=9213");
        assert_eq!(a, b);
        assert_eq!(a, "SELECT*FROM RUNS WHERE ID=?");
        let c = normalize("INSERT INTO t VALUES (1, 'a''b', 2.5)");
        assert_eq!(c, "INSERT INTO T VALUES(?,?,?)");
    }

    #[test]
    fn fingerprint_stable_under_literal_changes_but_not_structure() {
        let (f1, _) = fingerprint("SELECT v FROM t WHERE id = 1");
        let (f2, _) = fingerprint("SELECT v FROM t WHERE id = 999");
        let (f3, _) = fingerprint("SELECT v FROM t WHERE id = 'x'");
        let (f4, _) = fingerprint("SELECT grp FROM t WHERE id = 1");
        assert_eq!(f1, f2);
        assert_eq!(f1, f3, "numeric and string literals both fold to ?");
        assert_ne!(f1, f4);
    }

    #[test]
    fn histogram_percentiles_hit_bucket_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_micros(100); // bucket 6 (64..=127)
        }
        h.record_micros(1_000_000); // bucket 19
        assert_eq!(h.percentile_micros(50), 127);
        assert_eq!(h.percentile_micros(99), 127);
        assert_eq!(h.percentile_micros(100), (1u64 << 20) - 1);
        assert_eq!(LatencyHistogram::default().percentile_micros(50), 0);
    }

    #[test]
    fn store_aggregates_by_fingerprint_and_tracks_dispositions() {
        let s = QueryStore::new(16);
        s.record(
            "SELECT v FROM t WHERE id = 1",
            &outcome(50, Disposition::Completed),
        );
        s.record(
            "SELECT v FROM t WHERE id = 2",
            &outcome(70, Disposition::Killed),
        );
        s.record(
            "SELECT v FROM t WHERE id = 3",
            &outcome(90, Disposition::Timeout),
        );
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        let e = &snap[0];
        assert_eq!(e.executions, 3);
        assert_eq!(e.killed, 1);
        assert_eq!(e.timeouts, 1);
        assert_eq!(e.total_rows, 30);
        assert_eq!(e.spill_files, 3);
        assert_eq!(e.wait_admission_micros, 21);
        assert_eq!(e.hist.count(), 3);
        assert_eq!(e.persisted_executions, 0);
    }

    #[test]
    fn store_evicts_coldest_fingerprint_at_capacity() {
        let s = QueryStore::new(2);
        s.record("SELECT a FROM t", &outcome(1, Disposition::Completed));
        s.record("SELECT a FROM t", &outcome(1, Disposition::Completed));
        s.record("SELECT b FROM t", &outcome(1, Disposition::Completed));
        s.record("SELECT c FROM t", &outcome(1, Disposition::Completed));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|e| e.text.contains('A')));
        assert!(snap.iter().any(|e| e.text.contains('C')));
    }

    #[test]
    fn serialize_load_round_trips() {
        let s = QueryStore::new(16);
        s.record(
            "SELECT v FROM t WHERE name = 'x\ty\nz'",
            &outcome(123, Disposition::Completed),
        );
        s.record("SELECT 1", &outcome(456, Disposition::Killed));
        let data = s.serialize();
        assert!(data.starts_with(MAGIC));
        assert_eq!(
            s.persisted_snapshot().len(),
            2,
            "serialize freezes the view"
        );

        let t = QueryStore::new(16);
        t.load(&data).unwrap();
        let a = s.snapshot();
        let b = t.snapshot();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.text, y.text);
            assert_eq!(x.executions, y.executions);
            assert_eq!(x.killed, y.killed);
            assert_eq!(x.hist, y.hist);
            assert_eq!(y.persisted_executions, y.executions, "loaded == persisted");
        }
        // Round-trip again: serialize(load(x)) == x.
        assert_eq!(t.serialize(), data);
    }

    #[test]
    fn load_rejects_garbage() {
        let s = QueryStore::new(4);
        assert!(matches!(s.load("nope"), Err(DbError::Corruption(_))));
        assert!(matches!(
            s.load(&format!("{MAGIC}\nnot-enough-fields\n")),
            Err(DbError::Corruption(_))
        ));
    }
}

//! Filter, projection and limit operators, with native batch paths:
//! the filter narrows a batch's selection vector in place (dropped rows
//! are never moved or copied), the projection rewrites batches with
//! recycled value buffers (no per-row allocation, no `Value` clones for
//! single-use columns), and the limit truncates a batch's selection.

use std::sync::Arc;

use seqdb_types::{Result, Row, Schema, Value};

use crate::exec::{BoxedIter, RowBatch, RowIterator};
use crate::expr::{eval_project_into, take_plan, Expr, IntCmpKernel};

/// WHERE: passes rows whose predicate evaluates to TRUE (NULL = drop).
pub struct FilterIter {
    input: BoxedIter,
    predicate: Expr,
    /// Specialized form of `predicate` for the batch path, when it has a
    /// kernel-eligible shape.
    kernel: Option<IntCmpKernel>,
}

impl FilterIter {
    pub fn new(input: BoxedIter, predicate: Expr) -> Self {
        FilterIter {
            input,
            kernel: IntCmpKernel::compile(&predicate),
            predicate,
        }
    }
}

impl RowIterator for FilterIter {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if self.predicate.eval_predicate(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Native batch path: evaluate the predicate into the batch's
    /// selection vector. Rows that fail stay where they are, unselected;
    /// whoever materializes the batch later skips them for free.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        loop {
            let Some(mut batch) = self.input.next_batch(max_rows)? else {
                return Ok(None);
            };
            let pred = &self.predicate;
            match &self.kernel {
                Some(k) => batch.narrow(|row| match k.eval(row) {
                    Some(pass) => Ok(pass),
                    None => pred.eval_predicate(row),
                })?,
                None => batch.narrow(|row| pred.eval_predicate(row))?,
            }
            // A fully-filtered batch is not end-of-stream: pull the next
            // one rather than returning an empty batch.
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }
}

/// SELECT list: computes one expression per output column.
pub struct ProjectIter {
    input: BoxedIter,
    exprs: Vec<Expr>,
    /// Projection entries allowed to move their value out of the input
    /// row instead of cloning (see [`take_plan`]).
    take: Vec<bool>,
    /// Recycled value buffer: each projected row swaps its freshly built
    /// values out of here and donates its input row's storage back, so
    /// the steady-state batch path allocates nothing per row.
    scratch: Vec<Value>,
}

impl ProjectIter {
    pub fn new(input: BoxedIter, exprs: Vec<Expr>) -> Self {
        let take = take_plan(&exprs);
        ProjectIter {
            input,
            exprs,
            take,
            scratch: Vec::new(),
        }
    }

    /// Project one row, recycling buffers: the output row takes the
    /// scratch buffer, the input row's storage becomes the next scratch.
    fn project_one(&mut self, row: &mut Row) -> Result<Row> {
        eval_project_into(&self.exprs, &self.take, row, &mut self.scratch)?;
        let recycled = std::mem::take(&mut row.0);
        let vals = std::mem::replace(&mut self.scratch, recycled);
        self.scratch.clear();
        Ok(Row::new(vals))
    }
}

impl RowIterator for ProjectIter {
    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let vals = self
                    .exprs
                    .iter()
                    .map(|e| e.eval(&row))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Row::new(vals)))
            }
        }
    }

    /// Native batch path: evaluate the projection over every *selected*
    /// row (rows a filter dropped upstream are skipped without ever
    /// being touched) and compact the result into a fresh batch.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        let Some(mut batch) = self.input.next_batch(max_rows)? else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(batch.len());
        let (rows, sel) = batch.parts_mut();
        match sel {
            Some(sel) => {
                // The selection is copied out so `rows` can be borrowed
                // mutably; it is small (u32 per live row) and this is the
                // point where the selection is consumed anyway.
                let sel: Vec<u32> = sel.to_vec();
                for i in sel {
                    out.push(self.project_one(&mut rows[i as usize])?);
                }
            }
            None => {
                for row in rows.iter_mut() {
                    out.push(self.project_one(row)?);
                }
            }
        }
        Ok(Some(RowBatch::from_rows(out)))
    }
}

/// TOP n: stops the pull after n rows (non-blocking).
pub struct LimitIter {
    input: BoxedIter,
    remaining: u64,
}

impl LimitIter {
    pub fn new(input: BoxedIter, limit: u64) -> Self {
        LimitIter {
            input,
            remaining: limit,
        }
    }
}

impl RowIterator for LimitIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            None => {
                self.remaining = 0;
                Ok(None)
            }
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
        }
    }

    /// Native batch path: ask the child for no more rows than remain,
    /// then truncate the batch's selection to the limit.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let want = usize::try_from(self.remaining)
            .unwrap_or(usize::MAX)
            .min(max_rows.max(1));
        match self.input.next_batch(want)? {
            None => {
                self.remaining = 0;
                Ok(None)
            }
            Some(mut batch) => {
                let keep = (batch.len() as u64).min(self.remaining);
                batch.truncate(keep as usize);
                self.remaining -= keep;
                Ok(Some(batch))
            }
        }
    }
}

/// Compute the output schema of a projection, inferring names from
/// column references and falling back to `exprN`.
pub fn project_schema(input: &Schema, exprs: &[Expr], aliases: &[Option<String>]) -> Arc<Schema> {
    use seqdb_types::{Column, DataType};
    let cols = exprs
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let name = aliases
                .get(i)
                .and_then(|a| a.clone())
                .unwrap_or_else(|| match e {
                    Expr::Column { index, .. } => input.column(*index).name.clone(),
                    other => format!("{other}"),
                });
            let dtype = infer_type(input, e).unwrap_or(DataType::Text);
            Column::new(name, dtype)
        })
        .collect();
    Arc::new(Schema::new(cols))
}

/// Best-effort static type inference for projection schemas.
fn infer_type(input: &Schema, e: &Expr) -> Option<seqdb_types::DataType> {
    use crate::expr::BinOp;
    use seqdb_types::DataType;
    match e {
        Expr::Column { index, .. } => Some(input.column(*index).dtype),
        Expr::Literal(v) => v.data_type(),
        Expr::Binary { op, left, right } => match op {
            BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::LtEq
            | BinOp::Gt
            | BinOp::GtEq
            | BinOp::And
            | BinOp::Or => Some(DataType::Bool),
            _ => {
                let l = infer_type(input, left)?;
                let r = infer_type(input, right)?;
                if l == DataType::Text || r == DataType::Text {
                    Some(DataType::Text)
                } else if l == DataType::Float || r == DataType::Float {
                    Some(DataType::Float)
                } else {
                    Some(DataType::Int)
                }
            }
        },
        Expr::Not(_) | Expr::IsNull { .. } => Some(DataType::Bool),
        Expr::Neg(inner) => infer_type(input, inner),
        Expr::Func { udf, .. } => match udf.name() {
            "CHARINDEX" | "LEN" | "DATALENGTH" | "TO_INT" => Some(DataType::Int),
            "ROUND" | "TO_FLOAT" => Some(DataType::Float),
            "NEWID" => Some(DataType::Guid),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::int_rows;
    use crate::exec::{collect, ValuesIter};
    use crate::expr::BinOp;
    use seqdb_types::Value;

    #[test]
    fn filter_and_project_compose() {
        let rows = int_rows(&[&[1, 10], &[2, 20], &[3, 30], &[4, 40]]);
        let scan = Box::new(ValuesIter::new(rows));
        let filt = Box::new(FilterIter::new(
            scan,
            Expr::binary(BinOp::Gt, Expr::col(1, "v"), Expr::lit(15)),
        ));
        let proj = Box::new(ProjectIter::new(
            filt,
            vec![Expr::binary(BinOp::Mul, Expr::col(0, "k"), Expr::lit(100))],
        ));
        let out = collect(proj).unwrap();
        assert_eq!(
            out.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::Int(200), Value::Int(300), Value::Int(400)]
        );
    }

    #[test]
    fn limit_stops_early() {
        let rows = int_rows(&[&[1], &[2], &[3]]);
        let it = Box::new(LimitIter::new(Box::new(ValuesIter::new(rows)), 2));
        assert_eq!(collect(it).unwrap().len(), 2);
        let it = Box::new(LimitIter::new(
            Box::new(ValuesIter::new(int_rows(&[&[1]]))),
            5,
        ));
        assert_eq!(collect(it).unwrap().len(), 1);
    }

    #[test]
    fn project_schema_names_and_types() {
        use seqdb_types::{Column, DataType};
        let input = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("seq", DataType::Text),
        ]);
        let exprs = vec![
            Expr::col(1, "seq"),
            Expr::binary(BinOp::Add, Expr::col(0, "id"), Expr::lit(1)),
        ];
        let s = project_schema(&input, &exprs, &[None, Some("next_id".into())]);
        assert_eq!(s.column(0).name, "seq");
        assert_eq!(s.column(0).dtype, DataType::Text);
        assert_eq!(s.column(1).name, "next_id");
        assert_eq!(s.column(1).dtype, DataType::Int);
    }
}

//! Row-at-a-time filter, projection and limit operators.

use std::sync::Arc;

use seqdb_types::{Result, Row, Schema};

use crate::exec::{BoxedIter, RowIterator};
use crate::expr::Expr;

/// WHERE: passes rows whose predicate evaluates to TRUE (NULL = drop).
pub struct FilterIter {
    input: BoxedIter,
    predicate: Expr,
}

impl FilterIter {
    pub fn new(input: BoxedIter, predicate: Expr) -> Self {
        FilterIter { input, predicate }
    }
}

impl RowIterator for FilterIter {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if self.predicate.eval_predicate(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// SELECT list: computes one expression per output column.
pub struct ProjectIter {
    input: BoxedIter,
    exprs: Vec<Expr>,
}

impl ProjectIter {
    pub fn new(input: BoxedIter, exprs: Vec<Expr>) -> Self {
        ProjectIter { input, exprs }
    }
}

impl RowIterator for ProjectIter {
    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let vals = self
                    .exprs
                    .iter()
                    .map(|e| e.eval(&row))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Row::new(vals)))
            }
        }
    }
}

/// TOP n: stops the pull after n rows (non-blocking).
pub struct LimitIter {
    input: BoxedIter,
    remaining: u64,
}

impl LimitIter {
    pub fn new(input: BoxedIter, limit: u64) -> Self {
        LimitIter {
            input,
            remaining: limit,
        }
    }
}

impl RowIterator for LimitIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            None => {
                self.remaining = 0;
                Ok(None)
            }
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
        }
    }
}

/// Compute the output schema of a projection, inferring names from
/// column references and falling back to `exprN`.
pub fn project_schema(input: &Schema, exprs: &[Expr], aliases: &[Option<String>]) -> Arc<Schema> {
    use seqdb_types::{Column, DataType};
    let cols = exprs
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let name = aliases
                .get(i)
                .and_then(|a| a.clone())
                .unwrap_or_else(|| match e {
                    Expr::Column { index, .. } => input.column(*index).name.clone(),
                    other => format!("{other}"),
                });
            let dtype = infer_type(input, e).unwrap_or(DataType::Text);
            Column::new(name, dtype)
        })
        .collect();
    Arc::new(Schema::new(cols))
}

/// Best-effort static type inference for projection schemas.
fn infer_type(input: &Schema, e: &Expr) -> Option<seqdb_types::DataType> {
    use crate::expr::BinOp;
    use seqdb_types::DataType;
    match e {
        Expr::Column { index, .. } => Some(input.column(*index).dtype),
        Expr::Literal(v) => v.data_type(),
        Expr::Binary { op, left, right } => match op {
            BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::LtEq
            | BinOp::Gt
            | BinOp::GtEq
            | BinOp::And
            | BinOp::Or => Some(DataType::Bool),
            _ => {
                let l = infer_type(input, left)?;
                let r = infer_type(input, right)?;
                if l == DataType::Text || r == DataType::Text {
                    Some(DataType::Text)
                } else if l == DataType::Float || r == DataType::Float {
                    Some(DataType::Float)
                } else {
                    Some(DataType::Int)
                }
            }
        },
        Expr::Not(_) | Expr::IsNull { .. } => Some(DataType::Bool),
        Expr::Neg(inner) => infer_type(input, inner),
        Expr::Func { udf, .. } => match udf.name() {
            "CHARINDEX" | "LEN" | "DATALENGTH" | "TO_INT" => Some(DataType::Int),
            "ROUND" | "TO_FLOAT" => Some(DataType::Float),
            "NEWID" => Some(DataType::Guid),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::int_rows;
    use crate::exec::{collect, ValuesIter};
    use crate::expr::BinOp;
    use seqdb_types::Value;

    #[test]
    fn filter_and_project_compose() {
        let rows = int_rows(&[&[1, 10], &[2, 20], &[3, 30], &[4, 40]]);
        let scan = Box::new(ValuesIter::new(rows));
        let filt = Box::new(FilterIter::new(
            scan,
            Expr::binary(BinOp::Gt, Expr::col(1, "v"), Expr::lit(15)),
        ));
        let proj = Box::new(ProjectIter::new(
            filt,
            vec![Expr::binary(BinOp::Mul, Expr::col(0, "k"), Expr::lit(100))],
        ));
        let out = collect(proj).unwrap();
        assert_eq!(
            out.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::Int(200), Value::Int(300), Value::Int(400)]
        );
    }

    #[test]
    fn limit_stops_early() {
        let rows = int_rows(&[&[1], &[2], &[3]]);
        let it = Box::new(LimitIter::new(Box::new(ValuesIter::new(rows)), 2));
        assert_eq!(collect(it).unwrap().len(), 2);
        let it = Box::new(LimitIter::new(
            Box::new(ValuesIter::new(int_rows(&[&[1]]))),
            5,
        ));
        assert_eq!(collect(it).unwrap().len(), 1);
    }

    #[test]
    fn project_schema_names_and_types() {
        use seqdb_types::{Column, DataType};
        let input = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("seq", DataType::Text),
        ]);
        let exprs = vec![
            Expr::col(1, "seq"),
            Expr::binary(BinOp::Add, Expr::col(0, "id"), Expr::lit(1)),
        ];
        let s = project_schema(&input, &exprs, &[None, Some("next_id".into())]);
        assert_eq!(s.column(0).name, "seq");
        assert_eq!(s.column(0).dtype, DataType::Text);
        assert_eq!(s.column(1).name, "next_id");
        assert_eq!(s.column(1).dtype, DataType::Int);
    }
}

//! Sorting: external merge sort with spill accounting, plus Top-N.
//!
//! The sort operator is blocking; when its input exceeds the memory
//! budget it sorts and spills runs to the [`TempSpace`] and k-way merges
//! them. Spilled bytes are globally accounted, which is how the consensus
//! experiment (§5.3.3) quantifies the "huge intermediate result on the
//! temporary tablespace" of the pivot-based plan.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use seqdb_storage::tempspace::SpillReader;
use seqdb_types::{Result, Row, Value};

use crate::exec::rowser;
use crate::exec::{BoxedIter, ExecContext, RowIterator};
use crate::expr::Expr;
use crate::governor::MemCharge;

/// One ORDER BY key: an expression and a direction.
#[derive(Clone, Debug)]
pub struct SortKey {
    pub expr: Expr,
    pub desc: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> SortKey {
        SortKey { expr, desc: false }
    }
    pub fn desc(expr: Expr) -> SortKey {
        SortKey { expr, desc: true }
    }
}

/// Compare two evaluated key vectors under the key directions.
pub fn compare_keys(keys: &[SortKey], a: &[Value], b: &[Value]) -> Ordering {
    for (k, (va, vb)) in keys.iter().zip(a.iter().zip(b.iter())) {
        let ord = va.total_cmp(vb);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn eval_keys(keys: &[SortKey], row: &Row) -> Result<Vec<Value>> {
    keys.iter().map(|k| k.expr.eval(row)).collect()
}

/// Blocking external sort.
pub struct SortIter {
    state: SortState,
}

enum SortState {
    /// Not yet executed.
    Pending {
        input: BoxedIter,
        keys: Vec<SortKey>,
        ctx: ExecContext,
    },
    /// Everything fit in memory; the charge covers the buffered rows and
    /// releases when the sort is dropped or exhausted.
    InMemory(std::vec::IntoIter<Row>, MemCharge),
    /// Merging spilled runs.
    Merging(MergeRuns),
    Done,
}

impl SortIter {
    pub fn new(input: BoxedIter, keys: Vec<SortKey>, ctx: ExecContext) -> SortIter {
        SortIter {
            state: SortState::Pending { input, keys, ctx },
        }
    }

    fn execute(input: &mut BoxedIter, keys: &[SortKey], ctx: &ExecContext) -> Result<SortState> {
        let mut runs: Vec<SpillReader> = Vec::new();
        let mut buffer: Vec<(Vec<Value>, Row)> = Vec::new();
        let mut buffered_bytes = 0usize;
        let mut charge = MemCharge::new(ctx.gov.clone());

        while let Some(row) = input.next()? {
            let sz = row.size_bytes();
            buffered_bytes += sz;
            // Buffered bytes count against the query's budget; when the
            // governor declines, degrade by spilling this buffer instead
            // of failing — the sort's graceful degradation path.
            let over_budget = !charge.try_grow(sz) || buffered_bytes > ctx.sort_budget;
            let kv = eval_keys(keys, &row)?;
            buffer.push((kv, row));
            if over_budget {
                runs.push(spill_run(ctx, keys, &mut buffer)?);
                buffered_bytes = 0;
                charge.release_all();
            }
        }

        if runs.is_empty() {
            buffer.sort_by(|a, b| compare_keys(keys, &a.0, &b.0));
            let rows: Vec<Row> = buffer.into_iter().map(|(_, r)| r).collect();
            return Ok(SortState::InMemory(rows.into_iter(), charge));
        }
        if !buffer.is_empty() {
            runs.push(spill_run(ctx, keys, &mut buffer)?);
            charge.release_all();
        }
        MergeRuns::new(runs, keys.to_vec()).map(SortState::Merging)
    }
}

fn spill_run(
    ctx: &ExecContext,
    keys: &[SortKey],
    buffer: &mut Vec<(Vec<Value>, Row)>,
) -> Result<SpillReader> {
    buffer.sort_by(|a, b| compare_keys(keys, &a.0, &b.0));
    let mut writer = ctx.create_spill()?;
    let mut scratch = Vec::new();
    for (kv, row) in buffer.drain(..) {
        rowser::begin_frame(&mut scratch);
        rowser::write_values(&mut scratch, &kv);
        rowser::write_row(&mut scratch, &row);
        rowser::finish_frame(&mut scratch);
        writer.write_all(&scratch)?;
    }
    writer.finish()
}

/// K-way merge over spilled runs using a tournament heap.
struct MergeRuns {
    keys: Vec<SortKey>,
    runs: Vec<SpillReader>,
    heap: BinaryHeap<HeapEntry>,
}

struct HeapEntry {
    /// Reversed ordering lives in the `Ord` impl (BinaryHeap is a
    /// max-heap; we need the minimum key on top).
    key: Vec<Value>,
    row: Row,
    run: usize,
    /// Shared view of the sort directions for the Ord impl.
    desc: std::sync::Arc<Vec<bool>>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest (per directions) on top of the max-heap.
        let mut ord = Ordering::Equal;
        for (i, (a, b)) in self.key.iter().zip(other.key.iter()).enumerate() {
            let o = a.total_cmp(b);
            let o = if self.desc.get(i).copied().unwrap_or(false) {
                o.reverse()
            } else {
                o
            };
            if o != Ordering::Equal {
                ord = o;
                break;
            }
        }
        ord.reverse()
    }
}

impl MergeRuns {
    fn new(mut runs: Vec<SpillReader>, keys: Vec<SortKey>) -> Result<MergeRuns> {
        let desc = std::sync::Arc::new(keys.iter().map(|k| k.desc).collect::<Vec<_>>());
        let mut heap = BinaryHeap::new();
        for (i, run) in runs.iter_mut().enumerate() {
            if let Some((key, row)) = read_entry(run)? {
                heap.push(HeapEntry {
                    key,
                    row,
                    run: i,
                    desc: desc.clone(),
                });
            }
        }
        Ok(MergeRuns { keys, runs, heap })
    }

    fn next_row(&mut self) -> Result<Option<Row>> {
        let Some(top) = self.heap.pop() else {
            return Ok(None);
        };
        let run = top.run;
        let desc = top.desc.clone();
        if let Some((key, row)) = read_entry(&mut self.runs[run])? {
            self.heap.push(HeapEntry {
                key,
                row,
                run,
                desc,
            });
        }
        let _ = &self.keys; // directions are carried in the heap entries
        Ok(Some(top.row))
    }
}

fn read_entry(run: &mut SpillReader) -> Result<Option<(Vec<Value>, Row)>> {
    let mut lenbuf = [0u8; 4];
    if !run.read_exact(&mut lenbuf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(lenbuf) as usize;
    let mut payload = vec![0u8; len];
    if !run.read_exact(&mut payload)? {
        return Err(seqdb_types::DbError::Storage("truncated sort spill".into()));
    }
    let mut pos = 0;
    let key = rowser::read_row(&payload, &mut pos)?.into_values();
    let row = rowser::read_row(&payload, &mut pos)?;
    Ok(Some((key, row)))
}

impl RowIterator for SortIter {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            match &mut self.state {
                SortState::Pending { .. } => {
                    let SortState::Pending {
                        mut input,
                        keys,
                        ctx,
                    } = std::mem::replace(&mut self.state, SortState::Done)
                    else {
                        unreachable!()
                    };
                    self.state = Self::execute(&mut input, &keys, &ctx)?;
                }
                SortState::InMemory(rows, _charge) => return Ok(rows.next()),
                SortState::Merging(m) => return m.next_row(),
                SortState::Done => return Ok(None),
            }
        }
    }
}

/// TOP n ... ORDER BY: keeps only the best n rows in a bounded heap —
/// never spills regardless of input size.
pub struct TopNIter {
    input: Option<BoxedIter>,
    keys: Vec<SortKey>,
    n: usize,
    output: std::vec::IntoIter<Row>,
}

impl TopNIter {
    pub fn new(input: BoxedIter, keys: Vec<SortKey>, n: usize) -> TopNIter {
        TopNIter {
            input: Some(input),
            keys,
            n,
            output: Vec::new().into_iter(),
        }
    }
}

impl RowIterator for TopNIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            let mut best: Vec<(Vec<Value>, Row)> = Vec::with_capacity(self.n + 1);
            while let Some(row) = input.next()? {
                let kv = eval_keys(&self.keys, &row)?;
                // Insertion sort into the bounded buffer; fine for the
                // small n of TOP queries.
                let pos = best.partition_point(|(k, _)| {
                    compare_keys(&self.keys, k, &kv) != Ordering::Greater
                });
                if pos < self.n {
                    best.insert(pos, (kv, row));
                    best.truncate(self.n);
                }
            }
            self.output = best
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Vec<_>>()
                .into_iter();
        }
        Ok(self.output.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::{int_rows, test_context};
    use crate::exec::{collect, ValuesIter};

    fn shuffled(n: i64) -> Vec<Row> {
        let mut rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int(i), Value::text(format!("v{i}"))]))
            .collect();
        let mut state = 99u64;
        for i in (1..rows.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            rows.swap(i, (state >> 33) as usize % (i + 1));
        }
        rows
    }

    #[test]
    fn in_memory_sort_asc_desc() {
        let ctx = test_context();
        let rows = shuffled(100);
        let it = SortIter::new(
            Box::new(ValuesIter::new(rows.clone())),
            vec![SortKey::asc(Expr::col(0, "id"))],
            ctx.clone(),
        );
        let sorted = collect(Box::new(it)).unwrap();
        assert_eq!(sorted[0][0], Value::Int(0));
        assert_eq!(sorted[99][0], Value::Int(99));

        let it = SortIter::new(
            Box::new(ValuesIter::new(rows)),
            vec![SortKey::desc(Expr::col(0, "id"))],
            ctx,
        );
        let sorted = collect(Box::new(it)).unwrap();
        assert_eq!(sorted[0][0], Value::Int(99));
    }

    #[test]
    fn external_sort_spills_and_merges_correctly() {
        let mut ctx = test_context();
        ctx.sort_budget = 4096; // force spilling
        ctx.temp.reset_counters();
        let rows = shuffled(5000);
        let it = SortIter::new(
            Box::new(ValuesIter::new(rows)),
            vec![SortKey::asc(Expr::col(0, "id"))],
            ctx.clone(),
        );
        let sorted = collect(Box::new(it)).unwrap();
        assert_eq!(sorted.len(), 5000);
        for (i, r) in sorted.iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
        assert!(ctx.temp.spill_count() > 1, "sort must have spilled runs");
        assert!(ctx.temp.bytes_written() > 0);
    }

    #[test]
    fn governor_budget_degrades_sort_to_spill() {
        use crate::governor::QueryGovernor;
        // The configured sort_budget is huge, but the per-query governor
        // budget is tiny: the sort must degrade by spilling rather than
        // fail with ResourceExhausted.
        let mut ctx = test_context();
        ctx.gov = QueryGovernor::new(None, Some(4096));
        ctx.temp.reset_counters();
        let rows = shuffled(5000);
        let it = SortIter::new(
            Box::new(ValuesIter::new(rows)),
            vec![SortKey::asc(Expr::col(0, "id"))],
            ctx.clone(),
        );
        let sorted = collect(Box::new(it)).unwrap();
        assert_eq!(sorted.len(), 5000);
        for (i, r) in sorted.iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
        assert!(ctx.temp.spill_count() > 1, "sort must have spilled runs");
        assert_eq!(ctx.gov.mem_used(), 0, "all sort charges released");
    }

    #[test]
    fn multi_key_sort_with_mixed_directions() {
        let ctx = test_context();
        let rows = int_rows(&[&[1, 9], &[0, 5], &[1, 3], &[0, 7]]);
        let it = SortIter::new(
            Box::new(ValuesIter::new(rows)),
            vec![
                SortKey::asc(Expr::col(0, "g")),
                SortKey::desc(Expr::col(1, "v")),
            ],
            ctx,
        );
        let sorted = collect(Box::new(it)).unwrap();
        let flat: Vec<(i64, i64)> = sorted
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(flat, vec![(0, 7), (0, 5), (1, 9), (1, 3)]);
    }

    #[test]
    fn topn_matches_full_sort() {
        let rows = shuffled(1000);
        let it = TopNIter::new(
            Box::new(ValuesIter::new(rows)),
            vec![SortKey::desc(Expr::col(0, "id"))],
            5,
        );
        let top = collect(Box::new(it)).unwrap();
        let ids: Vec<i64> = top.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![999, 998, 997, 996, 995]);
    }

    #[test]
    fn empty_input() {
        let ctx = test_context();
        let it = SortIter::new(
            Box::new(ValuesIter::new(vec![])),
            vec![SortKey::asc(Expr::col(0, "x"))],
            ctx,
        );
        assert!(collect(Box::new(it)).unwrap().is_empty());
    }
}

//! Table-valued function execution: `FROM tvf(args)` scans and
//! `CROSS APPLY tvf(expr, ...)` (paper §4.1 and Query 3).
//!
//! The engine drives TVFs exactly like SQL Server drives CLR TVFs
//! (Figure 5): a `move_next()` to advance the function's internal cursor,
//! then a `fill_row()` that converts the current record into SQL values.

use std::sync::Arc;

use seqdb_types::{DbError, Result, Row, Value};

use crate::exec::{BoxedIter, ExecContext, RowIterator};
use crate::expr::Expr;
use crate::udx::{protect, TableFunction, TvfCursor};

/// `FROM tvf(constant args)`: a leaf scan over a table function.
pub struct TvfScanIter {
    cursor: Box<dyn TvfCursor>,
    name: String,
    /// Expected output arity, validated per row: a UDF that returns the
    /// wrong shape should fail loudly, not corrupt downstream operators.
    arity: usize,
}

impl TvfScanIter {
    pub fn open(tvf: &Arc<dyn TableFunction>, args: &[Value], ctx: &ExecContext) -> Result<Self> {
        Ok(TvfScanIter {
            cursor: protect(tvf.name(), || tvf.open(args, ctx))?,
            name: tvf.name().to_string(),
            arity: tvf.schema().len(),
        })
    }
}

impl RowIterator for TvfScanIter {
    fn next(&mut self) -> Result<Option<Row>> {
        // Both cursor entry points run user code; a panic in either fails
        // only this query (DbError::UdxPanic).
        if !protect(&self.name, || self.cursor.move_next())? {
            return Ok(None);
        }
        let row = protect(&self.name, || self.cursor.fill_row())?;
        if row.len() != self.arity {
            return Err(DbError::Execution(format!(
                "table function produced {} columns, declared {}",
                row.len(),
                self.arity
            )));
        }
        Ok(Some(row))
    }
}

/// `input CROSS APPLY tvf(arg_exprs...)`: for each outer row, open the
/// TVF with arguments computed from that row and emit `outer ++ tvf_row`.
pub struct CrossApplyIter {
    input: BoxedIter,
    tvf: Arc<dyn TableFunction>,
    arg_exprs: Vec<Expr>,
    ctx: ExecContext,
    current_outer: Option<Row>,
    current_cursor: Option<Box<dyn TvfCursor>>,
    arity: usize,
}

impl CrossApplyIter {
    pub fn new(
        input: BoxedIter,
        tvf: Arc<dyn TableFunction>,
        arg_exprs: Vec<Expr>,
        ctx: ExecContext,
    ) -> CrossApplyIter {
        let arity = tvf.schema().len();
        CrossApplyIter {
            input,
            tvf,
            arg_exprs,
            ctx,
            current_outer: None,
            current_cursor: None,
            arity,
        }
    }
}

impl RowIterator for CrossApplyIter {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(cursor) = &mut self.current_cursor {
                let name = self.tvf.name();
                if protect(name, || cursor.move_next())? {
                    let inner = protect(name, || cursor.fill_row())?;
                    if inner.len() != self.arity {
                        return Err(DbError::Execution(format!(
                            "table function produced {} columns, declared {}",
                            inner.len(),
                            self.arity
                        )));
                    }
                    let outer = self.current_outer.as_ref().expect("outer row set");
                    return Ok(Some(outer.concat(&inner)));
                }
                self.current_cursor = None;
                self.current_outer = None;
            }
            match self.input.next()? {
                None => return Ok(None),
                Some(outer) => {
                    let args: Vec<Value> = self
                        .arg_exprs
                        .iter()
                        .map(|e| e.eval(&outer))
                        .collect::<Result<_>>()?;
                    let tvf = &self.tvf;
                    self.current_cursor = Some(protect(tvf.name(), || tvf.open(&args, &self.ctx))?);
                    self.current_outer = Some(outer);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::{int_rows, test_context};
    use crate::exec::{collect, ValuesIter};
    use seqdb_types::{Column, DataType, Schema};

    /// Test TVF: numbers(n) emits 0..n as single-column rows.
    struct Numbers;

    struct NumbersCursor {
        next: i64,
        limit: i64,
        current: Option<i64>,
    }

    impl TvfCursor for NumbersCursor {
        fn move_next(&mut self) -> Result<bool> {
            if self.next < self.limit {
                self.current = Some(self.next);
                self.next += 1;
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn fill_row(&mut self) -> Result<Row> {
            Ok(Row::new(vec![Value::Int(
                self.current.expect("move_next first"),
            )]))
        }
    }

    impl TableFunction for Numbers {
        fn name(&self) -> &str {
            "NUMBERS"
        }
        fn schema(&self) -> Arc<Schema> {
            Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
        }
        fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
            let limit = args
                .first()
                .ok_or_else(|| DbError::Execution("NUMBERS(n) needs one argument".into()))?
                .as_int()?;
            Ok(Box::new(NumbersCursor {
                next: 0,
                limit,
                current: None,
            }))
        }
    }

    #[test]
    fn tvf_scan_streams_rows() {
        let ctx = test_context();
        let tvf: Arc<dyn TableFunction> = Arc::new(Numbers);
        let it = TvfScanIter::open(&tvf, &[Value::Int(4)], &ctx).unwrap();
        let rows = collect(Box::new(it)).unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn cross_apply_reopens_per_outer_row() {
        let ctx = test_context();
        let tvf: Arc<dyn TableFunction> = Arc::new(Numbers);
        let outer = int_rows(&[&[2], &[0], &[3]]);
        let it = CrossApplyIter::new(
            Box::new(ValuesIter::new(outer)),
            tvf,
            vec![Expr::col(0, "n")],
            ctx,
        );
        let rows = collect(Box::new(it)).unwrap();
        // outer 2 -> (2,0),(2,1); outer 0 -> nothing; outer 3 -> (3,0),(3,1),(3,2)
        let pairs: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(2, 0), (2, 1), (3, 0), (3, 1), (3, 2)]);
    }

    #[test]
    fn bad_tvf_args_error() {
        let ctx = test_context();
        let tvf: Arc<dyn TableFunction> = Arc::new(Numbers);
        assert!(TvfScanIter::open(&tvf, &[], &ctx).is_err());
    }
}

//! Table access: heap scans (optionally over a page partition) and
//! ordered B+-tree index scans.

use std::ops::Bound;
use std::sync::Arc;

use seqdb_storage::page::PageId;
use seqdb_storage::rowfmt::{self, Compression};
use seqdb_types::{Result, Row, Value};

use crate::catalog::{Table, TableIndex};
use crate::exec::{RowBatch, RowIterator};
use crate::expr::{Expr, IntCmpKernel};

/// Sequential heap scan with an optional residual predicate and
/// projection pushed into the scan (the paper's parallel plans push both
/// below the exchange).
pub struct HeapScanIter {
    table: Arc<Table>,
    pages: std::vec::IntoIter<PageId>,
    current: std::vec::IntoIter<Row>,
    filter: Option<Expr>,
    /// Specialized form of `filter` for the batch path, when it has a
    /// kernel-eligible shape.
    kernel: Option<IntCmpKernel>,
    projection: Option<Vec<usize>>,
    /// Columns to actually decode (`None` = all): unmasked columns come
    /// back as `Value::Null` placeholders, so the caller must guarantee
    /// nothing downstream reads them (see [`Plan::open`]'s demand pass).
    decode_mask: Option<Vec<bool>>,
}

impl HeapScanIter {
    pub fn new(
        table: Arc<Table>,
        filter: Option<Expr>,
        projection: Option<Vec<usize>>,
        decode_mask: Option<Vec<bool>>,
    ) -> Self {
        let pages = table.heap.pages_snapshot();
        HeapScanIter {
            table,
            pages: pages.into_iter(),
            current: Vec::new().into_iter(),
            kernel: filter.as_ref().and_then(IntCmpKernel::compile),
            filter,
            projection,
            decode_mask,
        }
    }

    /// Scan only partition `part` of `nparts` (page-range partitioning).
    pub fn partitioned(
        table: Arc<Table>,
        filter: Option<Expr>,
        projection: Option<Vec<usize>>,
        decode_mask: Option<Vec<bool>>,
        part: usize,
        nparts: usize,
    ) -> Self {
        let all = table.heap.pages_snapshot();
        let pages: Vec<PageId> = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % nparts == part)
            .map(|(_, p)| p)
            .collect();
        HeapScanIter {
            table,
            pages: pages.into_iter(),
            current: Vec::new().into_iter(),
            kernel: filter.as_ref().and_then(IntCmpKernel::compile),
            filter,
            projection,
            decode_mask,
        }
    }
}

impl HeapScanIter {
    /// Decode the next page into `self.current`; `false` when the scan is
    /// out of pages. One call pins the page once and materializes every
    /// row on it — the unit of work the batch path amortizes over.
    fn next_page(&mut self) -> Result<bool> {
        let Some(pid) = self.pages.next() else {
            return Ok(false);
        };
        let mut rows = Vec::new();
        self.table
            .heap
            .page_rows_into_masked(pid, self.decode_mask.as_deref(), &mut rows)?;
        self.current = rows.into_iter();
        Ok(true)
    }
}

impl RowIterator for HeapScanIter {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.current.next() {
                if let Some(f) = &self.filter {
                    if !f.eval_predicate(&row)? {
                        continue;
                    }
                }
                let row = match &self.projection {
                    Some(p) => row.project(p),
                    None => row,
                };
                return Ok(Some(row));
            }
            if !self.next_page()? {
                return Ok(None);
            }
        }
    }

    /// Native batch path: each decoded page becomes one batch wholesale
    /// (`max_rows` is a hint; a page holds at most a few hundred rows).
    /// The pushed-down residual predicate narrows the *selection vector*
    /// instead of moving or dropping rows, so a filtered scan does no
    /// per-row copying at all — one page decode, one narrow, one return.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        let max = max_rows.max(1);
        // Drain rows a scalar next() call may have left mid-page first.
        let mut rows = Vec::new();
        while rows.len() < max {
            let Some(row) = self.current.next() else {
                break;
            };
            if let Some(f) = &self.filter {
                if !f.eval_predicate(&row)? {
                    continue;
                }
            }
            rows.push(match &self.projection {
                Some(p) => row.project(p),
                None => row,
            });
        }
        if !rows.is_empty() {
            return Ok(Some(RowBatch::from_rows(rows)));
        }
        loop {
            let Some(pid) = self.pages.next() else {
                return Ok(None);
            };
            let mut rows = Vec::new();
            self.table
                .heap
                .page_rows_into_masked(pid, self.decode_mask.as_deref(), &mut rows)?;
            let mut batch = RowBatch::from_rows(rows);
            if let Some(f) = &self.filter {
                match &self.kernel {
                    Some(k) => batch.narrow(|row| match k.eval(row) {
                        Some(pass) => Ok(pass),
                        None => f.eval_predicate(row),
                    })?,
                    None => batch.narrow(|row| f.eval_predicate(row))?,
                }
            }
            if let Some(p) = &self.projection {
                let mut out = Vec::with_capacity(batch.len());
                for row in batch.iter() {
                    out.push(row.project(p));
                }
                batch = RowBatch::from_rows(out);
            }
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }
}

/// Ordered scan of a B+-tree index, decoding full rows. Supports an
/// equality prefix (`key_prefix`) that narrows the scan to one key range.
pub struct IndexScanIter {
    iter: OwnedRange,
    schema: Arc<seqdb_types::Schema>,
    filter: Option<Expr>,
    projection: Option<Vec<usize>>,
}

/// The B+-tree range iterator materialized leaf-by-leaf; holding the
/// index `Arc` keeps the tree alive for the scan's lifetime.
struct OwnedRange {
    index: Arc<TableIndex>,
    buffer: std::vec::IntoIter<Vec<u8>>,
    done: bool,
    lower: Bound<Vec<u8>>,
    upper: Bound<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl OwnedRange {
    fn refill(&mut self) -> Result<()> {
        // Pull the next batch of entries from the tree. We re-open the
        // range from just after the last seen key; this keeps the borrow
        // on the tree short-lived and the iterator `Send`.
        const BATCH: usize = 1024;
        let start: Bound<&[u8]> = match &self.last_key {
            Some(k) => Bound::Excluded(k.as_slice()),
            None => match &self.lower {
                Bound::Included(k) => Bound::Included(k.as_slice()),
                Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
                Bound::Unbounded => Bound::Unbounded,
            },
        };
        let end: Bound<&[u8]> = match &self.upper {
            Bound::Included(k) => Bound::Included(k.as_slice()),
            Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut vals = Vec::with_capacity(BATCH);
        let mut last = None;
        for entry in self.index.btree.range(start, end)?.take(BATCH) {
            let (k, v) = entry?;
            last = Some(k);
            vals.push(v);
        }
        if vals.len() < BATCH {
            self.done = true;
        }
        if let Some(k) = last {
            self.last_key = Some(k);
        }
        self.buffer = vals.into_iter();
        Ok(())
    }
}

impl IndexScanIter {
    /// Scan rows whose index key starts with `prefix` (empty = full scan),
    /// in key order.
    pub fn new(
        table: &Arc<Table>,
        index: Arc<TableIndex>,
        prefix: &[Value],
        filter: Option<Expr>,
        projection: Option<Vec<usize>>,
    ) -> Self {
        let (lower, upper) = prefix_bounds(prefix);
        IndexScanIter {
            iter: OwnedRange {
                index,
                buffer: Vec::new().into_iter(),
                done: false,
                lower,
                upper,
                last_key: None,
            },
            schema: table.schema.clone(),
            filter,
            projection,
        }
    }
}

/// Key-range bounds covering every composite key beginning with `prefix`.
fn prefix_bounds(prefix: &[Value]) -> (Bound<Vec<u8>>, Bound<Vec<u8>>) {
    if prefix.is_empty() {
        return (Bound::Unbounded, Bound::Unbounded);
    }
    let lo = seqdb_storage::keycode::encode_key(prefix);
    // The upper bound is the prefix with a 0xFF sentinel appended: every
    // continuation of the prefix encoding sorts below it because keycode
    // type tags are all < 0xFF.
    let mut hi = lo.clone();
    hi.push(0xff);
    (Bound::Included(lo), Bound::Excluded(hi))
}

impl RowIterator for IndexScanIter {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            let Some(encoded) = self.iter.buffer.next() else {
                if self.iter.done {
                    return Ok(None);
                }
                self.iter.refill()?;
                if self.iter.buffer.len() == 0 && self.iter.done {
                    return Ok(None);
                }
                continue;
            };
            let row = rowfmt::decode_row(&self.schema, &encoded, Compression::Row, None)?;
            if let Some(f) = &self.filter {
                if !f.eval_predicate(&row)? {
                    continue;
                }
            }
            return Ok(Some(match &self.projection {
                Some(p) => row.project(p),
                None => row,
            }));
        }
    }

    /// Native batch path: decode a whole run of leaf entries per
    /// [`rowfmt::decode_rows_into`] call (`OwnedRange` pulls 1024 entries
    /// per tree visit), so one `next_batch` amortizes the tree re-open,
    /// the decode loop and the governor tick over the whole buffer.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        let max = max_rows.max(1);
        let mut rows = Vec::with_capacity(max.min(crate::exec::ExecContext::DEFAULT_BATCH_SIZE));
        let mut decoded = Vec::new();
        loop {
            let want = max - rows.len();
            decoded.clear();
            rowfmt::decode_rows_into(
                &self.schema,
                (&mut self.iter.buffer).take(want),
                Compression::Row,
                None,
                &mut decoded,
            )?;
            for row in decoded.drain(..) {
                if let Some(f) = &self.filter {
                    if !f.eval_predicate(&row)? {
                        continue;
                    }
                }
                rows.push(match &self.projection {
                    Some(p) => row.project(p),
                    None => row,
                });
            }
            if rows.len() >= max {
                break;
            }
            if self.iter.buffer.len() == 0 {
                if self.iter.done {
                    break;
                }
                self.iter.refill()?;
                if self.iter.buffer.len() == 0 && self.iter.done {
                    break;
                }
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch::from_rows(rows)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_context;
    use crate::exec::{collect, RowIterator};
    use crate::expr::{BinOp, Expr};
    use seqdb_types::{Column, DataType, Schema};

    fn setup() -> (crate::exec::ExecContext, Arc<Table>) {
        let ctx = test_context();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("grp", DataType::Int),
            Column::new("seq", DataType::Text),
        ]);
        let t = ctx
            .catalog
            .create_table("reads", schema, Compression::Row, Some(vec![0]))
            .unwrap();
        for i in 0..500i64 {
            t.insert(&Row::new(vec![
                Value::Int(i),
                Value::Int(i % 3),
                Value::text(format!("SEQ{i}")),
            ]))
            .unwrap();
        }
        (ctx, t)
    }

    #[test]
    fn full_scan_with_filter_and_projection() {
        let (_ctx, t) = setup();
        let filter = Expr::binary(BinOp::Eq, Expr::col(1, "grp"), Expr::lit(1));
        let it = HeapScanIter::new(t, Some(filter), Some(vec![2, 0]), None);
        let rows = collect(Box::new(it)).unwrap();
        assert_eq!(rows.len(), 167); // ids 1,4,...,499
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[0][0], Value::text("SEQ1"));
        assert_eq!(rows[0][1], Value::Int(1));
    }

    #[test]
    fn partitions_cover_everything_disjointly() {
        let (_ctx, t) = setup();
        let nparts = 3;
        let mut all = Vec::new();
        for p in 0..nparts {
            let it = HeapScanIter::partitioned(t.clone(), None, None, None, p, nparts);
            all.extend(collect(Box::new(it)).unwrap());
        }
        assert_eq!(all.len(), 500);
        let mut ids: Vec<i64> = all.iter().map(|r| r[0].as_int().unwrap()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn index_scan_is_ordered() {
        let (_ctx, t) = setup();
        let idx = t.index_with_prefix(&[0]).unwrap();
        let it = IndexScanIter::new(&t, idx, &[], None, None);
        let rows = collect(Box::new(it)).unwrap();
        assert_eq!(rows.len(), 500);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn index_scan_with_equality_prefix() {
        let (ctx, _) = setup();
        // Composite-key table: (grp, id) primary key.
        let schema = Schema::new(vec![
            Column::new("grp", DataType::Int).not_null(),
            Column::new("id", DataType::Int).not_null(),
        ]);
        let t = ctx
            .catalog
            .create_table("pairs", schema, Compression::Row, Some(vec![0, 1]))
            .unwrap();
        for g in 0..5i64 {
            for i in 0..20i64 {
                t.insert(&Row::new(vec![Value::Int(g), Value::Int(i)]))
                    .unwrap();
            }
        }
        let idx = t.index_with_prefix(&[0]).unwrap();
        let it = IndexScanIter::new(&t, idx, &[Value::Int(3)], None, None);
        let rows = collect(Box::new(it)).unwrap();
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r[0] == Value::Int(3)));
        // Ordered by the second key column within the prefix.
        let ids: Vec<i64> = rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_prefix_range_is_empty() {
        let (_ctx, t) = setup();
        let idx = t.index_with_prefix(&[0]).unwrap();
        let mut it = IndexScanIter::new(&t, idx, &[Value::Int(10_000)], None, None);
        assert!(it.next().unwrap().is_none());
    }
}

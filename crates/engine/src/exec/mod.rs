//! Physical execution: the Volcano iterator model.
//!
//! Every operator implements [`RowIterator`]; the query processor pulls
//! rows one at a time (`next()`), which is the same contract SQL Server's
//! query processor has with CLR table-valued functions (paper §4.1,
//! Figure 5).

pub mod agg;
pub mod apply;
pub mod filter;
pub mod join;
pub mod rowser;
pub mod scan;
pub mod sort;
pub mod window;

use std::sync::Arc;

use seqdb_types::{Result, Row};

use seqdb_storage::tempspace::SpillWriter;
use seqdb_storage::{FileStreamStore, SpillTally, TempSpace};

use crate::catalog::Catalog;
use crate::governor::{MemCharge, QueryGovernor};
use crate::stats::{ExecStats, NodeStats};

/// Everything an operator needs at run time.
#[derive(Clone)]
pub struct ExecContext {
    pub catalog: Arc<Catalog>,
    pub filestream: Arc<FileStreamStore>,
    pub temp: Arc<TempSpace>,
    /// Degree of parallelism for eligible operators.
    pub dop: usize,
    /// Memory budget (bytes) for blocking operators before they spill.
    pub sort_budget: usize,
    /// Rows per [`RowBatch`] on the vectorized path (`SET BATCH_SIZE`);
    /// 0 forces row-at-a-time execution everywhere.
    pub batch_size: usize,
    /// Per-query resource governor: cancellation, timeout, memory budget.
    /// Fresh for every query; clone the `Arc` to cancel from another
    /// thread.
    pub gov: Arc<QueryGovernor>,
    /// Actual-execution collector (`EXPLAIN ANALYZE`); `None` for plain
    /// runs, which then pay nothing per row.
    pub stats: Option<Arc<ExecStats>>,
    /// The stats slot of the plan node this context was captured by.
    /// `Plan::open` sets it per node before building the node's iterator,
    /// so spills created through [`ExecContext::create_spill`] attribute
    /// to the operator that caused them.
    pub node: Option<Arc<NodeStats>>,
}

impl ExecContext {
    /// Default memory budget for blocking operators: 64 MiB.
    pub const DEFAULT_SORT_BUDGET: usize = 64 * 1024 * 1024;

    /// Default rows per batch on the vectorized path.
    pub const DEFAULT_BATCH_SIZE: usize = 1024;

    /// The spill tallies every spill of this context should feed: the
    /// query-wide tally on the governor plus, when collecting actuals,
    /// the current plan node's tally.
    pub fn spill_tallies(&self) -> Vec<Arc<SpillTally>> {
        let mut tallies = vec![Arc::clone(self.gov.spill_tally())];
        if let Some(node) = &self.node {
            tallies.push(Arc::clone(&node.spill));
        }
        tallies
    }

    /// Create a spill file attributed to this query (and, under
    /// `EXPLAIN ANALYZE`, to the current operator). All operator spill
    /// paths go through here rather than `TempSpace::create_spill`.
    pub fn create_spill(&self) -> Result<SpillWriter> {
        self.temp.create_spill_tallied(self.spill_tallies())
    }

    /// Create a hash-join partition file: same attribution as
    /// [`ExecContext::create_spill`], but waits land in the `JOIN_SPILL`
    /// class and the dedicated join spill gauges.
    pub fn create_join_spill(&self) -> Result<SpillWriter> {
        self.temp
            .create_spill_class(self.spill_tallies(), seqdb_storage::WaitClass::JoinSpill)
    }
}

/// A batch of rows moving through the vectorized execution path.
///
/// The batch owns its rows plus an optional *selection vector*: indices
/// of the rows still live. A filter narrows the selection in place
/// instead of moving or dropping rows; whoever materializes the batch
/// (projection, join probe, the root drain) compacts it then. A batch
/// may also carry a [`MemCharge`] so buffered rows stay visible to the
/// query's memory budget while in flight; the charge releases when the
/// batch drops, so cancelled queries cannot leak budget through
/// abandoned batches.
pub struct RowBatch {
    rows: Vec<Row>,
    /// Live row indices, ascending. `None` means every row is live.
    sel: Option<Vec<u32>>,
    /// Budget charge covering `rows`, released on drop.
    charge: Option<MemCharge>,
    /// True when the batch was assembled by the default `next()`-loop
    /// fallback rather than a native batch producer.
    fallback: bool,
}

impl RowBatch {
    pub fn from_rows(rows: Vec<Row>) -> RowBatch {
        RowBatch {
            rows,
            sel: None,
            charge: None,
            fallback: false,
        }
    }

    /// A batch assembled by the default row-at-a-time fallback.
    pub fn fallback_from(rows: Vec<Row>) -> RowBatch {
        RowBatch {
            fallback: true,
            ..RowBatch::from_rows(rows)
        }
    }

    /// Attach the budget charge covering this batch's rows.
    pub fn set_charge(&mut self, charge: MemCharge) {
        self.charge = Some(charge);
    }

    /// Was this batch produced by the row-loop fallback?
    pub fn is_fallback(&self) -> bool {
        self.fallback
    }

    /// Number of *selected* rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.rows.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the selected rows in order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        let sel = self.sel.as_deref();
        (0..self.len()).map(move |i| match sel {
            Some(s) => &self.rows[s[i] as usize],
            None => &self.rows[i],
        })
    }

    /// Underlying storage and selection, for operators that rewrite rows
    /// in place (projection takes values out of selected rows).
    pub fn parts_mut(&mut self) -> (&mut [Row], Option<&[u32]>) {
        (&mut self.rows, self.sel.as_deref())
    }

    /// Narrow the selection to rows where `keep` returns true, without
    /// moving or dropping any row.
    pub fn narrow(&mut self, mut keep: impl FnMut(&Row) -> Result<bool>) -> Result<()> {
        let mut next = Vec::with_capacity(self.len());
        match self.sel.take() {
            Some(sel) => {
                for i in sel {
                    if keep(&self.rows[i as usize])? {
                        next.push(i);
                    }
                }
            }
            None => {
                for (i, row) in self.rows.iter().enumerate() {
                    if keep(row)? {
                        next.push(i as u32);
                    }
                }
            }
        }
        self.sel = Some(next);
        Ok(())
    }

    /// Keep only the first `n` selected rows (LIMIT).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        match &mut self.sel {
            Some(sel) => sel.truncate(n),
            None => {
                self.sel = Some((0..n as u32).collect());
            }
        }
    }

    /// Compact into a plain row vector, consuming the batch. Rows outside
    /// the selection are dropped here and only here.
    pub fn into_rows(mut self) -> Vec<Row> {
        match self.sel.take() {
            None => std::mem::take(&mut self.rows),
            Some(sel) => {
                let mut out = Vec::with_capacity(sel.len());
                let mut want = sel.into_iter();
                let mut target = want.next();
                for (i, row) in std::mem::take(&mut self.rows).into_iter().enumerate() {
                    if Some(i as u32) == target {
                        out.push(row);
                        target = want.next();
                    }
                }
                out
            }
        }
    }
}

/// A pull-based row stream.
pub trait RowIterator: Send {
    /// Produce the next row, `None` at end-of-stream. After `None` (or an
    /// error) the iterator must not be called again.
    fn next(&mut self) -> Result<Option<Row>>;

    /// Produce the next batch of up to `max_rows` rows (a hint, not a
    /// hard cap: expanding operators such as a join probe may overshoot;
    /// filters return fewer). `None` at end-of-stream; a returned batch
    /// always has at least one selected row. The default implementation
    /// loops [`RowIterator::next`], so every operator participates in
    /// batch execution unchanged and the long tail (sort, window, apply,
    /// UDX) falls back transparently.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        let max = max_rows.max(1);
        let mut rows = Vec::with_capacity(max.min(ExecContext::DEFAULT_BATCH_SIZE));
        while rows.len() < max {
            match self.next()? {
                Some(r) => rows.push(r),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch::fallback_from(rows)))
        }
    }
}

/// Boxed operator, the unit plans compose.
pub type BoxedIter = Box<dyn RowIterator>;

/// Drain an iterator into a vector (tests, small results).
pub fn collect(mut it: BoxedIter) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(r) = it.next()? {
        out.push(r);
    }
    Ok(out)
}

/// Drain an iterator through the batch protocol. `batch_size == 0` is
/// the forced row-at-a-time mode (`SET BATCH_SIZE = 0`): the root pulls
/// single rows and no operator ever sees a batch.
pub fn collect_batched(mut it: BoxedIter, batch_size: usize) -> Result<Vec<Row>> {
    if batch_size == 0 {
        return collect(it);
    }
    let mut out = Vec::new();
    while let Some(batch) = it.next_batch(batch_size)? {
        out.extend(batch.into_rows());
    }
    Ok(out)
}

/// An iterator over a pre-materialized set of rows.
pub struct ValuesIter {
    rows: std::vec::IntoIter<Row>,
}

impl ValuesIter {
    pub fn new(rows: Vec<Row>) -> ValuesIter {
        ValuesIter {
            rows: rows.into_iter(),
        }
    }
}

impl RowIterator for ValuesIter {
    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use seqdb_storage::{BufferPool, MemPager};
    use seqdb_types::Value;

    /// A throwaway context over in-memory storage.
    pub fn test_context() -> ExecContext {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 1024);
        let catalog = Catalog::new(pool);
        for f in crate::builtins::all_builtins() {
            catalog.register_scalar(f);
        }
        let fsdir = std::env::temp_dir().join(format!(
            "seqdb-exec-test-{}-{:p}",
            std::process::id(),
            &catalog
        ));
        ExecContext {
            catalog,
            filestream: Arc::new(FileStreamStore::open(fsdir).unwrap()),
            temp: TempSpace::system().unwrap(),
            dop: 2,
            sort_budget: ExecContext::DEFAULT_SORT_BUDGET,
            batch_size: ExecContext::DEFAULT_BATCH_SIZE,
            gov: QueryGovernor::unlimited(),
            stats: None,
            node: None,
        }
    }

    pub fn int_rows(vals: &[&[i64]]) -> Vec<Row> {
        vals.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }
}

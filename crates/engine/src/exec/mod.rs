//! Physical execution: the Volcano iterator model.
//!
//! Every operator implements [`RowIterator`]; the query processor pulls
//! rows one at a time (`next()`), which is the same contract SQL Server's
//! query processor has with CLR table-valued functions (paper §4.1,
//! Figure 5).

pub mod agg;
pub mod apply;
pub mod filter;
pub mod join;
pub mod rowser;
pub mod scan;
pub mod sort;
pub mod window;

use std::sync::Arc;

use seqdb_types::{Result, Row};

use seqdb_storage::tempspace::SpillWriter;
use seqdb_storage::{FileStreamStore, SpillTally, TempSpace};

use crate::catalog::Catalog;
use crate::governor::QueryGovernor;
use crate::stats::{ExecStats, NodeStats};

/// Everything an operator needs at run time.
#[derive(Clone)]
pub struct ExecContext {
    pub catalog: Arc<Catalog>,
    pub filestream: Arc<FileStreamStore>,
    pub temp: Arc<TempSpace>,
    /// Degree of parallelism for eligible operators.
    pub dop: usize,
    /// Memory budget (bytes) for blocking operators before they spill.
    pub sort_budget: usize,
    /// Per-query resource governor: cancellation, timeout, memory budget.
    /// Fresh for every query; clone the `Arc` to cancel from another
    /// thread.
    pub gov: Arc<QueryGovernor>,
    /// Actual-execution collector (`EXPLAIN ANALYZE`); `None` for plain
    /// runs, which then pay nothing per row.
    pub stats: Option<Arc<ExecStats>>,
    /// The stats slot of the plan node this context was captured by.
    /// `Plan::open` sets it per node before building the node's iterator,
    /// so spills created through [`ExecContext::create_spill`] attribute
    /// to the operator that caused them.
    pub node: Option<Arc<NodeStats>>,
}

impl ExecContext {
    /// Default memory budget for blocking operators: 64 MiB.
    pub const DEFAULT_SORT_BUDGET: usize = 64 * 1024 * 1024;

    /// The spill tallies every spill of this context should feed: the
    /// query-wide tally on the governor plus, when collecting actuals,
    /// the current plan node's tally.
    pub fn spill_tallies(&self) -> Vec<Arc<SpillTally>> {
        let mut tallies = vec![Arc::clone(self.gov.spill_tally())];
        if let Some(node) = &self.node {
            tallies.push(Arc::clone(&node.spill));
        }
        tallies
    }

    /// Create a spill file attributed to this query (and, under
    /// `EXPLAIN ANALYZE`, to the current operator). All operator spill
    /// paths go through here rather than `TempSpace::create_spill`.
    pub fn create_spill(&self) -> Result<SpillWriter> {
        self.temp.create_spill_tallied(self.spill_tallies())
    }

    /// Create a hash-join partition file: same attribution as
    /// [`ExecContext::create_spill`], but waits land in the `JOIN_SPILL`
    /// class and the dedicated join spill gauges.
    pub fn create_join_spill(&self) -> Result<SpillWriter> {
        self.temp
            .create_spill_class(self.spill_tallies(), seqdb_storage::WaitClass::JoinSpill)
    }
}

/// A pull-based row stream.
pub trait RowIterator: Send {
    /// Produce the next row, `None` at end-of-stream. After `None` (or an
    /// error) the iterator must not be called again.
    fn next(&mut self) -> Result<Option<Row>>;
}

/// Boxed operator, the unit plans compose.
pub type BoxedIter = Box<dyn RowIterator>;

/// Drain an iterator into a vector (tests, small results).
pub fn collect(mut it: BoxedIter) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(r) = it.next()? {
        out.push(r);
    }
    Ok(out)
}

/// An iterator over a pre-materialized set of rows.
pub struct ValuesIter {
    rows: std::vec::IntoIter<Row>,
}

impl ValuesIter {
    pub fn new(rows: Vec<Row>) -> ValuesIter {
        ValuesIter {
            rows: rows.into_iter(),
        }
    }
}

impl RowIterator for ValuesIter {
    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use seqdb_storage::{BufferPool, MemPager};
    use seqdb_types::Value;

    /// A throwaway context over in-memory storage.
    pub fn test_context() -> ExecContext {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 1024);
        let catalog = Catalog::new(pool);
        for f in crate::builtins::all_builtins() {
            catalog.register_scalar(f);
        }
        let fsdir = std::env::temp_dir().join(format!(
            "seqdb-exec-test-{}-{:p}",
            std::process::id(),
            &catalog
        ));
        ExecContext {
            catalog,
            filestream: Arc::new(FileStreamStore::open(fsdir).unwrap()),
            temp: TempSpace::system().unwrap(),
            dop: 2,
            sort_budget: ExecContext::DEFAULT_SORT_BUDGET,
            gov: QueryGovernor::unlimited(),
            stats: None,
            node: None,
        }
    }

    pub fn int_rows(vals: &[&[i64]]) -> Vec<Row> {
        vals.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }
}

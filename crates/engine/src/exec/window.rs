//! Window functions: `ROW_NUMBER() OVER (ORDER BY ...)`.
//!
//! The paper's Query 1 uses `ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC)`
//! to rank binned short-reads. The planner lowers the OVER clause into a
//! [`crate::exec::sort::SortIter`] below this operator, which then simply
//! prepends (or appends) a running counter.

use seqdb_types::{Result, Row, Value};

use crate::exec::{BoxedIter, RowIterator};

/// Appends a 1-based row number column to each input row. The input must
/// already be ordered per the window's ORDER BY.
pub struct RowNumberIter {
    input: BoxedIter,
    counter: i64,
    /// If true, the number is prepended instead of appended (Query 1
    /// selects the rank first).
    prepend: bool,
}

impl RowNumberIter {
    pub fn new(input: BoxedIter, prepend: bool) -> RowNumberIter {
        RowNumberIter {
            input,
            counter: 0,
            prepend,
        }
    }
}

impl RowIterator for RowNumberIter {
    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                self.counter += 1;
                let mut vals = Vec::with_capacity(row.len() + 1);
                if self.prepend {
                    vals.push(Value::Int(self.counter));
                    vals.extend_from_slice(row.values());
                } else {
                    vals.extend_from_slice(row.values());
                    vals.push(Value::Int(self.counter));
                }
                Ok(Some(Row::new(vals)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::int_rows;
    use crate::exec::{collect, ValuesIter};

    #[test]
    fn numbers_rows_in_order() {
        let rows = int_rows(&[&[30], &[20], &[10]]);
        let it = RowNumberIter::new(Box::new(ValuesIter::new(rows)), false);
        let out = collect(Box::new(it)).unwrap();
        let pairs: Vec<(i64, i64)> = out
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(30, 1), (20, 2), (10, 3)]);
    }

    #[test]
    fn prepend_mode() {
        let rows = int_rows(&[&[7]]);
        let it = RowNumberIter::new(Box::new(ValuesIter::new(rows)), true);
        let out = collect(Box::new(it)).unwrap();
        assert_eq!(out[0].values(), &[Value::Int(1), Value::Int(7)]);
    }
}

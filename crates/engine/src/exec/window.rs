//! Window functions: `ROW_NUMBER() OVER (ORDER BY ...)`.
//!
//! The paper's Query 1 uses `ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC)`
//! to rank binned short-reads. The planner usually lowers the OVER clause
//! into a [`crate::exec::sort::SortIter`] below this operator — whose
//! buffering is already budget-accounted — and the operator simply
//! prepends (or appends) a running counter.
//!
//! When the input is *already* ordered (a clustered index scan covering
//! the window keys), the planner skips the Sort and this operator runs
//! directly over the scan. It then maintains the window's peer frame
//! itself: rows tied on the ORDER BY columns buffer together, and that
//! buffer is charged against the query's memory budget — without the
//! Sort beneath it, nobody else accounts for those rows.

use std::sync::Arc;

use seqdb_types::{Result, Row, Value};

use crate::exec::{BoxedIter, RowIterator};
use crate::governor::{MemCharge, QueryGovernor};

/// Rough bytes held by one buffered peer row.
const PEER_ROW_OVERHEAD: usize = 32;

fn peer_row_cost(row: &Row) -> usize {
    row.values().iter().map(|v| v.size_bytes()).sum::<usize>() + PEER_ROW_OVERHEAD
}

/// Appends a 1-based row number column to each input row. The input must
/// already be ordered per the window's ORDER BY.
pub struct RowNumberIter {
    input: BoxedIter,
    counter: i64,
    /// If true, the number is prepended instead of appended (Query 1
    /// selects the rank first).
    prepend: bool,
    /// Window ORDER BY columns when this operator sits directly over an
    /// ordered scan (no Sort beneath): rows tied on these columns form a
    /// peer frame that is buffered and charged. Empty = a Sort below
    /// already accounted for the rows; stream straight through.
    order_cols: Vec<usize>,
    charge: Option<MemCharge>,
    /// Buffered peer frame being drained (in reverse, for pop()).
    pending: Vec<Row>,
    /// First row of the *next* peer frame, read while detecting the
    /// current frame's end.
    lookahead: Option<Row>,
    done: bool,
}

impl RowNumberIter {
    pub fn new(input: BoxedIter, prepend: bool) -> RowNumberIter {
        RowNumberIter {
            input,
            counter: 0,
            prepend,
            order_cols: Vec::new(),
            charge: None,
            pending: Vec::new(),
            lookahead: None,
            done: false,
        }
    }

    /// Peer-buffering mode for a Sort-less plan: `order_cols` are the
    /// window's ORDER BY columns in the input schema, and the peer frames
    /// buffered here charge `gov`'s memory budget.
    pub fn with_peer_frames(
        input: BoxedIter,
        prepend: bool,
        order_cols: Vec<usize>,
        gov: Arc<QueryGovernor>,
    ) -> RowNumberIter {
        RowNumberIter {
            input,
            counter: 0,
            prepend,
            order_cols,
            charge: Some(MemCharge::new(gov)),
            pending: Vec::new(),
            lookahead: None,
            done: false,
        }
    }

    fn number(&mut self, row: Row) -> Row {
        self.counter += 1;
        let mut vals = Vec::with_capacity(row.len() + 1);
        if self.prepend {
            vals.push(Value::Int(self.counter));
            vals.extend_from_slice(row.values());
        } else {
            vals.extend_from_slice(row.values());
            vals.push(Value::Int(self.counter));
        }
        Row::new(vals)
    }

    fn same_peers(&self, a: &Row, b: &Row) -> bool {
        self.order_cols.iter().all(|&c| a[c] == b[c])
    }

    /// Buffer the next peer frame (rows tied on the ORDER BY columns),
    /// charging each buffered row against the budget. A frame larger than
    /// the remaining budget fails typed — unlike the hash aggregate there
    /// is no spill format for an in-flight frame, and frames over an
    /// ordered index scan are expected to be small.
    fn fill_frame(&mut self) -> Result<()> {
        let first = match self.lookahead.take() {
            Some(r) => Some(r),
            None => self.input.next()?,
        };
        let Some(first) = first else {
            self.done = true;
            return Ok(());
        };
        if let Some(charge) = self.charge.as_mut() {
            charge.grow(peer_row_cost(&first))?;
        }
        let mut frame = vec![first];
        loop {
            match self.input.next()? {
                None => break,
                Some(row) => {
                    if self.same_peers(&frame[0], &row) {
                        if let Some(charge) = self.charge.as_mut() {
                            charge.grow(peer_row_cost(&row))?;
                        }
                        frame.push(row);
                    } else {
                        self.lookahead = Some(row);
                        break;
                    }
                }
            }
        }
        frame.reverse(); // drain via pop() in arrival order
        self.pending = frame;
        Ok(())
    }
}

impl RowIterator for RowNumberIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.order_cols.is_empty() {
            // Streaming mode: a Sort below already buffered the rows.
            return match self.input.next()? {
                None => Ok(None),
                Some(row) => Ok(Some(self.number(row))),
            };
        }
        if self.pending.is_empty() && !self.done {
            self.fill_frame()?;
            if let Some(charge) = self.charge.as_mut() {
                // The frame is complete; its rows stream out from here
                // while the next frame is charged afresh.
                charge.release_all();
            }
        }
        match self.pending.pop() {
            Some(row) => Ok(Some(self.number(row))),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::int_rows;
    use crate::exec::{collect, ValuesIter};
    use seqdb_types::DbError;

    #[test]
    fn numbers_rows_in_order() {
        let rows = int_rows(&[&[30], &[20], &[10]]);
        let it = RowNumberIter::new(Box::new(ValuesIter::new(rows)), false);
        let out = collect(Box::new(it)).unwrap();
        let pairs: Vec<(i64, i64)> = out
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(30, 1), (20, 2), (10, 3)]);
    }

    #[test]
    fn prepend_mode() {
        let rows = int_rows(&[&[7]]);
        let it = RowNumberIter::new(Box::new(ValuesIter::new(rows)), true);
        let out = collect(Box::new(it)).unwrap();
        assert_eq!(out[0].values(), &[Value::Int(1), Value::Int(7)]);
    }

    #[test]
    fn peer_frames_number_identically_and_release_their_charge() {
        // Ties on column 0 form frames {10,10}, {20}, {30,30,30}.
        let rows = int_rows(&[&[10, 1], &[10, 2], &[20, 3], &[30, 4], &[30, 5], &[30, 6]]);
        let gov = QueryGovernor::new(None, Some(1 << 20));
        let mut it = RowNumberIter::with_peer_frames(
            Box::new(ValuesIter::new(rows)),
            false,
            vec![0],
            gov.clone(),
        );
        let mut nums = Vec::new();
        while let Some(r) = it.next().unwrap() {
            nums.push((r[0].as_int().unwrap(), r[2].as_int().unwrap()));
        }
        assert_eq!(
            nums,
            vec![(10, 1), (10, 2), (20, 3), (30, 4), (30, 5), (30, 6)]
        );
        drop(it);
        assert_eq!(gov.mem_used(), 0, "peer-frame charges released");
    }

    #[test]
    fn oversized_peer_frame_fails_typed() {
        // Every row is a peer of every other: the frame must exceed a
        // tiny budget and fail with ResourceExhausted, not OOM.
        let rows = int_rows(&[&[1], &[1], &[1], &[1], &[1], &[1], &[1], &[1]]);
        let gov = QueryGovernor::new(None, Some(96));
        let mut it = RowNumberIter::with_peer_frames(
            Box::new(ValuesIter::new(rows)),
            false,
            vec![0],
            gov.clone(),
        );
        let err = loop {
            match it.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected the frame to exceed the budget"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, DbError::ResourceExhausted(_)), "{err}");
        drop(it);
        assert_eq!(gov.mem_used(), 0, "charges released on failure");
    }
}

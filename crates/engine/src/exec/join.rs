//! Join operators: hybrid Grace hash join (unordered inputs) and merge
//! join (inputs ordered on the join keys, e.g. via clustered index scans).
//!
//! The paper's consensus query (§5.3.3) joins `Alignment` with `Read` via
//! a *parallel merge join* enabled by clustered indexes — "about 1.6
//! million alignments per second" on warm buffers. [`MergeJoinIter`] is
//! that operator; the planner picks it whenever both sides come from
//! index scans with compatible key prefixes.
//!
//! [`HashJoinIter`] covers the unordered case, and since large genomic
//! joins routinely outgrow a query's workspace grant it degrades the same
//! way the hash aggregate does: once the build side exhausts its
//! [`MemCharge`], further build rows partition to `storage::tempspace`
//! with the salted hash of [`crate::exec::agg::partition_of`]. Probe rows
//! stream against the resident table and are routed to the matching spill
//! partition; partition pairs then join recursively with a re-salted
//! hash, optionally in parallel (one worker per partition pair, the
//! fail-fast/panic-capture discipline of [`crate::parallel`]). A compact
//! Bloom filter over every build key lets probe rows that cannot match
//! skip both the lookup and the partition write, so a spilling join does
//! no I/O for probe rows that would never find a partner.

use std::cmp::Ordering;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use seqdb_storage::tempspace::{SpillReader, SpillWriter};
use seqdb_storage::WaitClass;
use seqdb_types::{DbError, Result, Row, Value};

use crate::exec::agg::{
    partition_of, write_spill_row, OutputBuffer, OutputRows, SpillRowIter, SPILL_PARTITIONS,
};

/// Output buffer for one partition pair, capped at its share of the
/// output quarter of the query budget: up to [`SPILL_PARTITIONS`] pairs
/// hold finished output concurrently, so each gets `limit / 4 / pairs` —
/// the build tables' half of the budget stays unstarved (the exact
/// failure mode would be spurious depth exhaustion under parallel dop).
fn pair_output_buffer(ctx: &ExecContext) -> OutputBuffer {
    let cap = ctx.gov.mem_limit().map(|l| l / 4 / SPILL_PARTITIONS);
    OutputBuffer::with_class_capped(ctx, WaitClass::JoinSpill, cap)
}
use crate::exec::{BoxedIter, ExecContext, RowBatch, RowIterator};
use crate::expr::{eval_into, Expr};
use crate::governor::{MemCharge, Ticker};
use crate::parallel::root_cause;
use crate::udx::panic_payload;

fn eval_all(exprs: &[Expr], row: &Row) -> Result<Vec<Value>> {
    exprs.iter().map(|e| e.eval(row)).collect()
}

fn cmp_keys(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.total_cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Keys containing NULL never match (SQL equi-join semantics).
fn key_joinable(k: &[Value]) -> bool {
    !k.iter().any(Value::is_null)
}

/// Recursion bound for join repartitioning, mirroring the hash
/// aggregate's: beyond this the budget is simply too small for the data
/// and the query fails with `ResourceExhausted`.
const MAX_JOIN_SPILL_DEPTH: u32 = 6;
/// Estimated heap overhead per resident build entry (hash-map slot,
/// key Vec, `Arc<Row>` headers).
const JOIN_ENTRY_OVERHEAD: usize = 48;
/// Above this many spilled build rows the Bloom filter is abandoned:
/// it must stay conservative (no false negatives), and an unbounded
/// hash list would defeat the point of spilling.
const BLOOM_MAX_KEYS: usize = 1 << 20;
/// Salt distinguishing Bloom hashes from the depth-salted partition
/// hashes (a `u32` depth can never equal this).
const BLOOM_SALT: u64 = 0xb100_f117_e25a_17ed;

/// Memory cost charged for one resident build row.
fn join_entry_cost(key: &[Value], row: &Row) -> usize {
    let key_bytes: usize = key.iter().map(|v| v.size_bytes()).sum();
    key_bytes + row.size_bytes() + JOIN_ENTRY_OVERHEAD
}

fn bloom_hash(key: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    BLOOM_SALT.hash(&mut h);
    key.hash(&mut h);
    h.finish()
}

/// Blocked two-probe Bloom filter over build-key hashes. Conservative by
/// construction: every build key is inserted, so `contains == false`
/// proves the probe key has no partner.
struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

impl Bloom {
    fn with_capacity(nkeys: usize) -> Bloom {
        let nbits = nkeys.saturating_mul(10).next_power_of_two().max(64);
        Bloom {
            bits: vec![0u64; nbits / 64],
            mask: (nbits - 1) as u64,
        }
    }

    fn positions(&self, h: u64) -> [u64; 2] {
        let h1 = h & 0xffff_ffff;
        let h2 = h >> 32;
        [h1 & self.mask, h1.wrapping_add(h2) & self.mask]
    }

    fn insert(&mut self, h: u64) {
        for p in self.positions(h) {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    fn contains(&self, h: u64) -> bool {
        self.positions(h)
            .iter()
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }
}

/// Collects spilled build-key hashes during the build phase; turned into
/// a [`Bloom`] (together with the resident keys) only if spilling
/// actually happened, so resident-only joins pay nothing.
struct BloomTracker {
    hashes: Vec<u64>,
    disabled: bool,
}

impl BloomTracker {
    fn new() -> BloomTracker {
        BloomTracker {
            hashes: Vec::new(),
            disabled: false,
        }
    }

    fn note(&mut self, h: u64) {
        if self.disabled {
            return;
        }
        if self.hashes.len() >= BLOOM_MAX_KEYS {
            self.disabled = true;
            self.hashes = Vec::new();
            return;
        }
        self.hashes.push(h);
    }

    fn build<'a>(self, resident: impl ExactSizeIterator<Item = &'a Vec<Value>>) -> Option<Bloom> {
        if self.disabled {
            return None;
        }
        let mut bloom = Bloom::with_capacity(self.hashes.len() + resident.len());
        for h in &self.hashes {
            bloom.insert(*h);
        }
        for key in resident {
            bloom.insert(bloom_hash(key));
        }
        Some(bloom)
    }
}

/// Multiply-rotate hasher for the resident build table (the well-known
/// Fx scheme): far cheaper than SipHash on short `Vec<Value>` keys. Not
/// DoS-resistant, which is fine for a per-query table that dies with
/// the operator. The partition/Bloom hashes stay on `DefaultHasher`.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Xor-shift avalanche: `Value::Int` hashes through f64 bit
        // patterns whose differences sit in the HIGH bits, and the
        // multiply in `add` only propagates differences upward — without
        // this mix every sequential-int key lands in one bucket.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some((chunk, rest)) = bytes.split_first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut tail = 0u64;
            for (i, &b) in bytes.iter().enumerate() {
                tail |= (b as u64) << (8 * i);
            }
            self.add(tail);
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

#[derive(Default, Clone)]
struct FxBuild;

impl std::hash::BuildHasher for FxBuild {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Build rows grouped by join key. Rows are shared via `Arc` so the
/// spilled partition phase and the resident map can hold the same row
/// without copying it (duplicate-heavy joins used to clone the whole
/// match vector per probe row; matches now emit straight into a reused
/// output queue instead).
type BuildMap = HashMap<Vec<Value>, Vec<Arc<Row>>, FxBuild>;

/// Everything the recursive/parallel partition phase needs, cloneable
/// into worker threads. The context is the one the join node was opened
/// with, so worker spills attribute to the join's stats slot.
#[derive(Clone)]
struct JoinEnv {
    build_keys: Vec<Expr>,
    probe_keys: Vec<Expr>,
    probe_first: bool,
    ctx: ExecContext,
}

impl JoinEnv {
    /// Output row for one (build, probe) match. `probe_first` restores
    /// the plan's `left ++ right` column order when the binder swapped
    /// the smaller right side onto the build.
    fn emit(&self, build: &Row, probe: &Row) -> Row {
        if self.probe_first {
            probe.concat(build)
        } else {
            build.concat(probe)
        }
    }
}

/// Consume `input` into a resident [`BuildMap`], degrading to salted
/// hash partitions once `charge` (optionally capped at `cap`) rejects a
/// row. Spill mode is sticky *per row*, not per key: unlike the hash
/// aggregate, every build row costs memory, so after the first rejection
/// all further rows spill — a key's rows may therefore be split between
/// the resident map and one partition. Correct because each build row
/// lives in exactly one place and probe rows visit both.
fn build_table(
    input: &mut dyn RowIterator,
    env: &JoinEnv,
    depth: u32,
    cap: Option<usize>,
    charge: &mut MemCharge,
    mut bloom: Option<&mut BloomTracker>,
) -> Result<(BuildMap, Vec<Option<SpillWriter>>)> {
    let mut ticker = Ticker::new();
    let mut table = BuildMap::default();
    let mut spilling = false;
    let mut parts: Vec<Option<SpillWriter>> = (0..SPILL_PARTITIONS).map(|_| None).collect();
    let mut key: Vec<Value> = Vec::new();
    while let Some(row) = input.next()? {
        ticker.tick(&env.ctx.gov)?;
        eval_into(&env.build_keys, &row, &mut key)?;
        if !key_joinable(&key) {
            continue;
        }
        let cost = join_entry_cost(&key, &row);
        if !spilling && cap.is_none_or(|c| charge.bytes() + cost <= c) && charge.try_grow(cost) {
            // get_mut-first: duplicate keys (the common case in fact
            // tables) skip the owned-key clone entirely.
            if let Some(rows) = table.get_mut(key.as_slice()) {
                rows.push(Arc::new(row));
            } else {
                table.insert(key.clone(), vec![Arc::new(row)]);
            }
        } else {
            if depth >= MAX_JOIN_SPILL_DEPTH {
                return Err(DbError::ResourceExhausted(format!(
                    "hash join build side exceeded its memory budget even after \
                     {MAX_JOIN_SPILL_DEPTH} repartition passes"
                )));
            }
            spilling = true;
            if let Some(tracker) = bloom.as_deref_mut() {
                tracker.note(bloom_hash(&key));
            }
            let p = partition_of(&key, depth);
            if parts[p].is_none() {
                parts[p] = Some(env.ctx.create_join_spill()?);
            }
            if let Some(writer) = parts[p].as_mut() {
                write_spill_row(writer, &row)?;
            }
        }
    }
    Ok((table, parts))
}

/// Join one spilled partition pair, recursing on sub-partitions when the
/// build side still doesn't fit. Matches push into `out`, which spills
/// its own overflow under the query budget.
fn join_spilled(
    build: SpillReader,
    probe: SpillReader,
    env: &JoinEnv,
    depth: u32,
    cap: Option<usize>,
    out: &mut OutputBuffer,
) -> Result<()> {
    let gov = env.ctx.gov.clone();
    let mut charge = MemCharge::new(gov.clone());
    let mut build_rows = SpillRowIter::new(build);
    let (table, sub_build) = build_table(&mut build_rows, env, depth, cap, &mut charge, None)?;
    drop(build_rows); // done with the build partition file; delete it

    let mut sub_probe: Vec<Option<SpillWriter>> = (0..SPILL_PARTITIONS).map(|_| None).collect();
    let mut probe_rows = SpillRowIter::new(probe);
    let mut ticker = Ticker::new();
    let mut key: Vec<Value> = Vec::new();
    while let Some(row) = probe_rows.next()? {
        ticker.tick(&gov)?;
        eval_into(&env.probe_keys, &row, &mut key)?;
        if !key_joinable(&key) {
            continue;
        }
        if let Some(matches) = table.get(key.as_slice()) {
            for b in matches {
                out.push(env.emit(b, &row))?;
            }
        }
        let p = partition_of(&key, depth);
        if sub_build[p].is_some() {
            if sub_probe[p].is_none() {
                sub_probe[p] = Some(env.ctx.create_join_spill()?);
            }
            if let Some(writer) = sub_probe[p].as_mut() {
                write_spill_row(writer, &row)?;
            }
        }
    }
    drop(probe_rows);
    drop(table);
    charge.release_all();

    for (bw, pw) in sub_build.into_iter().zip(sub_probe) {
        if let (Some(bw), Some(pw)) = (bw, pw) {
            join_spilled(bw.finish()?, pw.finish()?, env, depth + 1, cap, out)?;
        }
        // An unpaired build partition has no probe rows hashing into it
        // (or vice versa): dropping the writer deletes the file.
    }
    Ok(())
}

enum JoinState {
    /// Consuming the build input.
    Build,
    /// Streaming probe rows against the resident table, routing overflow.
    Probe,
    /// Draining the partition phase's joined outputs.
    Drain,
    Done,
}

/// Inner equi hash join: hybrid Grace. Builds on the `build` input,
/// probes with `probe`, emits `left ++ right` rows (`probe_first` says
/// which side is the plan's left).
///
/// The resident build table is charged byte-for-byte against the query's
/// memory budget; on exhaustion the operator degrades to spilled
/// partition pairs joined recursively after the probe drains — in
/// parallel when `dop > 1` and more than one pair exists. All charges
/// release and all partition files delete on drop, including mid-stream
/// cancellation.
pub struct HashJoinIter {
    build: Option<BoxedIter>,
    probe: BoxedIter,
    env: JoinEnv,
    dop: usize,
    state: JoinState,
    table: BuildMap,
    charge: MemCharge,
    bloom: Option<Bloom>,
    build_parts: Vec<Option<SpillWriter>>,
    probe_parts: Vec<Option<SpillWriter>>,
    /// Output rows already joined for consumed probe rows. A reused ring
    /// buffer: steady-state probing allocates nothing but the rows.
    ready: VecDeque<Row>,
    /// Reused probe-key buffer (one evaluation per probe row, no alloc).
    key_scratch: Vec<Value>,
    outputs: std::vec::IntoIter<OutputRows>,
    current_out: Option<OutputRows>,
}

impl HashJoinIter {
    pub fn new(
        build: BoxedIter,
        probe: BoxedIter,
        build_keys: Vec<Expr>,
        probe_keys: Vec<Expr>,
        probe_first: bool,
        dop: usize,
        ctx: ExecContext,
    ) -> HashJoinIter {
        let charge = MemCharge::new(ctx.gov.clone());
        HashJoinIter {
            build: Some(build),
            probe,
            env: JoinEnv {
                build_keys,
                probe_keys,
                probe_first,
                ctx,
            },
            dop: dop.max(1),
            state: JoinState::Build,
            table: BuildMap::default(),
            charge,
            bloom: None,
            build_parts: Vec::new(),
            probe_parts: Vec::new(),
            ready: VecDeque::new(),
            key_scratch: Vec::new(),
            outputs: Vec::new().into_iter(),
            current_out: None,
        }
    }

    fn run_build(&mut self) -> Result<()> {
        let mut build = self
            .build
            .take()
            .expect("build input present in Build state");
        let mut tracker = BloomTracker::new();
        let (table, parts) = build_table(
            &mut *build,
            &self.env,
            0,
            None,
            &mut self.charge,
            Some(&mut tracker),
        )?;
        if parts.iter().any(Option::is_some) {
            self.bloom = tracker.build(table.keys());
            self.probe_parts = (0..SPILL_PARTITIONS).map(|_| None).collect();
        }
        self.table = table;
        self.build_parts = parts;
        Ok(())
    }

    /// One probe row: route to its spill partition if the build side
    /// spilled there, then join its resident matches into `ready`.
    fn probe_row(&mut self, row: Row) -> Result<()> {
        eval_into(&self.env.probe_keys, &row, &mut self.key_scratch)?;
        let key = &self.key_scratch;
        if !key_joinable(key) {
            return Ok(());
        }
        if let Some(bloom) = &self.bloom {
            if !bloom.contains(bloom_hash(key)) {
                // Provably no partner anywhere: skip lookup and I/O.
                return Ok(());
            }
        }
        // Route before matching: once spilling started, a key's build
        // rows may be split between the resident table and a partition,
        // and the probe row must meet both halves.
        if !self.build_parts.is_empty() {
            let p = partition_of(key, 0);
            if self.build_parts[p].is_some() {
                if self.probe_parts[p].is_none() {
                    self.probe_parts[p] = Some(self.env.ctx.create_join_spill()?);
                }
                if let Some(writer) = self.probe_parts[p].as_mut() {
                    write_spill_row(writer, &row)?;
                }
            }
        }
        if let Some(matches) = self.table.get(key.as_slice()) {
            for b in matches {
                self.ready.push_back(self.env.emit(b, &row));
            }
        }
        Ok(())
    }

    /// After the probe drains: free the resident table, pair up the
    /// partition files and join each pair — `min(dop, pairs)` workers
    /// when parallel. Returns the per-pair governed outputs.
    fn run_partition_phase(&mut self) -> Result<Vec<OutputRows>> {
        self.table = BuildMap::default();
        self.bloom = None;
        self.charge.release_all();

        let build_parts = std::mem::take(&mut self.build_parts);
        let probe_parts = std::mem::take(&mut self.probe_parts);
        let mut pairs: Vec<(SpillReader, SpillReader)> = Vec::new();
        for (bw, pw) in build_parts.into_iter().zip(
            probe_parts
                .into_iter()
                .chain(std::iter::repeat_with(|| None)),
        ) {
            if let (Some(bw), Some(pw)) = (bw, pw) {
                pairs.push((bw.finish()?, pw.finish()?));
            }
        }
        if pairs.is_empty() {
            return Ok(Vec::new());
        }

        let dop = self.dop.min(pairs.len());
        if dop <= 1 {
            let cap = self.env.ctx.gov.mem_limit().map(|l| l / 2);
            let mut outs = Vec::with_capacity(pairs.len());
            for (b, p) in pairs {
                let mut out = pair_output_buffer(&self.env.ctx);
                join_spilled(b, p, &self.env, 1, cap, &mut out)?;
                outs.push(out.into_rows()?);
            }
            return Ok(outs);
        }

        // Partition-parallel: deal pairs round-robin to `dop` workers.
        // Same discipline as the parallel aggregate: workers share the
        // governor (fail-fast via cancel), each is capped at its share of
        // half the budget so output buffers keep the other half, and the
        // coordinator joins every handle before reporting.
        let gov = self.env.ctx.gov.clone();
        let cap = gov.mem_limit().map(|l| l / 2 / dop);
        let npairs = pairs.len();
        let mut assigned: Vec<Vec<(usize, (SpillReader, SpillReader))>> =
            (0..dop).map(|_| Vec::new()).collect();
        for (i, pair) in pairs.into_iter().enumerate() {
            assigned[i % dop].push((i, pair));
        }
        let mut slots: Vec<Option<OutputRows>> = (0..npairs).map(|_| None).collect();
        let mut errors: Vec<DbError> = Vec::new();
        let env = &self.env;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(dop);
            for work in assigned {
                let env = env.clone();
                let gov = gov.clone();
                handles.push(scope.spawn(move || {
                    let run = move || -> Result<Vec<(usize, OutputRows)>> {
                        let mut done = Vec::new();
                        for (i, (b, p)) in work {
                            let mut out = pair_output_buffer(&env.ctx);
                            join_spilled(b, p, &env, 1, cap, &mut out)?;
                            done.push((i, out.into_rows()?));
                        }
                        Ok(done)
                    };
                    let result = run();
                    if result.is_err() {
                        gov.cancel();
                    }
                    result
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(Ok(done)) => {
                        for (i, rows) in done {
                            slots[i] = Some(rows);
                        }
                    }
                    Ok(Err(e)) => errors.push(e),
                    Err(p) => {
                        gov.cancel();
                        errors.push(DbError::Execution(format!(
                            "parallel join worker panicked: {}",
                            panic_payload(p)
                        )));
                    }
                }
            }
        });
        if !errors.is_empty() {
            return Err(root_cause(&errors));
        }
        Ok(slots.into_iter().flatten().collect())
    }
}

impl RowIterator for HashJoinIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if matches!(self.state, JoinState::Build) {
            self.run_build()?;
            self.state = JoinState::Probe;
        }
        loop {
            if let Some(row) = self.ready.pop_front() {
                return Ok(Some(row));
            }
            match self.state {
                JoinState::Probe => match self.probe.next()? {
                    Some(row) => self.probe_row(row)?,
                    None => {
                        self.outputs = self.run_partition_phase()?.into_iter();
                        self.state = JoinState::Drain;
                    }
                },
                JoinState::Drain => {
                    if let Some(out) = self.current_out.as_mut() {
                        if let Some(row) = out.next()? {
                            return Ok(Some(row));
                        }
                        // Drop the finished partition's output early: its
                        // charge and spill file release before the next
                        // partition streams.
                        self.current_out = None;
                    }
                    match self.outputs.next() {
                        Some(out) => self.current_out = Some(out),
                        None => self.state = JoinState::Done,
                    }
                }
                JoinState::Done => return Ok(None),
                JoinState::Build => unreachable!("build ran before the loop"),
            }
        }
    }

    /// Native batch path for the probe side: pull probe *batches*, run
    /// each selected row through the unchanged per-row probe (Bloom
    /// pre-screen, spill routing, resident lookup), and hand the joined
    /// rows on as a batch. The child's governor tick, the probe-side
    /// dispatch and this operator's output handling all amortize over
    /// the batch; the spilled-partition drain falls back to the row
    /// loop, whose semantics (early file cleanup, charge release) stay
    /// exactly as they are.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>> {
        if matches!(self.state, JoinState::Build) {
            self.run_build()?;
            self.state = JoinState::Probe;
        }
        let max = max_rows.max(1);
        let mut out: Vec<Row> =
            Vec::with_capacity(max.min(crate::exec::ExecContext::DEFAULT_BATCH_SIZE));
        loop {
            while out.len() < max {
                match self.ready.pop_front() {
                    Some(row) => out.push(row),
                    None => break,
                }
            }
            if out.len() >= max {
                return Ok(Some(RowBatch::from_rows(out)));
            }
            match self.state {
                JoinState::Probe => match self.probe.next_batch(max)? {
                    Some(batch) => {
                        for row in batch.into_rows() {
                            self.probe_row(row)?;
                        }
                    }
                    None => {
                        self.outputs = self.run_partition_phase()?.into_iter();
                        self.state = JoinState::Drain;
                    }
                },
                // The drain of spilled partition pairs reuses the row
                // loop: it already streams each pair's output and frees
                // its file/charge as soon as the pair finishes.
                JoinState::Drain | JoinState::Done => {
                    while out.len() < max {
                        match self.next()? {
                            Some(row) => out.push(row),
                            None => break,
                        }
                    }
                    return if out.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(RowBatch::from_rows(out)))
                    };
                }
                JoinState::Build => unreachable!("build ran before the loop"),
            }
        }
    }
}

/// Inner merge join over inputs sorted ascending on their join keys.
/// Handles duplicate keys on both sides by buffering the right-side group.
pub struct MergeJoinIter {
    left: BoxedIter,
    right: BoxedIter,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    left_row: Option<(Vec<Value>, Row)>,
    right_row: Option<(Vec<Value>, Row)>,
    /// Buffered right rows sharing the current key (for left dups).
    right_group: Vec<Row>,
    right_group_key: Vec<Value>,
    emit_idx: usize,
    started: bool,
}

impl MergeJoinIter {
    pub fn new(
        left: BoxedIter,
        right: BoxedIter,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> MergeJoinIter {
        MergeJoinIter {
            left,
            right,
            left_keys,
            right_keys,
            left_row: None,
            right_row: None,
            right_group: Vec::new(),
            right_group_key: Vec::new(),
            emit_idx: 0,
            started: false,
        }
    }

    fn advance_left(&mut self) -> Result<()> {
        self.left_row = match self.left.next()? {
            Some(r) => Some((eval_all(&self.left_keys, &r)?, r)),
            None => None,
        };
        Ok(())
    }

    fn advance_right(&mut self) -> Result<()> {
        self.right_row = match self.right.next()? {
            Some(r) => Some((eval_all(&self.right_keys, &r)?, r)),
            None => None,
        };
        Ok(())
    }

    /// Fill `right_group` with every right row matching `key` (the right
    /// cursor is already positioned at the first such row).
    fn gather_right_group(&mut self, key: &[Value]) -> Result<()> {
        self.right_group.clear();
        self.right_group_key = key.to_vec();
        while let Some((rk, row)) = &self.right_row {
            if cmp_keys(rk, key) == Ordering::Equal {
                self.right_group.push(row.clone());
                self.advance_right()?;
            } else {
                break;
            }
        }
        Ok(())
    }
}

impl RowIterator for MergeJoinIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if !self.started {
            self.started = true;
            self.advance_left()?;
            self.advance_right()?;
        }
        loop {
            // Emit pending cross-products of the current left row with
            // the buffered right group.
            if self.emit_idx < self.right_group.len() {
                let (_, lrow) = self.left_row.as_ref().expect("left row during emit");
                let out = lrow.concat(&self.right_group[self.emit_idx]);
                self.emit_idx += 1;
                return Ok(Some(out));
            }
            // Finished the group for this left row: advance left and see
            // if it matches the same buffered group.
            if !self.right_group.is_empty() {
                self.advance_left()?;
                match &self.left_row {
                    Some((lk, _))
                        if key_joinable(lk)
                            && cmp_keys(lk, &self.right_group_key) == Ordering::Equal =>
                    {
                        self.emit_idx = 0;
                        continue;
                    }
                    _ => {
                        self.right_group.clear();
                        self.emit_idx = 0;
                    }
                }
            }
            let (Some((lk, _)), Some((rk, _))) = (&self.left_row, &self.right_row) else {
                return Ok(None);
            };
            if !key_joinable(lk) {
                self.advance_left()?;
                continue;
            }
            if !key_joinable(rk) {
                self.advance_right()?;
                continue;
            }
            match cmp_keys(lk, rk) {
                Ordering::Less => self.advance_left()?,
                Ordering::Greater => self.advance_right()?,
                Ordering::Equal => {
                    let key = lk.clone();
                    self.gather_right_group(&key)?;
                    self.emit_idx = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::{int_rows, test_context};
    use crate::exec::{collect, ValuesIter};
    use crate::governor::QueryGovernor;
    use seqdb_storage::TempSpace;

    /// A private temp space so spill-count and leak assertions can't race
    /// with other tests sharing the process-wide system temp dir.
    fn isolated_temp(tag: &str) -> Arc<TempSpace> {
        let dir =
            std::env::temp_dir().join(format!("seqdb-join-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempSpace::open(dir).unwrap()
    }

    fn kv_rows(pairs: impl Iterator<Item = (i64, i64)>) -> Vec<Row> {
        pairs
            .map(|(k, v)| Row::new(vec![Value::Int(k), Value::Int(v)]))
            .collect()
    }

    fn hash_join(left: Vec<Row>, right: Vec<Row>, ctx: ExecContext, dop: usize) -> HashJoinIter {
        HashJoinIter::new(
            Box::new(ValuesIter::new(left)),
            Box::new(ValuesIter::new(right)),
            vec![Expr::col(0, "k")],
            vec![Expr::col(0, "k")],
            false,
            dop,
            ctx,
        )
    }

    fn join_all(kind: &str, left: Vec<Row>, right: Vec<Row>) -> Vec<(i64, i64)> {
        let lk = vec![Expr::col(0, "k")];
        let rk = vec![Expr::col(0, "k")];
        let it: BoxedIter = match kind {
            "hash" => Box::new(hash_join(left, right, test_context(), 1)),
            _ => Box::new(MergeJoinIter::new(
                Box::new(ValuesIter::new(left)),
                Box::new(ValuesIter::new(right)),
                lk,
                rk,
            )),
        };
        let mut out: Vec<(i64, i64)> = collect(it)
            .unwrap()
            .iter()
            .map(|r| (r[1].as_int().unwrap(), r[3].as_int().unwrap()))
            .collect();
        out.sort();
        out
    }

    fn left_rows() -> Vec<Row> {
        // (key, payload) sorted by key with duplicates
        int_rows(&[&[1, 100], &[2, 200], &[2, 201], &[4, 400]])
    }

    fn right_rows() -> Vec<Row> {
        int_rows(&[&[2, 20], &[2, 21], &[3, 30], &[4, 40]])
    }

    #[test]
    fn hash_and_merge_agree_with_duplicates() {
        let expected = vec![(200, 20), (200, 21), (201, 20), (201, 21), (400, 40)];
        assert_eq!(join_all("hash", left_rows(), right_rows()), expected);
        assert_eq!(join_all("merge", left_rows(), right_rows()), expected);
    }

    #[test]
    fn nulls_never_join() {
        let left = vec![
            Row::new(vec![Value::Null, Value::Int(1)]),
            Row::new(vec![Value::Int(7), Value::Int(2)]),
        ];
        let right = vec![
            Row::new(vec![Value::Null, Value::Int(3)]),
            Row::new(vec![Value::Int(7), Value::Int(4)]),
        ];
        assert_eq!(join_all("hash", left.clone(), right.clone()), vec![(2, 4)]);
        assert_eq!(join_all("merge", left, right), vec![(2, 4)]);
    }

    #[test]
    fn disjoint_inputs_produce_nothing() {
        let left = int_rows(&[&[1, 1], &[2, 2]]);
        let right = int_rows(&[&[3, 3], &[4, 4]]);
        assert!(join_all("hash", left.clone(), right.clone()).is_empty());
        assert!(join_all("merge", left, right).is_empty());
    }

    #[test]
    fn empty_sides() {
        assert!(join_all("merge", vec![], right_rows()).is_empty());
        assert!(join_all("merge", left_rows(), vec![]).is_empty());
        assert!(join_all("hash", vec![], vec![]).is_empty());
    }

    #[test]
    fn probe_first_restores_left_right_order() {
        // build = the plan's RIGHT side; output must still be left ++ right.
        let it = HashJoinIter::new(
            Box::new(ValuesIter::new(int_rows(&[&[7, 70]]))), // right (build)
            Box::new(ValuesIter::new(int_rows(&[&[7, 1]]))),  // left (probe)
            vec![Expr::col(0, "k")],
            vec![Expr::col(0, "k")],
            true,
            1,
            test_context(),
        );
        let rows = collect(Box::new(it)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Int(1), "left payload first");
        assert_eq!(rows[0][3], Value::Int(70), "right payload second");
    }

    #[test]
    fn hash_join_spills_and_matches_merge_under_tight_budget() {
        // A budget >4x smaller than the build side: the join must spill,
        // recurse, and still produce exactly the merge-join result.
        let left = kv_rows((0..800i64).map(|i| (i % 200, i)));
        let right = kv_rows((0..200i64).map(|i| (i % 200, i)));
        let mut sorted_left = left.clone();
        sorted_left.sort_by_key(|r| r[0].as_int().unwrap());
        let mut sorted_right = right.clone();
        sorted_right.sort_by_key(|r| r[0].as_int().unwrap());
        let expected = join_all("merge", sorted_left, sorted_right);

        for dop in [1usize, 4] {
            let mut ctx = test_context();
            ctx.gov = QueryGovernor::new(None, Some(16 * 1024));
            ctx.temp = isolated_temp(&format!("spill-dop{dop}"));
            let gov = ctx.gov.clone();
            let temp = ctx.temp.clone();
            let it = hash_join(left.clone(), right.clone(), ctx, dop);
            let mut got: Vec<(i64, i64)> = collect(Box::new(it))
                .unwrap()
                .iter()
                .map(|r| (r[1].as_int().unwrap(), r[3].as_int().unwrap()))
                .collect();
            got.sort();
            assert_eq!(got, expected, "dop={dop}");
            assert!(temp.spill_count() > 0, "budget must have forced spilling");
            assert_eq!(gov.mem_used(), 0, "all charges released");
            assert_eq!(temp.live_files().unwrap(), 0, "no leaked spill files");
        }
    }

    #[test]
    fn mid_stream_drop_releases_charges_and_files() {
        // Abandon a spilled join halfway through its output (KILL path):
        // RAII must still delete every partition file and release memory.
        let left = kv_rows((0..400i64).map(|i| (i % 50, i)));
        let right = kv_rows((0..100i64).map(|i| (i % 50, i)));
        let mut ctx = test_context();
        ctx.gov = QueryGovernor::new(None, Some(4 * 1024));
        ctx.temp = isolated_temp("kill");
        let gov = ctx.gov.clone();
        let temp = ctx.temp.clone();
        let mut it = hash_join(left, right, ctx, 2);
        for _ in 0..10 {
            it.next().unwrap().expect("join has matches");
        }
        drop(it);
        assert_eq!(gov.mem_used(), 0, "charges released on drop");
        assert_eq!(temp.live_files().unwrap(), 0, "no leaked spill files");
    }

    #[test]
    fn pathological_budget_fails_typed_after_bounded_recursion() {
        let left = kv_rows((0..100i64).map(|i| (i, i)));
        let right = int_rows(&[&[1, 1]]);
        let mut ctx = test_context();
        ctx.gov = QueryGovernor::new(None, Some(1));
        ctx.temp = isolated_temp("starved");
        let gov = ctx.gov.clone();
        let temp = ctx.temp.clone();
        let it = hash_join(left, right, ctx, 1);
        let err = collect(Box::new(it)).unwrap_err();
        assert!(
            matches!(err, seqdb_types::DbError::ResourceExhausted(_)),
            "{err}"
        );
        assert_eq!(gov.mem_used(), 0, "charges released on failure");
        assert_eq!(temp.live_files().unwrap(), 0, "no leaked spill files");
    }

    #[test]
    fn merge_join_large_cross_groups() {
        // 3 left dups x 4 right dups on one key = 12 output rows.
        let left = int_rows(&[&[5, 1], &[5, 2], &[5, 3]]);
        let right = int_rows(&[&[5, 10], &[5, 11], &[5, 12], &[5, 13]]);
        assert_eq!(join_all("merge", left, right).len(), 12);
    }

    #[test]
    fn bloom_filter_skips_probe_io_for_unmatched_keys() {
        // Build keys 0..100 under a tight budget (so the join spills and
        // the bloom is built); probe keys 1000..2000 can never match.
        // Without the filter every probe row would be written to its
        // partition (~20 KiB of probe I/O); with it only the rare false
        // positives are, so total spill I/O stays near the build side's
        // own few KiB.
        let left = kv_rows((0..100i64).map(|i| (i, i)));
        let right = kv_rows((1000..2000i64).map(|i| (i, i)));
        let mut ctx = test_context();
        ctx.gov = QueryGovernor::new(None, Some(1024));
        ctx.temp = isolated_temp("bloom");
        let temp = ctx.temp.clone();
        let it = hash_join(left, right, ctx, 1);
        let rows = collect(Box::new(it)).unwrap();
        assert!(rows.is_empty());
        assert!(temp.spill_count() > 0, "build side must have spilled");
        assert!(
            temp.bytes_written() < 8 * 1024,
            "bloom filter must suppress probe-side partition writes, wrote {} bytes",
            temp.bytes_written()
        );
        assert_eq!(temp.live_files().unwrap(), 0);
    }
}

//! Join operators: hash join (unordered inputs) and merge join (inputs
//! ordered on the join keys, e.g. via clustered index scans).
//!
//! The paper's consensus query (§5.3.3) joins `Alignment` with `Read` via
//! a *parallel merge join* enabled by clustered indexes — "about 1.6
//! million alignments per second" on warm buffers. [`MergeJoinIter`] is
//! that operator; the planner picks it whenever both sides come from
//! index scans with compatible key prefixes.

use std::cmp::Ordering;
use std::sync::Arc;

use seqdb_types::{Result, Row, Value};

use crate::exec::{BoxedIter, RowIterator};
use crate::expr::Expr;
use crate::governor::{MemCharge, QueryGovernor};

fn eval_all(exprs: &[Expr], row: &Row) -> Result<Vec<Value>> {
    exprs.iter().map(|e| e.eval(row)).collect()
}

fn cmp_keys(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.total_cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Keys containing NULL never match (SQL equi-join semantics).
fn key_joinable(k: &[Value]) -> bool {
    !k.iter().any(Value::is_null)
}

/// Inner equi hash join. Builds on the left input, probes with the right,
/// emits `left ++ right` rows.
///
/// The build table is charged byte-for-byte against the query's memory
/// budget. There is no spill path for joins (the planner picks a merge
/// join for large inputs), so exhaustion fails the query with
/// `ResourceExhausted` — never the process. The charge is released when
/// the iterator drops.
pub struct HashJoinIter {
    build: Option<BoxedIter>,
    probe: BoxedIter,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    table: std::collections::HashMap<Vec<Value>, Vec<Row>>,
    charge: MemCharge,
    /// Matches pending for the current probe row.
    pending: std::vec::IntoIter<Row>,
    current_probe: Option<Row>,
}

impl HashJoinIter {
    pub fn new(
        build: BoxedIter,
        probe: BoxedIter,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        gov: Arc<QueryGovernor>,
    ) -> HashJoinIter {
        HashJoinIter {
            build: Some(build),
            probe,
            left_keys,
            right_keys,
            table: std::collections::HashMap::new(),
            charge: MemCharge::new(gov),
            pending: Vec::new().into_iter(),
            current_probe: None,
        }
    }
}

impl RowIterator for HashJoinIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut build) = self.build.take() {
            while let Some(row) = build.next()? {
                let key = eval_all(&self.left_keys, &row)?;
                if key_joinable(&key) {
                    self.charge.grow(row.size_bytes())?;
                    self.table.entry(key).or_default().push(row);
                }
            }
        }
        loop {
            if let Some(left) = self.pending.next() {
                let probe = self.current_probe.as_ref().expect("probe row set");
                return Ok(Some(left.concat(probe)));
            }
            match self.probe.next()? {
                None => return Ok(None),
                Some(row) => {
                    let key = eval_all(&self.right_keys, &row)?;
                    if key_joinable(&key) {
                        if let Some(matches) = self.table.get(&key) {
                            self.pending = matches.clone().into_iter();
                            self.current_probe = Some(row);
                        }
                    }
                }
            }
        }
    }
}

/// Inner merge join over inputs sorted ascending on their join keys.
/// Handles duplicate keys on both sides by buffering the right-side group.
pub struct MergeJoinIter {
    left: BoxedIter,
    right: BoxedIter,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    left_row: Option<(Vec<Value>, Row)>,
    right_row: Option<(Vec<Value>, Row)>,
    /// Buffered right rows sharing the current key (for left dups).
    right_group: Vec<Row>,
    right_group_key: Vec<Value>,
    emit_idx: usize,
    started: bool,
}

impl MergeJoinIter {
    pub fn new(
        left: BoxedIter,
        right: BoxedIter,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> MergeJoinIter {
        MergeJoinIter {
            left,
            right,
            left_keys,
            right_keys,
            left_row: None,
            right_row: None,
            right_group: Vec::new(),
            right_group_key: Vec::new(),
            emit_idx: 0,
            started: false,
        }
    }

    fn advance_left(&mut self) -> Result<()> {
        self.left_row = match self.left.next()? {
            Some(r) => Some((eval_all(&self.left_keys, &r)?, r)),
            None => None,
        };
        Ok(())
    }

    fn advance_right(&mut self) -> Result<()> {
        self.right_row = match self.right.next()? {
            Some(r) => Some((eval_all(&self.right_keys, &r)?, r)),
            None => None,
        };
        Ok(())
    }

    /// Fill `right_group` with every right row matching `key` (the right
    /// cursor is already positioned at the first such row).
    fn gather_right_group(&mut self, key: &[Value]) -> Result<()> {
        self.right_group.clear();
        self.right_group_key = key.to_vec();
        while let Some((rk, row)) = &self.right_row {
            if cmp_keys(rk, key) == Ordering::Equal {
                self.right_group.push(row.clone());
                self.advance_right()?;
            } else {
                break;
            }
        }
        Ok(())
    }
}

impl RowIterator for MergeJoinIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if !self.started {
            self.started = true;
            self.advance_left()?;
            self.advance_right()?;
        }
        loop {
            // Emit pending cross-products of the current left row with
            // the buffered right group.
            if self.emit_idx < self.right_group.len() {
                let (_, lrow) = self.left_row.as_ref().expect("left row during emit");
                let out = lrow.concat(&self.right_group[self.emit_idx]);
                self.emit_idx += 1;
                return Ok(Some(out));
            }
            // Finished the group for this left row: advance left and see
            // if it matches the same buffered group.
            if !self.right_group.is_empty() {
                self.advance_left()?;
                match &self.left_row {
                    Some((lk, _))
                        if key_joinable(lk)
                            && cmp_keys(lk, &self.right_group_key) == Ordering::Equal =>
                    {
                        self.emit_idx = 0;
                        continue;
                    }
                    _ => {
                        self.right_group.clear();
                        self.emit_idx = 0;
                    }
                }
            }
            let (Some((lk, _)), Some((rk, _))) = (&self.left_row, &self.right_row) else {
                return Ok(None);
            };
            if !key_joinable(lk) {
                self.advance_left()?;
                continue;
            }
            if !key_joinable(rk) {
                self.advance_right()?;
                continue;
            }
            match cmp_keys(lk, rk) {
                Ordering::Less => self.advance_left()?,
                Ordering::Greater => self.advance_right()?,
                Ordering::Equal => {
                    let key = lk.clone();
                    self.gather_right_group(&key)?;
                    self.emit_idx = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::int_rows;
    use crate::exec::{collect, ValuesIter};

    fn join_all(kind: &str, left: Vec<Row>, right: Vec<Row>) -> Vec<(i64, i64)> {
        let lk = vec![Expr::col(0, "k")];
        let rk = vec![Expr::col(0, "k")];
        let it: BoxedIter = match kind {
            "hash" => Box::new(HashJoinIter::new(
                Box::new(ValuesIter::new(left)),
                Box::new(ValuesIter::new(right)),
                lk,
                rk,
                QueryGovernor::unlimited(),
            )),
            _ => Box::new(MergeJoinIter::new(
                Box::new(ValuesIter::new(left)),
                Box::new(ValuesIter::new(right)),
                lk,
                rk,
            )),
        };
        let mut out: Vec<(i64, i64)> = collect(it)
            .unwrap()
            .iter()
            .map(|r| (r[1].as_int().unwrap(), r[3].as_int().unwrap()))
            .collect();
        out.sort();
        out
    }

    fn left_rows() -> Vec<Row> {
        // (key, payload) sorted by key with duplicates
        int_rows(&[&[1, 100], &[2, 200], &[2, 201], &[4, 400]])
    }

    fn right_rows() -> Vec<Row> {
        int_rows(&[&[2, 20], &[2, 21], &[3, 30], &[4, 40]])
    }

    #[test]
    fn hash_and_merge_agree_with_duplicates() {
        let expected = vec![(200, 20), (200, 21), (201, 20), (201, 21), (400, 40)];
        assert_eq!(join_all("hash", left_rows(), right_rows()), expected);
        assert_eq!(join_all("merge", left_rows(), right_rows()), expected);
    }

    #[test]
    fn nulls_never_join() {
        let left = vec![
            Row::new(vec![Value::Null, Value::Int(1)]),
            Row::new(vec![Value::Int(7), Value::Int(2)]),
        ];
        let right = vec![
            Row::new(vec![Value::Null, Value::Int(3)]),
            Row::new(vec![Value::Int(7), Value::Int(4)]),
        ];
        assert_eq!(join_all("hash", left.clone(), right.clone()), vec![(2, 4)]);
        assert_eq!(join_all("merge", left, right), vec![(2, 4)]);
    }

    #[test]
    fn disjoint_inputs_produce_nothing() {
        let left = int_rows(&[&[1, 1], &[2, 2]]);
        let right = int_rows(&[&[3, 3], &[4, 4]]);
        assert!(join_all("hash", left.clone(), right.clone()).is_empty());
        assert!(join_all("merge", left, right).is_empty());
    }

    #[test]
    fn empty_sides() {
        assert!(join_all("merge", vec![], right_rows()).is_empty());
        assert!(join_all("merge", left_rows(), vec![]).is_empty());
        assert!(join_all("hash", vec![], vec![]).is_empty());
    }

    #[test]
    fn hash_join_build_side_respects_memory_budget() {
        let gov = QueryGovernor::new(None, Some(128));
        let left: Vec<Row> = (0..100i64)
            .map(|i| int_rows(&[&[i, i]]).remove(0))
            .collect();
        let right = int_rows(&[&[1, 1]]);
        let it = HashJoinIter::new(
            Box::new(ValuesIter::new(left)),
            Box::new(ValuesIter::new(right)),
            vec![Expr::col(0, "k")],
            vec![Expr::col(0, "k")],
            gov.clone(),
        );
        let err = collect(Box::new(it)).unwrap_err();
        assert!(
            matches!(err, seqdb_types::DbError::ResourceExhausted(_)),
            "{err}"
        );
        // Dropping the failed iterator released every charged byte.
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn merge_join_large_cross_groups() {
        // 3 left dups x 4 right dups on one key = 12 output rows.
        let left = int_rows(&[&[5, 1], &[5, 2], &[5, 3]]);
        let right = int_rows(&[&[5, 10], &[5, 11], &[5, 12], &[5, 13]]);
        assert_eq!(join_all("merge", left, right).len(), 12);
    }
}

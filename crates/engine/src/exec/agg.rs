//! Aggregation operators: hash aggregate (unordered input) and stream
//! aggregate (input sorted by the group columns).
//!
//! Both work off [`AggSpec`]s that pair an [`Aggregate`] factory with its
//! argument expressions — built-in and user-defined aggregates are
//! indistinguishable here, which is the extensibility claim of §2.3.4.
//! The stream aggregate is what makes the paper's sliding-window
//! `AssembleConsensus` plan non-blocking: with input ordered by
//! chromosome (and alignment position within it), each group finishes as
//! soon as its last row has been consumed.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use seqdb_storage::tempspace::{SpillReader, SpillWriter, TempSpace};
use seqdb_storage::{SpillTally, WaitClass};
use seqdb_types::{DbError, Result, Row, Value};

use crate::exec::rowser;
use crate::exec::{BoxedIter, ExecContext, RowBatch, RowIterator};
use crate::expr::Expr;
use crate::governor::{MemCharge, QueryGovernor};
use crate::udx::{protect, AggState, Aggregate};

/// Estimated heap overhead per aggregate state (box + accumulator).
const STATE_OVERHEAD: usize = 64;
/// Estimated hash-map entry overhead per group.
const GROUP_OVERHEAD: usize = 48;
/// Fan-out of one hash-agg spill pass.
pub(crate) const SPILL_PARTITIONS: usize = 4;
/// Recursion bound for repartitioning; beyond this the budget is simply
/// too small for the data and the query fails with `ResourceExhausted`.
const MAX_SPILL_DEPTH: u32 = 6;
/// Estimated heap overhead per buffered output row (Vec + Row headers).
const ROW_OVERHEAD: usize = 32;

/// One aggregate call in a GROUP BY query.
#[derive(Clone)]
pub struct AggSpec {
    pub factory: std::sync::Arc<dyn Aggregate>,
    /// Argument expressions over the input row. Empty = `COUNT(*)`.
    pub args: Vec<Expr>,
    /// Output column name (for schemas and EXPLAIN).
    pub name: String,
}

impl AggSpec {
    pub fn new(
        factory: std::sync::Arc<dyn Aggregate>,
        args: Vec<Expr>,
        name: impl Into<String>,
    ) -> AggSpec {
        AggSpec {
            factory,
            args,
            name: name.into(),
        }
    }

    /// Fresh accumulator, with the UDA's `Init` under panic protection.
    fn create_state(&self) -> Result<Box<dyn AggState>> {
        protect(self.factory.name(), || Ok(self.factory.create()))
    }

    fn update(&self, state: &mut Box<dyn AggState>, row: &Row) -> Result<()> {
        if self.args.is_empty() {
            protect(self.factory.name(), || state.update(&[]))
        } else {
            let vals: Vec<Value> = self
                .args
                .iter()
                .map(|e| e.eval(row))
                .collect::<Result<_>>()?;
            protect(self.factory.name(), || state.update(&vals))
        }
    }

    /// Batched counterpart of [`AggSpec::update`]: fold a whole run of
    /// rows into one state under a *single* panic guard, reusing one
    /// argument scratch. The per-row `catch_unwind` and argument `Vec`
    /// are exactly what the vectorized path amortizes away.
    fn update_run(&self, state: &mut Box<dyn AggState>, batch: &RowBatch) -> Result<()> {
        if self.args.is_empty() {
            // Argument-free runs collapse to one accumulator call
            // (`COUNT(*)` over a batch adds the run length).
            return protect(self.factory.name(), || {
                state.update_n(&[], batch.len() as u64)
            });
        }
        // A single bare-column argument feeds the stored value straight to
        // the accumulator: no expression dispatch, no per-row clone.
        if let [Expr::Column { index, name }] = self.args.as_slice() {
            let col = *index;
            return protect(self.factory.name(), || {
                for row in batch.iter() {
                    let v = row.get(col).ok_or_else(|| {
                        DbError::Execution(format!(
                            "column {name} (#{col}) out of range for row of {} values",
                            row.len()
                        ))
                    })?;
                    state.update(std::slice::from_ref(v))?;
                }
                Ok(())
            });
        }
        let mut vals: Vec<Value> = Vec::with_capacity(self.args.len());
        protect(self.factory.name(), || {
            for row in batch.iter() {
                crate::expr::eval_into(&self.args, row, &mut vals)?;
                state.update(&vals)?;
            }
            Ok(())
        })
    }
}

/// Fresh states for every aggregate in the list.
fn create_states(aggs: &[AggSpec]) -> Result<Vec<Box<dyn AggState>>> {
    aggs.iter().map(|a| a.create_state()).collect()
}

/// Rough bytes held by a group key.
fn key_bytes(key: &[Value]) -> usize {
    key.iter().map(|v| v.size_bytes()).sum()
}

/// Memory cost charged for admitting one new group.
pub(crate) fn group_cost(key: &[Value], naggs: usize) -> usize {
    key_bytes(key) + naggs * STATE_OVERHEAD + GROUP_OVERHEAD
}

/// Grouped aggregation state: group key -> one state per aggregate.
pub type GroupedStates = HashMap<Vec<Value>, Vec<Box<dyn AggState>>>;

/// Evaluate the grouping key of a row.
pub fn group_key(group_exprs: &[Expr], row: &Row) -> Result<Vec<Value>> {
    group_exprs.iter().map(|e| e.eval(row)).collect()
}

/// Build and run a hash-aggregation over an entire input, returning the
/// grouped states. Shared by the parallel partial plan in
/// [`crate::parallel`] and the recursion base of the governed serial
/// operator. New groups are charged against `charge`; with no spill path
/// here, exhaustion fails with [`DbError::ResourceExhausted`]. The caller
/// keeps `charge` alive for as long as the returned map exists.
pub fn aggregate_into_map(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    charge: &mut MemCharge,
) -> Result<GroupedStates> {
    let mut groups: GroupedStates = HashMap::new();
    while let Some(row) = input.next()? {
        let key = group_key(group_exprs, &row)?;
        let states = match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                charge.grow(group_cost(e.key(), aggs.len()))?;
                e.insert(create_states(aggs)?)
            }
        };
        for (spec, state) in aggs.iter().zip(states.iter_mut()) {
            spec.update(state, &row)?;
        }
    }
    Ok(groups)
}

/// Merge a partial aggregation map into an accumulator map (the "final"
/// side of a parallel aggregate). UDA `Merge` runs under panic
/// protection; `aggs` supplies the function names for error reporting.
pub fn merge_maps(into: &mut GroupedStates, from: GroupedStates, aggs: &[AggSpec]) -> Result<()> {
    for (key, states) in from {
        match into.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(states);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for ((acc, part), spec) in e.get_mut().iter_mut().zip(states).zip(aggs) {
                    protect(spec.factory.name(), || acc.merge(part))?;
                }
            }
        }
    }
    Ok(())
}

/// Turn a finished group map into output rows (group values then
/// aggregate results). UDA `Terminate` runs under panic protection.
pub fn finish_map(groups: GroupedStates, aggs: &[AggSpec]) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        out.push(finish_group(key, states, aggs)?);
    }
    Ok(out)
}

/// Hash a group key for spill partitioning. `depth` salts the hash so
/// each repartition pass splits differently from the one that overflowed.
/// Shared with the hybrid hash join, which partitions on the same salted
/// hash so both spill paths recurse identically.
pub(crate) fn partition_of(key: &[Value], depth: u32) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    depth.hash(&mut h);
    key.hash(&mut h);
    (h.finish() as usize) % SPILL_PARTITIONS
}

/// Append one rowser-framed row to a spill partition (same u32-length
/// framing as the external sort's runs).
pub(crate) fn write_spill_row(w: &mut SpillWriter, row: &Row) -> Result<()> {
    thread_local! {
        // One frame buffer per worker thread: spilling a row allocates
        // nothing in the steady state.
        static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        rowser::frame_row(&mut buf, row);
        w.write_all(&buf)
    })
}

/// Iterate rows back out of a finished spill partition.
pub(crate) struct SpillRowIter {
    reader: SpillReader,
    /// Reused frame buffer; reading a spilled row back allocates only
    /// what the row's own values need.
    payload: Vec<u8>,
}

impl SpillRowIter {
    pub(crate) fn new(reader: SpillReader) -> SpillRowIter {
        SpillRowIter {
            reader,
            payload: Vec::new(),
        }
    }
}

impl RowIterator for SpillRowIter {
    fn next(&mut self) -> Result<Option<Row>> {
        let mut lenbuf = [0u8; 4];
        if !self.reader.read_exact(&mut lenbuf)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(lenbuf) as usize;
        self.payload.resize(len, 0);
        if !self.reader.read_exact(&mut self.payload)? {
            return Err(DbError::Storage("truncated aggregate spill".into()));
        }
        let mut pos = 0;
        Ok(Some(rowser::read_row(&self.payload, &mut pos)?))
    }
}

/// Rough bytes held by one buffered output row.
fn row_cost(row: &Row) -> usize {
    key_bytes(row.values()) + ROW_OVERHEAD
}

/// Governed buffer for a blocking operator's finished rows. Buffered
/// rows are charged against the query budget (the ROADMAP gap: a query
/// with millions of tiny groups could overshoot *after* spilling its
/// hash table correctly, because the finished `Vec<Row>` was free).
/// When the budget rejects a row the buffer degrades like everything
/// else: overflow rows go to one tempspace spill file and stream back
/// out on iteration. Sticky, for the same reason the hash table's spill
/// mode is: flapping between memory and disk would reorder nothing here,
/// but one file and one mode keep the accounting honest.
pub(crate) struct OutputBuffer {
    rows: Vec<Row>,
    charge: MemCharge,
    temp: Arc<TempSpace>,
    /// Spill attribution sinks of the owning context (query + operator).
    tallies: Vec<Arc<SpillTally>>,
    spill: Option<SpillWriter>,
    total: usize,
    // Phase budgeting: the buffer takes at most a quarter of the query
    // budget, so it can never starve the hash tables of the repartition
    // passes that still have rows to aggregate (which would turn a
    // spillable query into a depth-exhaustion failure).
    cap: Option<usize>,
    /// Wait class for overflow spill I/O (`SpillIo` for aggregates,
    /// `JoinSpill` when buffering joined rows).
    class: WaitClass,
}

impl OutputBuffer {
    pub(crate) fn new(ctx: &ExecContext) -> OutputBuffer {
        OutputBuffer::with_class(ctx, WaitClass::SpillIo)
    }

    pub(crate) fn with_class(ctx: &ExecContext, class: WaitClass) -> OutputBuffer {
        let cap = ctx.gov.mem_limit().map(|l| l / 4);
        OutputBuffer::with_class_capped(ctx, class, cap)
    }

    /// Like [`OutputBuffer::with_class`] but with an explicit memory cap:
    /// concurrent buffers (one per parallel join partition) must split
    /// the output quarter of the budget between them.
    pub(crate) fn with_class_capped(
        ctx: &ExecContext,
        class: WaitClass,
        cap: Option<usize>,
    ) -> OutputBuffer {
        OutputBuffer {
            rows: Vec::new(),
            charge: MemCharge::new(ctx.gov.clone()),
            temp: ctx.temp.clone(),
            tallies: ctx.spill_tallies(),
            spill: None,
            total: 0,
            cap,
            class,
        }
    }

    pub(crate) fn push(&mut self, row: Row) -> Result<()> {
        self.total += 1;
        let cost = row_cost(&row);
        if self.spill.is_none()
            && self.cap.is_none_or(|c| self.charge.bytes() + cost <= c)
            && self.charge.try_grow(cost)
        {
            self.rows.push(row);
            return Ok(());
        }
        if self.spill.is_none() {
            self.spill = Some(
                self.temp
                    .create_spill_class(self.tallies.clone(), self.class)?,
            );
        }
        match self.spill.as_mut() {
            Some(writer) => write_spill_row(writer, &row),
            None => Err(DbError::Execution("output spill writer missing".into())),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub(crate) fn into_rows(self) -> Result<OutputRows> {
        let spilled = match self.spill {
            Some(writer) => Some(SpillRowIter::new(writer.finish()?)),
            None => None,
        };
        Ok(OutputRows {
            in_mem: self.rows.into_iter(),
            _charge: Some(self.charge),
            spilled,
            total: self.total,
        })
    }
}

/// Streams an [`OutputBuffer`]'s rows back out: the in-memory prefix
/// first, then any spilled overflow. Holds the buffer's memory charge
/// until dropped (the spill file deletes itself with its reader).
pub(crate) struct OutputRows {
    in_mem: std::vec::IntoIter<Row>,
    _charge: Option<MemCharge>,
    spilled: Option<SpillRowIter>,
    total: usize,
}

impl OutputRows {
    /// A purely in-memory, uncharged row stream (for synthesized rows
    /// like the empty-input global aggregate).
    pub(crate) fn from_vec(rows: Vec<Row>) -> OutputRows {
        let total = rows.len();
        OutputRows {
            in_mem: rows.into_iter(),
            _charge: None,
            spilled: None,
            total,
        }
    }

    /// Total rows this stream will yield (including already-yielded).
    pub(crate) fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl RowIterator for OutputRows {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.in_mem.next() {
            return Ok(Some(row));
        }
        match self.spilled.as_mut() {
            Some(s) => s.next(),
            None => Ok(None),
        }
    }
}

/// Chain several spill partitions into one row stream (the parallel
/// coordinator reads the same partition index from every worker as one
/// logical partition).
pub(crate) struct ChainRows {
    parts: Vec<SpillRowIter>,
    idx: usize,
}

impl ChainRows {
    pub(crate) fn new(parts: Vec<SpillRowIter>) -> ChainRows {
        ChainRows { parts, idx: 0 }
    }
}

impl RowIterator for ChainRows {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(part) = self.parts.get_mut(self.idx) {
            if let Some(row) = part.next()? {
                return Ok(Some(row));
            }
            self.idx += 1;
        }
        Ok(None)
    }
}

/// Governed hash aggregation with graceful degradation: when the memory
/// budget runs out, rows for groups already in memory keep aggregating in
/// place, while rows for *new* groups are spilled to hash partitions in
/// `storage::tempspace` (raw input rows — `Box<dyn AggState>` has no
/// serialized form). After the input drains, in-memory groups are
/// emitted, their memory released, and each partition is aggregated
/// recursively with a re-salted hash. This is the hybrid-hash analogue
/// of SQL Server's Hash Match spilling to tempdb.
pub fn aggregate_governed(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    let mut it = aggregate_governed_rows(input, group_exprs, aggs, ctx)?;
    let mut rows = Vec::new();
    while let Some(row) = it.next()? {
        rows.push(row);
    }
    Ok(rows)
}

/// Like [`aggregate_governed`] but keeps the finished rows inside their
/// governed [`OutputRows`] stream: the in-memory prefix stays charged
/// against the budget and the overflow streams from its spill file,
/// instead of collecting everything into an unaccounted `Vec`.
pub(crate) fn aggregate_governed_rows(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> Result<OutputRows> {
    let mut out = OutputBuffer::new(ctx);
    let mut resident = GroupedStates::new();
    aggregate_level(input, group_exprs, aggs, ctx, 0, &mut resident, &mut out)?;
    out.into_rows()
}

/// One pass of the hybrid hash aggregation. Groups that fit the budget
/// aggregate in memory; overflow rows partition to tempspace and recurse
/// with a re-salted hash. `resident` is the parallel coordinator's merged
/// worker map: a spilled key that *also* lives there (one worker kept it
/// in memory while another spilled it) must merge into the resident
/// states instead of being emitted — emitting both would double that
/// group. The serial path passes an empty resident map.
pub(crate) fn aggregate_level(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
    depth: u32,
    resident: &mut GroupedStates,
    out: &mut OutputBuffer,
) -> Result<()> {
    let mut charge = MemCharge::new(ctx.gov.clone());
    let (mut groups, partitions) = aggregate_partial_spilling(
        input,
        group_exprs,
        aggs,
        &mut charge,
        &ctx.temp,
        &ctx.spill_tallies(),
        Some(&ctx.gov),
        None,
        depth,
        ctx.batch_size,
    )?;

    // Emit this level's finished groups — except keys the coordinator is
    // still accumulating in its resident map, which merge there instead.
    for (key, states) in groups.drain() {
        if let Some(acc) = resident.get_mut(&key) {
            merge_group(acc, states, aggs)?;
        } else {
            out.push(finish_group(key, states, aggs)?)?;
        }
    }
    charge.release_all();

    for writer in partitions.into_iter().flatten() {
        let mut part = SpillRowIter::new(writer.finish()?);
        aggregate_level(&mut part, group_exprs, aggs, ctx, depth + 1, resident, out)?;
    }
    Ok(())
}

/// Hash-aggregate an input into a map, spilling rows for new groups to
/// hash partitions once the budget is exhausted instead of failing. This
/// is the budget-respecting core shared by [`aggregate_level`] and the
/// parallel workers (which run it at depth 0 and hand their partitions
/// to the coordinator). At [`MAX_SPILL_DEPTH`] the budget is simply too
/// small and the query fails typed. The caller keeps `charge` alive for
/// as long as the returned map exists.
///
/// `cap` bounds this call's own charge below the governor limit. The
/// parallel workers pass their per-worker share of half the budget so
/// that the coordinator's final phase (which must hold the merged worker
/// map while it re-aggregates the spills) is never starved; recursion
/// levels pass `None` and use whatever the governor still has.
#[allow(clippy::too_many_arguments)]
pub(crate) fn aggregate_partial_spilling(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    charge: &mut MemCharge,
    temp: &Arc<TempSpace>,
    tallies: &[Arc<SpillTally>],
    gov: Option<&Arc<QueryGovernor>>,
    cap: Option<usize>,
    depth: u32,
    batch_hint: usize,
) -> Result<(GroupedStates, Vec<Option<SpillWriter>>)> {
    let mut ticker = crate::governor::Ticker::new();
    let mut groups: GroupedStates = HashMap::new();
    // Once the budget rejects one group, *all* further new groups go to
    // the spill. Without this the budget could free up mid-stream and
    // admit a key whose earlier rows were already spilled, emitting that
    // group twice.
    let mut spilling = false;
    let mut partitions: Vec<Option<SpillWriter>> = (0..SPILL_PARTITIONS).map(|_| None).collect();

    // With a batch hint the input is consumed through the batch protocol
    // — one governor tick per batch instead of per row; `batch_hint == 0`
    // keeps the scalar pull (forced row-at-a-time mode).
    let mut buf = Vec::new().into_iter();
    loop {
        let row = if batch_hint > 0 {
            match buf.next() {
                Some(row) => row,
                None => {
                    let Some(batch) = input.next_batch(batch_hint)? else {
                        break;
                    };
                    if let Some(gov) = gov {
                        ticker.tick_batch(gov)?;
                    }
                    // No grouping: the whole run belongs to the single
                    // global group, so probe the map and enter the panic
                    // guard once per batch instead of once per row. The
                    // batch is consumed through its selection vector, so
                    // filtered-out rows are never compacted or moved.
                    if group_exprs.is_empty() && !spilling {
                        let cost = group_cost(&[], aggs.len());
                        let admitted = groups.contains_key(&Vec::new())
                            || (cap.is_none_or(|c| charge.bytes() + cost <= c)
                                && charge.try_grow(cost));
                        if admitted {
                            let states = match groups.entry(Vec::new()) {
                                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(create_states(aggs)?)
                                }
                            };
                            for (spec, state) in aggs.iter().zip(states.iter_mut()) {
                                spec.update_run(state, &batch)?;
                            }
                            continue;
                        }
                    }
                    buf = batch.into_rows().into_iter();
                    continue;
                }
            }
        } else {
            let Some(row) = input.next()? else {
                break;
            };
            if let Some(gov) = gov {
                ticker.tick(gov)?;
            }
            row
        };
        let key = group_key(group_exprs, &row)?;
        if let Some(states) = groups.get_mut(&key) {
            for (spec, state) in aggs.iter().zip(states.iter_mut()) {
                spec.update(state, &row)?;
            }
            continue;
        }
        let cost = group_cost(&key, aggs.len());
        if !spilling && cap.is_none_or(|c| charge.bytes() + cost <= c) && charge.try_grow(cost) {
            let states = groups.entry(key).or_insert(create_states(aggs)?);
            for (spec, state) in aggs.iter().zip(states.iter_mut()) {
                spec.update(state, &row)?;
            }
        } else {
            if depth >= MAX_SPILL_DEPTH {
                return Err(DbError::ResourceExhausted(format!(
                    "hash aggregate exceeded its memory budget even after \
                     {MAX_SPILL_DEPTH} repartition passes"
                )));
            }
            spilling = true;
            let p = partition_of(&key, depth);
            if partitions[p].is_none() {
                partitions[p] = Some(temp.create_spill_tallied(tallies.to_vec())?);
            }
            if let Some(writer) = partitions[p].as_mut() {
                write_spill_row(writer, &row)?;
            }
        }
    }
    Ok((groups, partitions))
}

/// Merge one group's partial states into an accumulator's states (UDA
/// `Merge` under panic protection).
fn merge_group(
    acc: &mut [Box<dyn AggState>],
    partial: Vec<Box<dyn AggState>>,
    aggs: &[AggSpec],
) -> Result<()> {
    for ((a, p), spec) in acc.iter_mut().zip(partial).zip(aggs) {
        protect(spec.factory.name(), || a.merge(p))?;
    }
    Ok(())
}

/// Finish one group into an output row (UDA `Terminate` under panic
/// protection).
fn finish_group(key: Vec<Value>, states: Vec<Box<dyn AggState>>, aggs: &[AggSpec]) -> Result<Row> {
    let mut vals = key;
    for (mut s, spec) in states.into_iter().zip(aggs) {
        vals.push(protect(spec.factory.name(), || s.finish())?);
    }
    Ok(Row::new(vals))
}

/// Blocking hash aggregate. Output order is unspecified (like SQL).
/// Governed: over-budget runs degrade by spilling to tempspace (see
/// [`aggregate_governed`]).
pub struct HashAggIter {
    input: Option<BoxedIter>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    ctx: ExecContext,
    output: Option<OutputRows>,
}

impl HashAggIter {
    pub fn new(
        input: BoxedIter,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        ctx: ExecContext,
    ) -> HashAggIter {
        HashAggIter {
            input: Some(input),
            group_exprs,
            aggs,
            ctx,
            output: None,
        }
    }
}

impl RowIterator for HashAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            let rows =
                aggregate_governed_rows(input.as_mut(), &self.group_exprs, &self.aggs, &self.ctx)?;
            if rows.is_empty() && self.group_exprs.is_empty() {
                // Global aggregate over empty input still yields one row.
                let mut vals = Vec::new();
                for a in &self.aggs {
                    let mut s = a.create_state()?;
                    vals.push(protect(a.factory.name(), || s.finish())?);
                }
                self.output = Some(OutputRows::from_vec(vec![Row::new(vals)]));
            } else {
                self.output = Some(rows);
            }
        }
        match self.output.as_mut() {
            Some(rows) => rows.next(),
            None => Ok(None),
        }
    }
}

/// Streaming aggregate over input already sorted by the group
/// expressions. Non-blocking: emits each group as soon as the key
/// changes, holding only one group's state.
/// One in-flight group of a streaming aggregate.
type CurrentGroup = (Vec<Value>, Vec<Box<dyn AggState>>);

pub struct StreamAggIter {
    input: BoxedIter,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    current: Option<CurrentGroup>,
    /// Accounts the single in-flight group; re-charged at each boundary.
    charge: MemCharge,
    done: bool,
    saw_rows: bool,
    /// Rows per input batch; 0 = scalar pull (forced row-at-a-time).
    batch_hint: usize,
    /// Buffered remainder of the current input batch.
    buf: std::vec::IntoIter<Row>,
    input_done: bool,
}

impl StreamAggIter {
    pub fn new(
        input: BoxedIter,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        gov: Arc<QueryGovernor>,
        batch_hint: usize,
    ) -> StreamAggIter {
        StreamAggIter {
            input,
            group_exprs,
            aggs,
            current: None,
            charge: MemCharge::new(gov),
            done: false,
            saw_rows: false,
            batch_hint,
            buf: Vec::new().into_iter(),
            input_done: false,
        }
    }

    /// Pull one input row, consuming the child through the batch
    /// protocol when a batch hint is set — the streaming aggregate's
    /// output stays row-by-row (one row per group boundary), but its
    /// *input* side moves in batches.
    fn pull(&mut self) -> Result<Option<Row>> {
        if self.batch_hint == 0 {
            return self.input.next();
        }
        loop {
            if let Some(row) = self.buf.next() {
                return Ok(Some(row));
            }
            if self.input_done {
                return Ok(None);
            }
            match self.input.next_batch(self.batch_hint)? {
                Some(batch) => self.buf = batch.into_rows().into_iter(),
                None => {
                    self.input_done = true;
                    return Ok(None);
                }
            }
        }
    }

    /// Start a new in-flight group, accounting its state against the
    /// budget (one group at a time — this is what keeps the stream
    /// aggregate non-blocking and near-constant-space).
    fn open_group(&mut self, key: &[Value]) -> Result<Vec<Box<dyn AggState>>> {
        self.charge.release_all();
        self.charge.grow(group_cost(key, self.aggs.len()))?;
        create_states(&self.aggs)
    }

    fn emit(&mut self, key: Vec<Value>, states: Vec<Box<dyn AggState>>) -> Result<Row> {
        let mut vals = key;
        for (mut s, spec) in states.into_iter().zip(&self.aggs) {
            vals.push(protect(spec.factory.name(), || s.finish())?);
        }
        Ok(Row::new(vals))
    }
}

impl RowIterator for StreamAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.pull()? {
                Some(row) => {
                    self.saw_rows = true;
                    let key = group_key(&self.group_exprs, &row)?;
                    let same_group = matches!(&self.current, Some((ckey, _)) if *ckey == key);
                    if same_group {
                        if let Some((_, states)) = &mut self.current {
                            for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
                                spec.update(state, &row)?;
                            }
                        }
                    } else {
                        // Group boundary (or very first group): start the
                        // new group, then emit the finished one if any.
                        let prev = self.current.take();
                        let mut states = self.open_group(&key)?;
                        for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
                            spec.update(state, &row)?;
                        }
                        self.current = Some((key, states));
                        if let Some((okey, ostates)) = prev {
                            return Ok(Some(self.emit(okey, ostates)?));
                        }
                    }
                }
                None => {
                    self.done = true;
                    self.charge.release_all();
                    if let Some((key, states)) = self.current.take() {
                        return Ok(Some(self.emit(key, states)?));
                    }
                    if !self.saw_rows && self.group_exprs.is_empty() {
                        let mut vals = Vec::new();
                        for a in &self.aggs {
                            let mut s = a.create_state()?;
                            vals.push(protect(a.factory.name(), || s.finish())?);
                        }
                        return Ok(Some(Row::new(vals)));
                    }
                    return Ok(None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::{int_rows, test_context};
    use crate::exec::{collect, ValuesIter};
    use crate::udx::{CountAgg, SumAgg};
    use std::sync::Arc;

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(Arc::new(CountAgg), vec![], "cnt"),
            AggSpec::new(Arc::new(SumAgg), vec![Expr::col(1, "v")], "total"),
        ]
    }

    fn rows() -> Vec<Row> {
        int_rows(&[&[1, 10], &[2, 5], &[1, 30], &[2, 5], &[3, 1]])
    }

    fn normalize(mut rows: Vec<Row>) -> Vec<(i64, i64, i64)> {
        let mut out: Vec<(i64, i64, i64)> = rows
            .drain(..)
            .map(|r| {
                (
                    r[0].as_int().unwrap(),
                    r[1].as_int().unwrap(),
                    r[2].as_int().unwrap(),
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn hash_agg_groups_correctly() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(rows())),
            vec![Expr::col(0, "g")],
            specs(),
            test_context(),
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got, vec![(1, 2, 40), (2, 2, 10), (3, 1, 1)]);
    }

    #[test]
    fn stream_agg_matches_hash_agg_on_sorted_input() {
        let mut sorted = rows();
        sorted.sort_by_key(|r| r[0].as_int().unwrap());
        let it = StreamAggIter::new(
            Box::new(ValuesIter::new(sorted)),
            vec![Expr::col(0, "g")],
            specs(),
            QueryGovernor::unlimited(),
            crate::exec::ExecContext::DEFAULT_BATCH_SIZE,
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got, vec![(1, 2, 40), (2, 2, 10), (3, 1, 1)]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(rows())),
            vec![],
            specs(),
            test_context(),
        );
        let out = collect(Box::new(it)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(5));
        assert_eq!(out[0][1], Value::Int(51));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        for blocking in [true, false] {
            let input = Box::new(ValuesIter::new(vec![]));
            let out = if blocking {
                collect(Box::new(HashAggIter::new(
                    input,
                    vec![],
                    specs(),
                    test_context(),
                )))
                .unwrap()
            } else {
                collect(Box::new(StreamAggIter::new(
                    input,
                    vec![],
                    specs(),
                    QueryGovernor::unlimited(),
                    crate::exec::ExecContext::DEFAULT_BATCH_SIZE,
                )))
                .unwrap()
            };
            assert_eq!(out.len(), 1);
            assert_eq!(out[0][0], Value::Int(0));
            assert_eq!(out[0][1], Value::Null);
        }
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(vec![])),
            vec![Expr::col(0, "g")],
            specs(),
            test_context(),
        );
        assert!(collect(Box::new(it)).unwrap().is_empty());
    }

    #[test]
    fn partial_final_split_equals_single_pass() {
        // The invariant the parallel aggregate relies on.
        let gov = QueryGovernor::unlimited();
        let mut charge = MemCharge::new(gov.clone());
        let all = rows();
        let serial = {
            let mut it = ValuesIter::new(all.clone());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge).unwrap()
        };
        let mut merged = {
            let mut it = ValuesIter::new(all[..2].to_vec());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge).unwrap()
        };
        let part2 = {
            let mut it = ValuesIter::new(all[2..].to_vec());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge).unwrap()
        };
        merge_maps(&mut merged, part2, &specs()).unwrap();
        let a = normalize(finish_map(serial, &specs()).unwrap());
        let b = normalize(finish_map(merged, &specs()).unwrap());
        assert_eq!(a, b);
        drop(charge);
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn tight_budget_spills_and_still_aggregates_exactly() {
        // Many distinct groups under a budget that fits only a handful:
        // the hybrid path must spill, recurse, and still produce exactly
        // one correct row per group.
        let mut ctx = test_context();
        ctx.gov = QueryGovernor::new(None, Some(2 * 1024));
        let input: Vec<Row> = (0..2000i64)
            .map(|i| Row::new(vec![Value::Int(i % 500), Value::Int(1)]))
            .collect();
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(input)),
            vec![Expr::col(0, "g")],
            specs(),
            ctx.clone(),
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got.len(), 500, "each group must appear exactly once");
        for (g, cnt, total) in got {
            assert!((0..500).contains(&g));
            assert_eq!(cnt, 4);
            assert_eq!(total, 4);
        }
        assert_eq!(ctx.gov.mem_used(), 0, "all charges released");
    }

    #[test]
    fn ungoverned_aggregate_into_map_errors_when_exhausted() {
        let gov = QueryGovernor::new(None, Some(256));
        let mut charge = MemCharge::new(gov);
        let input: Vec<Row> = (0..100i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(1)]))
            .collect();
        let mut it = ValuesIter::new(input);
        let err = match aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge) {
            Ok(_) => panic!("expected exhaustion"),
            Err(e) => e,
        };
        assert!(matches!(err, DbError::ResourceExhausted(_)), "{err}");
    }
}

//! Aggregation operators: hash aggregate (unordered input) and stream
//! aggregate (input sorted by the group columns).
//!
//! Both work off [`AggSpec`]s that pair an [`Aggregate`] factory with its
//! argument expressions — built-in and user-defined aggregates are
//! indistinguishable here, which is the extensibility claim of §2.3.4.
//! The stream aggregate is what makes the paper's sliding-window
//! `AssembleConsensus` plan non-blocking: with input ordered by
//! chromosome (and alignment position within it), each group finishes as
//! soon as its last row has been consumed.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use seqdb_storage::tempspace::{SpillReader, SpillWriter};
use seqdb_types::{DbError, Result, Row, Value};

use crate::exec::rowser;
use crate::exec::{BoxedIter, ExecContext, RowIterator};
use crate::expr::Expr;
use crate::governor::{MemCharge, QueryGovernor};
use crate::udx::{protect, AggState, Aggregate};

/// Estimated heap overhead per aggregate state (box + accumulator).
const STATE_OVERHEAD: usize = 64;
/// Estimated hash-map entry overhead per group.
const GROUP_OVERHEAD: usize = 48;
/// Fan-out of one hash-agg spill pass.
const SPILL_PARTITIONS: usize = 4;
/// Recursion bound for repartitioning; beyond this the budget is simply
/// too small for the data and the query fails with `ResourceExhausted`.
const MAX_SPILL_DEPTH: u32 = 6;

/// One aggregate call in a GROUP BY query.
#[derive(Clone)]
pub struct AggSpec {
    pub factory: std::sync::Arc<dyn Aggregate>,
    /// Argument expressions over the input row. Empty = `COUNT(*)`.
    pub args: Vec<Expr>,
    /// Output column name (for schemas and EXPLAIN).
    pub name: String,
}

impl AggSpec {
    pub fn new(
        factory: std::sync::Arc<dyn Aggregate>,
        args: Vec<Expr>,
        name: impl Into<String>,
    ) -> AggSpec {
        AggSpec {
            factory,
            args,
            name: name.into(),
        }
    }

    /// Fresh accumulator, with the UDA's `Init` under panic protection.
    fn create_state(&self) -> Result<Box<dyn AggState>> {
        protect(self.factory.name(), || Ok(self.factory.create()))
    }

    fn update(&self, state: &mut Box<dyn AggState>, row: &Row) -> Result<()> {
        if self.args.is_empty() {
            protect(self.factory.name(), || state.update(&[]))
        } else {
            let vals: Vec<Value> = self
                .args
                .iter()
                .map(|e| e.eval(row))
                .collect::<Result<_>>()?;
            protect(self.factory.name(), || state.update(&vals))
        }
    }
}

/// Fresh states for every aggregate in the list.
fn create_states(aggs: &[AggSpec]) -> Result<Vec<Box<dyn AggState>>> {
    aggs.iter().map(|a| a.create_state()).collect()
}

/// Rough bytes held by a group key.
fn key_bytes(key: &[Value]) -> usize {
    key.iter().map(|v| v.size_bytes()).sum()
}

/// Memory cost charged for admitting one new group.
fn group_cost(key: &[Value], naggs: usize) -> usize {
    key_bytes(key) + naggs * STATE_OVERHEAD + GROUP_OVERHEAD
}

/// Grouped aggregation state: group key -> one state per aggregate.
pub type GroupedStates = HashMap<Vec<Value>, Vec<Box<dyn AggState>>>;

/// Evaluate the grouping key of a row.
pub fn group_key(group_exprs: &[Expr], row: &Row) -> Result<Vec<Value>> {
    group_exprs.iter().map(|e| e.eval(row)).collect()
}

/// Build and run a hash-aggregation over an entire input, returning the
/// grouped states. Shared by the parallel partial plan in
/// [`crate::parallel`] and the recursion base of the governed serial
/// operator. New groups are charged against `charge`; with no spill path
/// here, exhaustion fails with [`DbError::ResourceExhausted`]. The caller
/// keeps `charge` alive for as long as the returned map exists.
pub fn aggregate_into_map(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    charge: &mut MemCharge,
) -> Result<GroupedStates> {
    let mut groups: GroupedStates = HashMap::new();
    while let Some(row) = input.next()? {
        let key = group_key(group_exprs, &row)?;
        let states = match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                charge.grow(group_cost(e.key(), aggs.len()))?;
                e.insert(create_states(aggs)?)
            }
        };
        for (spec, state) in aggs.iter().zip(states.iter_mut()) {
            spec.update(state, &row)?;
        }
    }
    Ok(groups)
}

/// Merge a partial aggregation map into an accumulator map (the "final"
/// side of a parallel aggregate). UDA `Merge` runs under panic
/// protection; `aggs` supplies the function names for error reporting.
pub fn merge_maps(into: &mut GroupedStates, from: GroupedStates, aggs: &[AggSpec]) -> Result<()> {
    for (key, states) in from {
        match into.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(states);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for ((acc, part), spec) in e.get_mut().iter_mut().zip(states).zip(aggs) {
                    protect(spec.factory.name(), || acc.merge(part))?;
                }
            }
        }
    }
    Ok(())
}

/// Turn a finished group map into output rows (group values then
/// aggregate results). UDA `Terminate` runs under panic protection.
pub fn finish_map(groups: GroupedStates, aggs: &[AggSpec]) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut vals = key;
        for (mut s, spec) in states.into_iter().zip(aggs) {
            vals.push(protect(spec.factory.name(), || s.finish())?);
        }
        out.push(Row::new(vals));
    }
    Ok(out)
}

/// Hash a group key for spill partitioning. `depth` salts the hash so
/// each repartition pass splits differently from the one that overflowed.
fn partition_of(key: &[Value], depth: u32) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    depth.hash(&mut h);
    key.hash(&mut h);
    (h.finish() as usize) % SPILL_PARTITIONS
}

/// Append one rowser-framed row to a spill partition (same u32-length
/// framing as the external sort's runs).
fn write_spill_row(w: &mut SpillWriter, row: &Row) -> Result<()> {
    let mut scratch = Vec::new();
    rowser::write_row(&mut scratch, row);
    let mut framed = Vec::with_capacity(scratch.len() + 4);
    framed.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
    framed.extend_from_slice(&scratch);
    w.write_all(&framed)
}

/// Iterate rows back out of a finished spill partition.
struct SpillRowIter {
    reader: SpillReader,
}

impl RowIterator for SpillRowIter {
    fn next(&mut self) -> Result<Option<Row>> {
        let mut lenbuf = [0u8; 4];
        if !self.reader.read_exact(&mut lenbuf)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(lenbuf) as usize;
        let mut payload = vec![0u8; len];
        if !self.reader.read_exact(&mut payload)? {
            return Err(DbError::Storage("truncated aggregate spill".into()));
        }
        let mut pos = 0;
        Ok(Some(rowser::read_row(&payload, &mut pos)?))
    }
}

/// Governed hash aggregation with graceful degradation: when the memory
/// budget runs out, rows for groups already in memory keep aggregating in
/// place, while rows for *new* groups are spilled to hash partitions in
/// `storage::tempspace` (raw input rows — `Box<dyn AggState>` has no
/// serialized form). After the input drains, in-memory groups are
/// emitted, their memory released, and each partition is aggregated
/// recursively with a re-salted hash. This is the hybrid-hash analogue
/// of SQL Server's Hash Match spilling to tempdb.
pub fn aggregate_governed(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    aggregate_level(input, group_exprs, aggs, ctx, 0, &mut out)?;
    Ok(out)
}

fn aggregate_level(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
    depth: u32,
    out: &mut Vec<Row>,
) -> Result<()> {
    let mut ticker = crate::governor::Ticker::new();
    let mut charge = MemCharge::new(ctx.gov.clone());
    let mut groups: GroupedStates = HashMap::new();
    // Once the budget rejects one group, *all* further new groups go to
    // the spill. Without this the budget could free up mid-stream and
    // admit a key whose earlier rows were already spilled, emitting that
    // group twice.
    let mut spilling = false;
    let mut partitions: Vec<Option<SpillWriter>> = (0..SPILL_PARTITIONS).map(|_| None).collect();

    while let Some(row) = input.next()? {
        ticker.tick(&ctx.gov)?;
        let key = group_key(group_exprs, &row)?;
        if let Some(states) = groups.get_mut(&key) {
            for (spec, state) in aggs.iter().zip(states.iter_mut()) {
                spec.update(state, &row)?;
            }
            continue;
        }
        if !spilling && charge.try_grow(group_cost(&key, aggs.len())) {
            let states = groups.entry(key).or_insert(create_states(aggs)?);
            for (spec, state) in aggs.iter().zip(states.iter_mut()) {
                spec.update(state, &row)?;
            }
        } else {
            if depth >= MAX_SPILL_DEPTH {
                return Err(DbError::ResourceExhausted(format!(
                    "hash aggregate exceeded its memory budget even after \
                     {MAX_SPILL_DEPTH} repartition passes"
                )));
            }
            spilling = true;
            let p = partition_of(&key, depth);
            if partitions[p].is_none() {
                partitions[p] = Some(ctx.temp.create_spill()?);
            }
            if let Some(writer) = partitions[p].as_mut() {
                write_spill_row(writer, &row)?;
            }
        }
    }

    out.extend(finish_map(std::mem::take(&mut groups), aggs)?);
    charge.release_all();

    for writer in partitions.drain(..).flatten() {
        let mut part = SpillRowIter {
            reader: writer.finish()?,
        };
        aggregate_level(&mut part, group_exprs, aggs, ctx, depth + 1, out)?;
    }
    Ok(())
}

/// Blocking hash aggregate. Output order is unspecified (like SQL).
/// Governed: over-budget runs degrade by spilling to tempspace (see
/// [`aggregate_governed`]).
pub struct HashAggIter {
    input: Option<BoxedIter>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    ctx: ExecContext,
    output: std::vec::IntoIter<Row>,
}

impl HashAggIter {
    pub fn new(
        input: BoxedIter,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        ctx: ExecContext,
    ) -> HashAggIter {
        HashAggIter {
            input: Some(input),
            group_exprs,
            aggs,
            ctx,
            output: Vec::new().into_iter(),
        }
    }
}

impl RowIterator for HashAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            let rows =
                aggregate_governed(input.as_mut(), &self.group_exprs, &self.aggs, &self.ctx)?;
            if rows.is_empty() && self.group_exprs.is_empty() {
                // Global aggregate over empty input still yields one row.
                let mut vals = Vec::new();
                for a in &self.aggs {
                    let mut s = a.create_state()?;
                    vals.push(protect(a.factory.name(), || s.finish())?);
                }
                self.output = vec![Row::new(vals)].into_iter();
            } else {
                self.output = rows.into_iter();
            }
        }
        Ok(self.output.next())
    }
}

/// Streaming aggregate over input already sorted by the group
/// expressions. Non-blocking: emits each group as soon as the key
/// changes, holding only one group's state.
/// One in-flight group of a streaming aggregate.
type CurrentGroup = (Vec<Value>, Vec<Box<dyn AggState>>);

pub struct StreamAggIter {
    input: BoxedIter,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    current: Option<CurrentGroup>,
    /// Accounts the single in-flight group; re-charged at each boundary.
    charge: MemCharge,
    done: bool,
    saw_rows: bool,
}

impl StreamAggIter {
    pub fn new(
        input: BoxedIter,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        gov: Arc<QueryGovernor>,
    ) -> StreamAggIter {
        StreamAggIter {
            input,
            group_exprs,
            aggs,
            current: None,
            charge: MemCharge::new(gov),
            done: false,
            saw_rows: false,
        }
    }

    /// Start a new in-flight group, accounting its state against the
    /// budget (one group at a time — this is what keeps the stream
    /// aggregate non-blocking and near-constant-space).
    fn open_group(&mut self, key: &[Value]) -> Result<Vec<Box<dyn AggState>>> {
        self.charge.release_all();
        self.charge.grow(group_cost(key, self.aggs.len()))?;
        create_states(&self.aggs)
    }

    fn emit(&mut self, key: Vec<Value>, states: Vec<Box<dyn AggState>>) -> Result<Row> {
        let mut vals = key;
        for (mut s, spec) in states.into_iter().zip(&self.aggs) {
            vals.push(protect(spec.factory.name(), || s.finish())?);
        }
        Ok(Row::new(vals))
    }
}

impl RowIterator for StreamAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.input.next()? {
                Some(row) => {
                    self.saw_rows = true;
                    let key = group_key(&self.group_exprs, &row)?;
                    let same_group = matches!(&self.current, Some((ckey, _)) if *ckey == key);
                    if same_group {
                        if let Some((_, states)) = &mut self.current {
                            for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
                                spec.update(state, &row)?;
                            }
                        }
                    } else {
                        // Group boundary (or very first group): start the
                        // new group, then emit the finished one if any.
                        let prev = self.current.take();
                        let mut states = self.open_group(&key)?;
                        for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
                            spec.update(state, &row)?;
                        }
                        self.current = Some((key, states));
                        if let Some((okey, ostates)) = prev {
                            return Ok(Some(self.emit(okey, ostates)?));
                        }
                    }
                }
                None => {
                    self.done = true;
                    self.charge.release_all();
                    if let Some((key, states)) = self.current.take() {
                        return Ok(Some(self.emit(key, states)?));
                    }
                    if !self.saw_rows && self.group_exprs.is_empty() {
                        let mut vals = Vec::new();
                        for a in &self.aggs {
                            let mut s = a.create_state()?;
                            vals.push(protect(a.factory.name(), || s.finish())?);
                        }
                        return Ok(Some(Row::new(vals)));
                    }
                    return Ok(None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::{int_rows, test_context};
    use crate::exec::{collect, ValuesIter};
    use crate::udx::{CountAgg, SumAgg};
    use std::sync::Arc;

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(Arc::new(CountAgg), vec![], "cnt"),
            AggSpec::new(Arc::new(SumAgg), vec![Expr::col(1, "v")], "total"),
        ]
    }

    fn rows() -> Vec<Row> {
        int_rows(&[&[1, 10], &[2, 5], &[1, 30], &[2, 5], &[3, 1]])
    }

    fn normalize(mut rows: Vec<Row>) -> Vec<(i64, i64, i64)> {
        let mut out: Vec<(i64, i64, i64)> = rows
            .drain(..)
            .map(|r| {
                (
                    r[0].as_int().unwrap(),
                    r[1].as_int().unwrap(),
                    r[2].as_int().unwrap(),
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn hash_agg_groups_correctly() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(rows())),
            vec![Expr::col(0, "g")],
            specs(),
            test_context(),
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got, vec![(1, 2, 40), (2, 2, 10), (3, 1, 1)]);
    }

    #[test]
    fn stream_agg_matches_hash_agg_on_sorted_input() {
        let mut sorted = rows();
        sorted.sort_by_key(|r| r[0].as_int().unwrap());
        let it = StreamAggIter::new(
            Box::new(ValuesIter::new(sorted)),
            vec![Expr::col(0, "g")],
            specs(),
            QueryGovernor::unlimited(),
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got, vec![(1, 2, 40), (2, 2, 10), (3, 1, 1)]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(rows())),
            vec![],
            specs(),
            test_context(),
        );
        let out = collect(Box::new(it)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(5));
        assert_eq!(out[0][1], Value::Int(51));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        for blocking in [true, false] {
            let input = Box::new(ValuesIter::new(vec![]));
            let out = if blocking {
                collect(Box::new(HashAggIter::new(
                    input,
                    vec![],
                    specs(),
                    test_context(),
                )))
                .unwrap()
            } else {
                collect(Box::new(StreamAggIter::new(
                    input,
                    vec![],
                    specs(),
                    QueryGovernor::unlimited(),
                )))
                .unwrap()
            };
            assert_eq!(out.len(), 1);
            assert_eq!(out[0][0], Value::Int(0));
            assert_eq!(out[0][1], Value::Null);
        }
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(vec![])),
            vec![Expr::col(0, "g")],
            specs(),
            test_context(),
        );
        assert!(collect(Box::new(it)).unwrap().is_empty());
    }

    #[test]
    fn partial_final_split_equals_single_pass() {
        // The invariant the parallel aggregate relies on.
        let gov = QueryGovernor::unlimited();
        let mut charge = MemCharge::new(gov.clone());
        let all = rows();
        let serial = {
            let mut it = ValuesIter::new(all.clone());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge).unwrap()
        };
        let mut merged = {
            let mut it = ValuesIter::new(all[..2].to_vec());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge).unwrap()
        };
        let part2 = {
            let mut it = ValuesIter::new(all[2..].to_vec());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge).unwrap()
        };
        merge_maps(&mut merged, part2, &specs()).unwrap();
        let a = normalize(finish_map(serial, &specs()).unwrap());
        let b = normalize(finish_map(merged, &specs()).unwrap());
        assert_eq!(a, b);
        drop(charge);
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn tight_budget_spills_and_still_aggregates_exactly() {
        // Many distinct groups under a budget that fits only a handful:
        // the hybrid path must spill, recurse, and still produce exactly
        // one correct row per group.
        let mut ctx = test_context();
        ctx.gov = QueryGovernor::new(None, Some(2 * 1024));
        let input: Vec<Row> = (0..2000i64)
            .map(|i| Row::new(vec![Value::Int(i % 500), Value::Int(1)]))
            .collect();
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(input)),
            vec![Expr::col(0, "g")],
            specs(),
            ctx.clone(),
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got.len(), 500, "each group must appear exactly once");
        for (g, cnt, total) in got {
            assert!((0..500).contains(&g));
            assert_eq!(cnt, 4);
            assert_eq!(total, 4);
        }
        assert_eq!(ctx.gov.mem_used(), 0, "all charges released");
    }

    #[test]
    fn ungoverned_aggregate_into_map_errors_when_exhausted() {
        let gov = QueryGovernor::new(None, Some(256));
        let mut charge = MemCharge::new(gov);
        let input: Vec<Row> = (0..100i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(1)]))
            .collect();
        let mut it = ValuesIter::new(input);
        let err = match aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs(), &mut charge) {
            Ok(_) => panic!("expected exhaustion"),
            Err(e) => e,
        };
        assert!(matches!(err, DbError::ResourceExhausted(_)), "{err}");
    }
}

//! Aggregation operators: hash aggregate (unordered input) and stream
//! aggregate (input sorted by the group columns).
//!
//! Both work off [`AggSpec`]s that pair an [`Aggregate`] factory with its
//! argument expressions — built-in and user-defined aggregates are
//! indistinguishable here, which is the extensibility claim of §2.3.4.
//! The stream aggregate is what makes the paper's sliding-window
//! `AssembleConsensus` plan non-blocking: with input ordered by
//! chromosome (and alignment position within it), each group finishes as
//! soon as its last row has been consumed.

use std::collections::HashMap;

use seqdb_types::{Result, Row, Value};

use crate::exec::{BoxedIter, RowIterator};
use crate::expr::Expr;
use crate::udx::{AggState, Aggregate};

/// One aggregate call in a GROUP BY query.
#[derive(Clone)]
pub struct AggSpec {
    pub factory: std::sync::Arc<dyn Aggregate>,
    /// Argument expressions over the input row. Empty = `COUNT(*)`.
    pub args: Vec<Expr>,
    /// Output column name (for schemas and EXPLAIN).
    pub name: String,
}

impl AggSpec {
    pub fn new(
        factory: std::sync::Arc<dyn Aggregate>,
        args: Vec<Expr>,
        name: impl Into<String>,
    ) -> AggSpec {
        AggSpec {
            factory,
            args,
            name: name.into(),
        }
    }

    fn update(&self, state: &mut Box<dyn AggState>, row: &Row) -> Result<()> {
        if self.args.is_empty() {
            state.update(&[])
        } else {
            let vals: Vec<Value> = self
                .args
                .iter()
                .map(|e| e.eval(row))
                .collect::<Result<_>>()?;
            state.update(&vals)
        }
    }
}

/// Grouped aggregation state: group key -> one state per aggregate.
pub type GroupedStates = HashMap<Vec<Value>, Vec<Box<dyn AggState>>>;

/// Evaluate the grouping key of a row.
pub fn group_key(group_exprs: &[Expr], row: &Row) -> Result<Vec<Value>> {
    group_exprs.iter().map(|e| e.eval(row)).collect()
}

/// Build and run a hash-aggregation over an entire input, returning the
/// grouped states. Shared by the serial operator and the parallel
/// partial/final plan in [`crate::parallel`].
pub fn aggregate_into_map(
    input: &mut dyn RowIterator,
    group_exprs: &[Expr],
    aggs: &[AggSpec],
) -> Result<GroupedStates> {
    let mut groups: GroupedStates = HashMap::new();
    while let Some(row) = input.next()? {
        let key = group_key(group_exprs, &row)?;
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| a.factory.create()).collect());
        for (spec, state) in aggs.iter().zip(states.iter_mut()) {
            spec.update(state, &row)?;
        }
    }
    Ok(groups)
}

/// Merge a partial aggregation map into an accumulator map (the "final"
/// side of a parallel aggregate).
pub fn merge_maps(into: &mut GroupedStates, from: GroupedStates) -> Result<()> {
    for (key, states) in from {
        match into.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(states);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for (acc, part) in e.get_mut().iter_mut().zip(states) {
                    acc.merge(part)?;
                }
            }
        }
    }
    Ok(())
}

/// Turn a finished group map into output rows (group values then
/// aggregate results).
pub fn finish_map(groups: GroupedStates) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(groups.len());
    for (key, mut states) in groups {
        let mut vals = key;
        for s in &mut states {
            vals.push(s.finish()?);
        }
        out.push(Row::new(vals));
    }
    Ok(out)
}

/// Blocking hash aggregate. Output order is unspecified (like SQL).
pub struct HashAggIter {
    input: Option<BoxedIter>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    output: std::vec::IntoIter<Row>,
}

impl HashAggIter {
    pub fn new(input: BoxedIter, group_exprs: Vec<Expr>, aggs: Vec<AggSpec>) -> HashAggIter {
        HashAggIter {
            input: Some(input),
            group_exprs,
            aggs,
            output: Vec::new().into_iter(),
        }
    }
}

impl RowIterator for HashAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            let groups = aggregate_into_map(input.as_mut(), &self.group_exprs, &self.aggs)?;
            if groups.is_empty() && self.group_exprs.is_empty() {
                // Global aggregate over empty input still yields one row.
                let mut vals = Vec::new();
                for a in &self.aggs {
                    vals.push(a.factory.create().finish()?);
                }
                self.output = vec![Row::new(vals)].into_iter();
            } else {
                self.output = finish_map(groups)?.into_iter();
            }
        }
        Ok(self.output.next())
    }
}

/// Streaming aggregate over input already sorted by the group
/// expressions. Non-blocking: emits each group as soon as the key
/// changes, holding only one group's state.
/// One in-flight group of a streaming aggregate.
type CurrentGroup = (Vec<Value>, Vec<Box<dyn AggState>>);

pub struct StreamAggIter {
    input: BoxedIter,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    current: Option<CurrentGroup>,
    done: bool,
    saw_rows: bool,
}

impl StreamAggIter {
    pub fn new(input: BoxedIter, group_exprs: Vec<Expr>, aggs: Vec<AggSpec>) -> StreamAggIter {
        StreamAggIter {
            input,
            group_exprs,
            aggs,
            current: None,
            done: false,
            saw_rows: false,
        }
    }

    fn emit(&mut self, key: Vec<Value>, mut states: Vec<Box<dyn AggState>>) -> Result<Row> {
        let mut vals = key;
        for s in &mut states {
            vals.push(s.finish()?);
        }
        Ok(Row::new(vals))
    }
}

impl RowIterator for StreamAggIter {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.input.next()? {
                Some(row) => {
                    self.saw_rows = true;
                    let key = group_key(&self.group_exprs, &row)?;
                    match &mut self.current {
                        Some((ckey, states)) if *ckey == key => {
                            for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
                                spec.update(state, &row)?;
                            }
                        }
                        Some(_) => {
                            // Group boundary: emit the finished group and
                            // start the new one.
                            let (okey, ostates) = self.current.take().expect("checked Some above");
                            let mut states: Vec<Box<dyn AggState>> =
                                self.aggs.iter().map(|a| a.factory.create()).collect();
                            for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
                                spec.update(state, &row)?;
                            }
                            self.current = Some((key, states));
                            return Ok(Some(self.emit(okey, ostates)?));
                        }
                        None => {
                            let mut states: Vec<Box<dyn AggState>> =
                                self.aggs.iter().map(|a| a.factory.create()).collect();
                            for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
                                spec.update(state, &row)?;
                            }
                            self.current = Some((key, states));
                        }
                    }
                }
                None => {
                    self.done = true;
                    if let Some((key, states)) = self.current.take() {
                        return Ok(Some(self.emit(key, states)?));
                    }
                    if !self.saw_rows && self.group_exprs.is_empty() {
                        let mut vals = Vec::new();
                        for a in &self.aggs {
                            vals.push(a.factory.create().finish()?);
                        }
                        return Ok(Some(Row::new(vals)));
                    }
                    return Ok(None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::int_rows;
    use crate::exec::{collect, ValuesIter};
    use crate::udx::{CountAgg, SumAgg};
    use std::sync::Arc;

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(Arc::new(CountAgg), vec![], "cnt"),
            AggSpec::new(Arc::new(SumAgg), vec![Expr::col(1, "v")], "total"),
        ]
    }

    fn rows() -> Vec<Row> {
        int_rows(&[&[1, 10], &[2, 5], &[1, 30], &[2, 5], &[3, 1]])
    }

    fn normalize(mut rows: Vec<Row>) -> Vec<(i64, i64, i64)> {
        let mut out: Vec<(i64, i64, i64)> = rows
            .drain(..)
            .map(|r| {
                (
                    r[0].as_int().unwrap(),
                    r[1].as_int().unwrap(),
                    r[2].as_int().unwrap(),
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn hash_agg_groups_correctly() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(rows())),
            vec![Expr::col(0, "g")],
            specs(),
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got, vec![(1, 2, 40), (2, 2, 10), (3, 1, 1)]);
    }

    #[test]
    fn stream_agg_matches_hash_agg_on_sorted_input() {
        let mut sorted = rows();
        sorted.sort_by_key(|r| r[0].as_int().unwrap());
        let it = StreamAggIter::new(
            Box::new(ValuesIter::new(sorted)),
            vec![Expr::col(0, "g")],
            specs(),
        );
        let got = normalize(collect(Box::new(it)).unwrap());
        assert_eq!(got, vec![(1, 2, 40), (2, 2, 10), (3, 1, 1)]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let it = HashAggIter::new(Box::new(ValuesIter::new(rows())), vec![], specs());
        let out = collect(Box::new(it)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(5));
        assert_eq!(out[0][1], Value::Int(51));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        for blocking in [true, false] {
            let input = Box::new(ValuesIter::new(vec![]));
            let out = if blocking {
                collect(Box::new(HashAggIter::new(input, vec![], specs()))).unwrap()
            } else {
                collect(Box::new(StreamAggIter::new(input, vec![], specs()))).unwrap()
            };
            assert_eq!(out.len(), 1);
            assert_eq!(out[0][0], Value::Int(0));
            assert_eq!(out[0][1], Value::Null);
        }
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let it = HashAggIter::new(
            Box::new(ValuesIter::new(vec![])),
            vec![Expr::col(0, "g")],
            specs(),
        );
        assert!(collect(Box::new(it)).unwrap().is_empty());
    }

    #[test]
    fn partial_final_split_equals_single_pass() {
        // The invariant the parallel aggregate relies on.
        let all = rows();
        let serial = {
            let mut it = ValuesIter::new(all.clone());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs()).unwrap()
        };
        let mut merged = {
            let mut it = ValuesIter::new(all[..2].to_vec());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs()).unwrap()
        };
        let part2 = {
            let mut it = ValuesIter::new(all[2..].to_vec());
            aggregate_into_map(&mut it, &[Expr::col(0, "g")], &specs()).unwrap()
        };
        merge_maps(&mut merged, part2).unwrap();
        let a = normalize(finish_map(serial).unwrap());
        let b = normalize(finish_map(merged).unwrap());
        assert_eq!(a, b);
    }
}

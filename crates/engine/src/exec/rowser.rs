//! Self-describing row serialization for spill files.
//!
//! Unlike [`seqdb_storage::rowfmt`] (which needs a schema), spill records
//! carry their own type tags, because sort keys and intermediate rows are
//! not tied to any table schema.

use std::sync::Arc;

use seqdb_storage::varint;
use seqdb_types::{DbError, Result, Row, Value};

const T_NULL: u8 = 0;
const T_BOOL: u8 = 1;
const T_INT: u8 = 2;
const T_FLOAT: u8 = 3;
const T_TEXT: u8 = 4;
const T_BYTES: u8 = 5;
const T_GUID: u8 = 6;

/// Append one value.
pub fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(T_NULL),
        Value::Bool(b) => {
            out.push(T_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(T_INT);
            varint::write_i64(out, *i);
        }
        Value::Float(f) => {
            out.push(T_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(T_TEXT);
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(T_BYTES);
            varint::write_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::Guid(g) => {
            out.push(T_GUID);
            out.extend_from_slice(&g.to_be_bytes());
        }
    }
}

/// Read one value.
pub fn read_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let err = || DbError::Storage("corrupt spill record".into());
    let tag = *buf.get(*pos).ok_or_else(err)?;
    *pos += 1;
    Ok(match tag {
        T_NULL => Value::Null,
        T_BOOL => {
            let b = *buf.get(*pos).ok_or_else(err)?;
            *pos += 1;
            Value::Bool(b != 0)
        }
        T_INT => Value::Int(varint::read_i64(buf, pos).ok_or_else(err)?),
        T_FLOAT => {
            let raw = buf.get(*pos..*pos + 8).ok_or_else(err)?;
            *pos += 8;
            Value::Float(f64::from_le_bytes(
                raw.try_into().expect("slice is exactly 8 bytes"),
            ))
        }
        T_TEXT => {
            let n = varint::read_u64(buf, pos).ok_or_else(err)? as usize;
            let end = pos.checked_add(n).ok_or_else(err)?;
            let raw = buf.get(*pos..end).ok_or_else(err)?;
            let s = std::str::from_utf8(raw).map_err(|_| err())?;
            let v = Value::Text(Arc::from(s));
            *pos = end;
            v
        }
        T_BYTES => {
            let n = varint::read_u64(buf, pos).ok_or_else(err)? as usize;
            let end = pos.checked_add(n).ok_or_else(err)?;
            let raw = buf.get(*pos..end).ok_or_else(err)?;
            let v = Value::Bytes(Arc::from(raw));
            *pos = end;
            v
        }
        T_GUID => {
            let raw = buf.get(*pos..*pos + 16).ok_or_else(err)?;
            *pos += 16;
            Value::Guid(u128::from_be_bytes(
                raw.try_into().expect("slice is exactly 16 bytes"),
            ))
        }
        _ => return Err(err()),
    })
}

/// Serialize a row (value count + tagged values).
pub fn write_row(out: &mut Vec<u8>, row: &Row) {
    write_values(out, row.values());
}

/// Serialize a bare value slice in row framing, so callers holding a
/// `Vec<Value>` (sort keys, join keys) need not wrap it in a `Row`.
pub fn write_values(out: &mut Vec<u8>, vals: &[Value]) {
    varint::write_u64(out, vals.len() as u64);
    for v in vals {
        write_value(out, v);
    }
}

/// Start a u32-length-framed record in `buf`, clearing any previous
/// content. Spill writers keep one `buf` across rows so the steady state
/// allocates nothing per row; pair with [`finish_frame`].
pub fn begin_frame(buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&[0u8; 4]);
}

/// Backfill the length prefix reserved by [`begin_frame`].
pub fn finish_frame(buf: &mut [u8]) {
    let len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&len.to_le_bytes());
}

/// Frame one row (u32 length prefix + tagged values) into `buf`,
/// replacing its contents.
pub fn frame_row(buf: &mut Vec<u8>, row: &Row) {
    begin_frame(buf);
    write_row(buf, row);
    finish_frame(buf);
}

/// Deserialize a row.
pub fn read_row(buf: &[u8], pos: &mut usize) -> Result<Row> {
    let err = || DbError::Storage("corrupt spill record".into());
    let n = varint::read_u64(buf, pos).ok_or_else(err)? as usize;
    let mut vals = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vals.push(read_value(buf, pos)?);
    }
    Ok(Row::new(vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = Row::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-12345),
            Value::Float(0.25),
            Value::text("IL4_855:1:1:954:659"),
            Value::bytes(b"\x00\xff"),
            Value::Guid(77),
        ]);
        let mut buf = Vec::new();
        write_row(&mut buf, &row);
        let mut pos = 0;
        let back = read_row(&buf, &mut pos).unwrap();
        assert_eq!(back, row);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn corrupt_input_is_an_error() {
        let mut pos = 0;
        assert!(read_row(&[9, 9, 9], &mut pos).is_err());
    }

    #[test]
    fn framed_row_roundtrips_and_buffer_reuses() {
        let mut buf = Vec::new();
        for i in 0..3i64 {
            let row = Row::new(vec![Value::Int(i), Value::text(format!("r{i}"))]);
            frame_row(&mut buf, &row);
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            assert_eq!(len, buf.len() - 4);
            let mut pos = 4;
            assert_eq!(read_row(&buf, &mut pos).unwrap(), row);
        }
    }

    #[test]
    fn multiple_rows_stream() {
        let rows: Vec<Row> = (0..10)
            .map(|i| Row::new(vec![Value::Int(i), Value::text(format!("r{i}"))]))
            .collect();
        let mut buf = Vec::new();
        for r in &rows {
            write_row(&mut buf, r);
        }
        let mut pos = 0;
        for r in &rows {
            assert_eq!(&read_row(&buf, &mut pos).unwrap(), r);
        }
        assert_eq!(pos, buf.len());
    }
}
